"""Property tests for the generality machinery (Definition 5, condition 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import GeneralityIndex

# Small universes so subset relations occur frequently.
ATTRS = ["A", "B", "C"]
VALUES = [1, 2]


@st.composite
def descriptor_key(draw, max_items=3):
    names = draw(
        st.lists(st.sampled_from(ATTRS), unique=True, max_size=max_items)
    )
    return tuple(sorted((name, draw(st.sampled_from(VALUES))) for name in names))


@st.composite
def index_and_query(draw):
    index = GeneralityIndex()
    entries = draw(
        st.lists(
            st.tuples(descriptor_key(), descriptor_key(max_items=1), descriptor_key()),
            max_size=8,
        )
    )
    for l_key, w_key, r_key in entries:
        if r_key:
            index.add(l_key, w_key, r_key)
    query = draw(
        st.tuples(descriptor_key(), descriptor_key(max_items=1), descriptor_key())
    )
    return index, entries, query


def _is_strict_sub(sub, sup):
    return set(sub) <= set(sup)


class TestGeneralityIndexProperties:
    @given(index_and_query())
    @settings(max_examples=300, deadline=None)
    def test_blocked_iff_strict_generalization_indexed(self, case):
        """is_blocked agrees with the direct Definition 5(2) check."""
        index, entries, (l_key, w_key, r_key) = case
        if not r_key:
            return
        expected = any(
            er == r_key
            and _is_strict_sub(el, l_key)
            and _is_strict_sub(ew, w_key)
            and (el, ew) != (l_key, w_key)
            for el, ew, er in entries
            if er
        )
        assert index.is_blocked(l_key, w_key, r_key) == expected

    @given(descriptor_key(), descriptor_key(max_items=1), descriptor_key())
    @settings(max_examples=100, deadline=None)
    def test_entry_never_blocks_itself(self, l_key, w_key, r_key):
        if not r_key:
            return
        index = GeneralityIndex()
        index.add(l_key, w_key, r_key)
        assert not index.is_blocked(l_key, w_key, r_key)

    @given(descriptor_key(), descriptor_key())
    @settings(max_examples=100, deadline=None)
    def test_empty_lw_entry_blocks_all_specializations(self, l_key, r_key):
        if not r_key:
            return
        index = GeneralityIndex()
        index.add((), (), r_key)
        if l_key:
            assert index.is_blocked(l_key, (), r_key)


class TestGeneralizationEnumeration:
    @given(descriptor_key(), descriptor_key(max_items=1), descriptor_key(max_items=2))
    @settings(max_examples=100, deadline=None)
    def test_gr_generalizations_complete_and_strict(self, l_key, w_key, r_key):
        """GR.generalizations() yields every strict sub-selection once."""
        from repro.core.descriptors import GR, Descriptor

        if not r_key:
            return
        # Keys use integer values; stringify for Descriptor labels.
        lhs = Descriptor(tuple((n, str(v)) for n, v in l_key))
        edge = Descriptor(tuple((f"W{n}", str(v)) for n, v in w_key))
        rhs = Descriptor(tuple((n, str(v)) for n, v in r_key))
        gr = GR(lhs, rhs, edge)
        gens = list(gr.generalizations())
        assert len(gens) == 2 ** (len(lhs) + len(edge)) - 1
        assert len(set(gens)) == len(gens)
        for g in gens:
            assert g.is_more_general_than(gr)
