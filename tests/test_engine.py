"""The MiningEngine session layer: amortized serving with exact semantics.

The engine's contract has three legs:

1. **Amortization** — a sweep of M parameter combos performs exactly one
   store export and one pool spawn (the acceptance criterion of the
   engine PR), with the first-level state reused across queries.
2. **Exactness** — every engine result equals a fresh one-shot miner of
   the same parameters: serial-mode queries equal ``GRMiner``,
   sharded-mode queries equal ``ParallelGRMiner`` (and therefore the
   exact Definition 5 reference).
3. **Isolation** — nothing leaks between consecutive queries: no stale
   threshold-bus floors, no stale caches when parameters change, no
   orphaned shared-memory segments when a worker dies.
"""

import math
import warnings
from multiprocessing import shared_memory

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import GRMiner, MinerConfig
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.engine import MineRequest, MiningEngine, ResultCache
from repro.parallel import ParallelGRMiner


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


_NETWORKS = {}


def _network(seed: int):
    if seed not in _NETWORKS:
        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
        )
        _NETWORKS[seed] = random_attributed_network(
            schema,
            num_nodes=20,
            num_edges=100,
            homophily_strength=0.5,
            seed=seed,
        )
    return _NETWORKS[seed]


def _fresh(network, request: MineRequest):
    """A cold one-shot run of the same query, outside any engine."""
    kwargs = dict(
        k=request.k,
        min_support=request.min_support,
        min_score=request.min_nhp,
        rank_by=request.rank_by,
        push_topk=request.push_topk,
        **dict(request.options),
    )
    if request.workers is None:
        return GRMiner(network, **kwargs).mine()
    return ParallelGRMiner(network, workers=request.workers, **kwargs).mine()


class TestMineRequest:
    def test_maps_onto_miner_config(self):
        request = MineRequest.create(
            k=7, min_support=3, min_nhp=0.4, rank_by="confidence",
            allow_empty_lhs=True, node_attributes=["A", "B"],
        )
        config = request.to_config()
        assert config.k == 7 and config.min_score == 0.4
        assert config.allow_empty_lhs and config.node_attributes == ("A", "B")

    def test_min_score_alias_accepted(self):
        assert MineRequest.create(min_score=0.7).min_nhp == 0.7

    def test_first_class_fields_rejected_as_options(self):
        with pytest.raises(ValueError):
            MineRequest(options=(("k", 5),))

    def test_invalid_parameters_fail_at_build_time(self):
        with pytest.raises(ValueError):
            MineRequest(min_nhp=1.5)
        with pytest.raises(ValueError):
            MineRequest(rank_by="oracle")
        with pytest.raises(ValueError):
            MineRequest(workers=0)
        with pytest.raises(ValueError):
            MineRequest(min_support=-5)
        with pytest.raises(ValueError):
            MineRequest(min_support=True)

    def test_canonical_key_resolves_equivalent_forms(self):
        network = _network(0)
        schema, edges = network.schema, network.num_edges
        absolute = MineRequest(k=5, min_support=10, min_nhp=0.5)
        fractional = MineRequest(k=5, min_support=10 / edges, min_nhp=0.5)
        assert absolute.canonical_key(schema, edges) == fractional.canonical_key(
            schema, edges
        )
        explicit_attrs = MineRequest.create(
            k=5, min_support=10, min_nhp=0.5,
            node_attributes=schema.node_attribute_names,
        )
        assert absolute.canonical_key(schema, edges) == explicit_attrs.canonical_key(
            schema, edges
        )

    def test_miner_rejects_config_plus_explicit_keywords(self):
        network = _network(0)
        config = MinerConfig(k=5, min_support=2)
        assert GRMiner(network, config=config).k == 5
        with pytest.raises(ValueError, match="not both"):
            GRMiner(network, k=9, config=config)

    def test_canonical_key_separates_modes_not_worker_counts(self):
        network = _network(0)
        schema, edges = network.schema, network.num_edges
        serial = MineRequest(k=5, min_support=2)
        two = serial.with_workers(2)
        four = serial.with_workers(4)
        assert serial.canonical_key(schema, edges) != two.canonical_key(schema, edges)
        assert two.canonical_key(schema, edges) == four.canonical_key(schema, edges)


class TestMinSupportCanonicalization:
    """Satellite: minSupp edge cases either raise cleanly or collapse to
    the same cache key as their integer form."""

    def test_zero_and_vanishing_fractions_collapse_to_one(self):
        network = _network(0)
        schema, edges = network.schema, network.num_edges
        base = MineRequest(k=5, min_support=1).canonical_key(schema, edges)
        for form in (0, 0.0, 1e-12, 0.5 / edges):
            key = MineRequest(k=5, min_support=form).canonical_key(schema, edges)
            assert key == base, f"min_support={form!r} diverged from 1"

    def test_float_one_is_rejected_as_ambiguous(self):
        # 1.0 reads as both "one edge" (absolute) and "all edges"
        # (fraction); silently picking one poisons cross-form cache
        # collapsing, so it must fail at request build time.
        with pytest.raises(ValueError, match="ambiguous"):
            MineRequest(k=5, min_support=1.0)
        with pytest.raises(ValueError, match="ambiguous"):
            MinerConfig(min_support=1.0)
        with pytest.raises(ValueError, match="ambiguous"):
            GRMiner._absolute_support(1.0, 100)

    def test_out_of_range_fractions_raise(self):
        for bad in (-0.25, 1.5, float("nan"), -3):
            with pytest.raises(ValueError):
                MineRequest(k=5, min_support=bad)

    @settings(max_examples=100, deadline=None)
    @given(v=st.integers(min_value=0, max_value=100))
    def test_boundary_fractions_match_their_integer_form(self, v):
        """v/|E| is exactly the fraction meaning "at least v edges"."""
        network = _network(0)
        schema, edges = network.schema, network.num_edges
        assert edges == 100
        if v == edges:
            with pytest.raises(ValueError, match="ambiguous"):
                MineRequest(k=5, min_support=v / edges)
            return
        frac_key = MineRequest(k=5, min_support=v / edges).canonical_key(
            schema, edges
        )
        int_key = MineRequest(k=5, min_support=max(1, v)).canonical_key(
            schema, edges
        )
        assert frac_key == int_key

    @settings(max_examples=100, deadline=None)
    @given(
        fraction=st.floats(
            min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False
        )
    )
    def test_any_fraction_matches_its_resolved_count(self, fraction):
        network = _network(0)
        schema, edges = network.schema, network.num_edges
        resolved = GRMiner._absolute_support(fraction, edges)
        assert 1 <= resolved <= edges
        frac_key = MineRequest(k=5, min_support=fraction).canonical_key(
            schema, edges
        )
        int_key = MineRequest(k=5, min_support=resolved).canonical_key(
            schema, edges
        )
        assert frac_key == int_key


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recent
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_zero_size_disables_caching(self):
        cache = ResultCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0


class TestEngineAmortization:
    """Acceptance: M combos, one export, one pool spawn, exact answers."""

    def test_sweep_exports_and_spawns_once(self):
        network = _network(3)
        requests = [
            MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=5, min_support=1, min_nhp=0.5, rank_by="confidence", workers=2),
            MineRequest(k=15, min_support=2, min_nhp=0.0, push_topk=False, workers=2),
            MineRequest(k=3, min_support=3, min_nhp=0.4, workers=2),
        ]
        with MiningEngine(network, workers=2) as engine:
            results = engine.sweep(requests)
            assert engine.stats.exports == 1
            assert engine.stats.pool_spawns == 1
            # A follow-up single query still reuses the same fleet.
            engine.mine(MineRequest(k=4, min_support=2, min_nhp=0.6, workers=2))
            assert engine.stats.exports == 1
            assert engine.stats.pool_spawns == 1
        for request, result in zip(requests, results):
            assert _signature(result) == _signature(_fresh(network, request))

    def test_serial_queries_never_touch_the_pool(self):
        network = _network(1)
        with MiningEngine(network, workers=2) as engine:
            result = engine.mine(k=8, min_support=2, min_nhp=0.3)
            assert engine.stats.exports == 0 and engine.stats.pool_spawns == 0
        fresh = GRMiner(network, k=8, min_support=2, min_score=0.3).mine()
        assert _signature(result) == _signature(fresh)

    def test_mixed_serial_and_sharded_sweep(self):
        network = _network(2)
        requests = [
            MineRequest(k=6, min_support=2, min_nhp=0.3),
            MineRequest(k=6, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=9, min_support=1, min_nhp=0.5),
        ]
        with MiningEngine(network, workers=2) as engine:
            results = engine.sweep(requests)
        for request, result in zip(requests, results):
            assert _signature(result) == _signature(_fresh(network, request))

    def test_single_shard_request_runs_inline(self):
        # One attribute, tiny domain ⇒ few branches ⇒ no pool needed.
        schema = random_schema(
            num_node_attrs=1, num_edge_attrs=0, max_domain=2, num_homophily=1, seed=9
        )
        network = random_attributed_network(schema, num_nodes=5, num_edges=12, seed=9)
        with MiningEngine(network, workers=4) as engine:
            result = engine.mine(k=3, min_support=1, min_nhp=0.0, workers=1)
            assert engine.stats.pool_spawns == 0
        fresh = ParallelGRMiner(network, workers=1, k=3, min_support=1, min_score=0.0).mine()
        assert _signature(result) == _signature(fresh)


class TestEngineCache:
    def test_repeat_query_is_served_from_cache(self):
        network = _network(4)
        request = MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2)
        with MiningEngine(network, workers=2) as engine:
            first = engine.mine(request)
            second = engine.mine(request)
            # Hits hand out private snapshots (mutation cannot poison
            # the entry), so equality + the hit counter prove the cache
            # served it, not object identity.
            assert second is not first
            assert _signature(second) == _signature(first)
            assert second.params["cached"] is True
            assert engine.stats.cache_hits == 1
            assert engine.stats.cache_misses == 1

    def test_equivalent_forms_share_a_cache_entry(self):
        network = _network(4)
        absolute = MineRequest(k=5, min_support=2, min_nhp=0.5)
        fractional = MineRequest(
            k=5, min_support=2 / network.num_edges, min_nhp=0.5
        )
        with MiningEngine(network) as engine:
            first = engine.mine(absolute)
            second = engine.mine(fractional)
            assert _signature(second) == _signature(first)
            assert engine.stats.cache_hits == 1
            assert engine.stats.cache_misses == 1

    def test_mutating_a_hit_does_not_poison_the_cache(self):
        """Regression: cached results used to be returned by reference,
        so a caller clearing (or editing) a returned hit corrupted every
        future hit of that key."""
        network = _network(4)
        request = MineRequest(k=10, min_support=2, min_nhp=0.3)
        with MiningEngine(network) as engine:
            first = engine.mine(request)
            reference = _signature(first)
            assert reference  # a non-trivial result, or the test is vacuous
            first.grs.clear()  # vandalize the miss-path object
            hit = engine.mine(request)
            assert _signature(hit) == reference
            hit.grs.clear()  # vandalize a hit-path snapshot too
            hit.params["k"] = "poisoned"
            again = engine.mine(request)
            assert _signature(again) == reference
            assert again.params.get("k") != "poisoned"

    def test_duplicates_within_a_sweep_are_mined_once(self):
        network = _network(4)
        request = MineRequest(k=7, min_support=2, min_nhp=0.4, workers=2)
        with MiningEngine(network, workers=2) as engine:
            results = engine.sweep([request, request, request])
            assert engine.stats.cache_misses == 1
            assert engine.stats.cache_hits == 2
        assert _signature(results[0]) == _signature(results[1]) == _signature(results[2])

    def test_cache_disabled_by_size_zero(self):
        network = _network(4)
        request = MineRequest(k=5, min_support=2, min_nhp=0.5)
        with MiningEngine(network, cache_size=0) as engine:
            first = engine.mine(request)
            second = engine.mine(request)
            assert second is not first
            assert _signature(second) == _signature(first)


class TestThresholdIsolation:
    """Satellite: bus reuse across queries must never leak thresholds."""

    def test_bus_reset_clears_published_floors(self):
        from repro.parallel import ThresholdBus

        bus = ThresholdBus(num_slots=3)
        try:
            bus.publish(0, 0.9)
            bus.publish(2, 0.7)
            bus.reset()
            assert bus.best_floor() == float("-inf")
            bus.publish(1, 0.2)  # the bus is fully reusable after reset
            assert bus.best_floor() == 0.2
        finally:
            bus.release()

    def test_tight_query_then_loose_query_same_engine(self):
        """Query N's k-th-best floor must not prune query N+1's results.

        The first query (k=1) publishes the global best score as its
        dynamic threshold.  If that floor leaked into the second query
        (large k, permissive thresholds), its workers would discard
        everything below the first query's maximum — returning far fewer
        than the fresh reference does.
        """
        network = _network(5)
        tight = MineRequest(k=1, min_support=1, min_nhp=0.0, workers=2)
        loose = MineRequest(k=20, min_support=1, min_nhp=0.0, workers=2)
        with MiningEngine(network, workers=2) as engine:
            engine.mine(tight)
            relaxed = engine.mine(loose)
        assert _signature(relaxed) == _signature(_fresh(network, loose))
        assert len(relaxed) > 1

    def test_interleaved_sweep_queries_have_private_buses(self):
        network = _network(6)
        requests = [
            MineRequest(k=1, min_support=1, min_nhp=0.0, workers=2),
            MineRequest(k=20, min_support=1, min_nhp=0.0, workers=2),
        ]
        with MiningEngine(network, workers=2) as engine:
            results = engine.sweep(requests)
        for request, result in zip(requests, results):
            assert _signature(result) == _signature(_fresh(network, request))


class TestEngineLifecycle:
    def test_close_is_idempotent_and_blocks_serving(self):
        engine = MiningEngine(_network(0), workers=2)
        engine.mine(k=5, min_support=2, min_nhp=0.3, workers=2)
        engine.close()
        engine.close()
        assert engine.closed
        with pytest.raises(RuntimeError):
            engine.mine(k=5, min_support=2, min_nhp=0.3)

    def test_close_unlinks_the_store_segment(self):
        engine = MiningEngine(_network(0), workers=2)
        engine.mine(k=5, min_support=2, min_nhp=0.3, workers=2)
        name = engine._lease.name
        engine.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_crashed_worker_does_not_orphan_segments(self):
        """A task that raises in the pool must not leak the export."""
        from repro.core.miner import BranchSpec
        from repro.data.store import CompactStore
        from repro.parallel import PersistentWorkerPool, ShardTask

        store = CompactStore(_network(0))
        config = MinerConfig(k=3, min_support=2)
        poison = ShardTask(
            shard_id=0,
            branches=(BranchSpec("left", token_index=999, attr="X", value=1, weight=1),),
            config=config,
        )
        lease = store.lease_shared()
        name = lease.name
        with pytest.raises(Exception):
            with lease:
                with PersistentWorkerPool(lease.handle, processes=2) as pool:
                    pool.run_query([poison])
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_engine_survives_a_failed_query(self):
        """An engine keeps serving after one request blows up."""
        network = _network(0)
        good = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        with MiningEngine(network, workers=2) as engine:
            with pytest.raises(Exception):
                # max_lhs_attrs must be an int; the TypeError surfaces
                # during planning, before any worker is touched.
                engine.mine(
                    MineRequest.create(
                        k=5, min_support=2, min_nhp=0.3, workers=2,
                        max_lhs_attrs="bogus",
                    )
                )
            result = engine.mine(good)
        assert _signature(result) == _signature(_fresh(network, good))

    def test_failing_serial_query_does_not_strand_pooled_work(self):
        """A sweep mixing a good pooled query with a bad serial one must
        still gather the pooled job (caching it, recycling its bus) and
        raise the serial failure afterwards."""
        network = _network(1)
        pooled = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        bad = MineRequest.create(
            k=5, min_support=2, min_nhp=0.3, node_attributes=("Nope",)
        )
        with MiningEngine(network, workers=2) as engine:
            with pytest.raises(Exception):
                engine.sweep([pooled, bad])
            if engine._buses is not None:  # every bus back on the free list
                assert len(engine._buses._free) == len(engine._buses._all)
            again = engine.mine(pooled)
            assert engine.stats.cache_hits == 1  # the sweep cached it
        assert _signature(again) == _signature(_fresh(network, pooled))

    def test_failed_store_export_recycles_the_bus_checkout(self, monkeypatch):
        """plan_query acquires the threshold bus *before* resolving the
        store handle; if the shared-memory export then fails (e.g.
        /dev/shm exhaustion) the clean checkout must go back to the
        pool, not strand until close().  Found by the lease-lifecycle
        lint audit (PR 8)."""
        network = _network(0)
        request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        with MiningEngine(network, workers=2) as engine:
            def boom():
                raise OSError("no space left on /dev/shm")
            monkeypatch.setattr(engine, "_task_store_handle", boom)
            with pytest.raises(OSError):
                engine.plan_query(request, engine.query_key(request))
            buses = engine._buses
            assert buses is not None  # the checkout happened...
            assert len(buses._free) == len(buses._all) == 1  # ...and returned
            monkeypatch.undo()
            result = engine.mine(request)  # the engine still serves
        assert _signature(result) == _signature(_fresh(network, request))

    def test_engine_survives_a_worker_side_failure(self):
        """Shards that die *in the pool* must not poison later queries.

        The failing query's bus may only be recycled once every one of
        its shards settled — otherwise a straggler publishes its stale
        k-th-best floor into whichever query grabs the segment next and
        silently over-prunes it.  The follow-up query's equality with a
        fresh run is exactly that regression check.
        """
        network = _network(0)
        # max_rhs_attrs is only consulted inside the RIGHT recursion, so
        # planning succeeds and the TypeError fires in the workers.
        poisoned = MineRequest.create(
            k=5, min_support=2, min_nhp=0.3, workers=2, max_rhs_attrs="bogus"
        )
        loose = MineRequest(k=20, min_support=1, min_nhp=0.0, workers=2)
        with MiningEngine(network, workers=2) as engine:
            with pytest.raises(TypeError):
                engine.mine(poisoned)
            result = engine.mine(loose)
        assert _signature(result) == _signature(_fresh(network, loose))


class TestWorkerValidation:
    """Satellite: --workers passthrough warns instead of crashing."""

    def test_workers_above_cpu_count_warns(self, monkeypatch):
        import repro.parallel.miner as pm

        monkeypatch.setattr(pm.os, "cpu_count", lambda: 2)
        with pytest.warns(UserWarning, match="cpu_count"):
            ParallelGRMiner(_network(0), workers=16, k=5, min_support=2)
        with pytest.warns(UserWarning, match="cpu_count"):
            MiningEngine(_network(0), workers=16)

    def test_workers_above_branch_count_warns_not_crashes(self):
        schema = random_schema(
            num_node_attrs=1, num_edge_attrs=0, max_domain=2, num_homophily=1, seed=9
        )
        network = random_attributed_network(schema, num_nodes=5, num_edges=12, seed=9)
        miner = ParallelGRMiner(network, workers=8, k=3, min_support=1, min_score=0.0)
        with pytest.warns(UserWarning, match="branches"):
            result = miner.mine()
        assert len(result) <= 3

    def test_request_workers_clamped_to_fleet(self):
        network = _network(2)
        request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=8)
        with MiningEngine(network, workers=2) as engine:
            with pytest.warns(UserWarning, match="clamping"):
                result = engine.mine(request)
        assert _signature(result) == _signature(
            _fresh(network, request.with_workers(2))
        )

    def test_clamp_warning_fires_once_per_engine(self):
        """Regression: a 100-request sweep used to emit 100 identical
        clamping warnings; only the first over-asking request warns."""
        network = _network(2)
        with MiningEngine(network, workers=2) as engine:
            with pytest.warns(UserWarning, match="clamping"):
                engine.mine(MineRequest(k=5, min_support=2, min_nhp=0.3, workers=8))
            with warnings.catch_warnings(record=True) as later:
                warnings.simplefilter("always")
                engine.mine(MineRequest(k=4, min_support=2, min_nhp=0.4, workers=9))
                engine.sweep(
                    [MineRequest(k=3, min_support=2, min_nhp=0.5, workers=8)]
                )
            assert not [w for w in later if "clamping" in str(w.message)]