"""Hypothesis explorer, homophily identification and report formatting."""

import pytest

from repro.analysis.homophily import (
    attribute_assortativity,
    homophily_report,
    same_value_propensity,
    suggest_homophily_attributes,
)
from repro.analysis.hypothesis import HypothesisExplorer
from repro.analysis.summary import format_result, format_table2, result_rows
from repro.core.descriptors import GR, Descriptor
from repro.core.miner import GRMiner


@pytest.fixture
def explorer(toy_network):
    return HypothesisExplorer(toy_network)


GR1 = GR(
    Descriptor({"SEX": "M"}),
    Descriptor({"SEX": "F", "RACE": "Asian"}),
    Descriptor({"TYPE": "dates"}),
)


class TestHypothesisExplorer:
    def test_evaluate_returns_labelled_hypothesis(self, explorer):
        h = explorer.evaluate(GR1, label="GR1")
        assert h.label == "GR1"
        assert h.metrics.support_count == 7
        assert "GR1" in str(h)

    def test_compare_sorts_by_nhp(self, explorer):
        gr3 = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}),
            Descriptor({"SEX": "M", "EDU": "Grad"}),
            Descriptor({"TYPE": "dates"}),
        )
        gr4 = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}),
            Descriptor({"SEX": "M", "EDU": "College"}),
            Descriptor({"TYPE": "dates"}),
        )
        ordered = explorer.compare([gr3, gr4])
        assert ordered[0].gr == gr4  # nhp 1.0 beats 0.667

    def test_replace_value_on_lhs(self, explorer):
        """The paper's P207 move: Male -> Female on the LHS."""
        variant = explorer.replace_value(GR1, "lhs", "SEX", "F")
        assert variant.lhs["SEX"] == "F"
        assert variant.rhs == GR1.rhs

    def test_replace_value_on_rhs_and_edge(self, explorer):
        assert explorer.replace_value(GR1, "rhs", "RACE", "White").rhs["RACE"] == "White"
        assert (
            explorer.replace_value(GR1, "edge", "TYPE", "dates").edge["TYPE"] == "dates"
        )

    def test_replace_value_validates_labels(self, explorer):
        with pytest.raises(Exception):
            explorer.replace_value(GR1, "lhs", "SEX", "X")
        with pytest.raises(ValueError):
            explorer.replace_value(GR1, "nowhere", "SEX", "F")

    def test_add_condition(self, explorer):
        """The paper's P5 move: specialize with (G:Male) on the LHS."""
        variant = explorer.add_condition(GR1, "lhs", "EDU", "Grad")
        assert variant.lhs["EDU"] == "Grad"

    def test_add_existing_condition_rejected(self, explorer):
        with pytest.raises(ValueError, match="already"):
            explorer.add_condition(GR1, "lhs", "SEX", "F")

    def test_drop_condition(self, explorer):
        variant = explorer.drop_condition(GR1, "rhs", "RACE")
        assert "RACE" not in variant.rhs
        assert explorer.drop_condition(GR1, "edge", "TYPE").edge == Descriptor()

    def test_one_step_variations_ranked(self, explorer):
        variations = explorer.one_step_variations(GR1, min_support=1)
        assert variations
        nhps = [h.metrics.nhp for h in variations]
        assert nhps == sorted(nhps, reverse=True)
        # Every variation differs from the seed in exactly one value.
        for h in variations:
            assert h.gr != GR1

    def test_one_step_variations_top_limit(self, explorer):
        assert len(explorer.one_step_variations(GR1, top=3)) <= 3

    def test_value_distribution_sums_to_one(self, explorer):
        shares = explorer.value_distribution("EDU")
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["Grad"] == pytest.approx(6 / 14)

    def test_value_distribution_over_edges(self, explorer):
        sources = explorer.value_distribution("SEX", over="sources")
        destinations = explorer.value_distribution("SEX", over="destinations")
        # 14 of the 15 links are male-female, 1 is female-female: each
        # direction contributes 14 male sources and 14 male destinations.
        assert sources["M"] == pytest.approx(14 / 30)
        assert destinations["M"] == pytest.approx(14 / 30)
        with pytest.raises(ValueError):
            explorer.value_distribution("SEX", over="elsewhere")


class TestHomophilyIdentification:
    def test_toy_edu_is_assortative(self, toy_network):
        assert attribute_assortativity(toy_network, "EDU") > 0.2

    def test_toy_sex_is_disassortative(self, toy_network):
        # A dating network: almost all ties cross sexes.
        assert attribute_assortativity(toy_network, "SEX") < -0.5

    def test_propensity_direction_agrees(self, toy_network):
        assert same_value_propensity(toy_network, "EDU") > 1.0
        assert same_value_propensity(toy_network, "SEX") < 1.0

    def test_report_covers_all_attributes(self, toy_network):
        report = homophily_report(toy_network)
        assert set(report) == {"SEX", "RACE", "EDU"}

    def test_suggest_recovers_edu(self, toy_network):
        assert suggest_homophily_attributes(toy_network, 0.1) == ("EDU",)

    def test_suggest_on_pokec_recovers_designation(self):
        from repro.datasets.pokec import synthetic_pokec

        network = synthetic_pokec(num_sources=2000, num_edges=20_000, seed=3)
        suggested = set(suggest_homophily_attributes(network, 0.1))
        assert {"Region", "Education", "Looking-For", "Age"} <= suggested
        assert "Gender" not in suggested


class TestSummaryFormatting:
    def test_result_rows(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        rows = result_rows(result)
        assert len(rows) == len(result)
        assert rows[0]["rank"] == 1
        assert {"gr", "nhp", "confidence", "support_count"} <= set(rows[0])

    def test_format_result(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=3).mine()
        text = format_result(result, title="Toy")
        assert "Toy" in text
        assert "nhp" in text

    def test_format_result_empty(self):
        assert "(no GRs)" in format_result([], title="Empty")

    def test_format_table2_side_by_side(self, toy_network):
        from repro.core.baselines import ConfidenceMiner

        nhp = GRMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        conf = ConfidenceMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        table = format_table2(nhp, conf, rows=3)
        assert "Ranked by nhp" in table and "Ranked by conf" in table
        assert "supp" in table
