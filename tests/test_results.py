"""Result containers, exports and the bench harness."""

import csv
import json

import pytest

from repro.analysis.summary import result_to_csv, result_to_json
from repro.bench.harness import algorithm_factories, format_series, run_series
from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import GRMetrics
from repro.core.miner import GRMiner
from repro.core.results import MinedGR, MiningResult, MiningStats


def _mined(name: str, score: float, support: int = 3) -> MinedGR:
    return MinedGR(
        gr=GR(Descriptor({"A": name}), Descriptor({"B": name})),
        metrics=GRMetrics(
            support_count=support, lw_count=10, homophily_count=1, num_edges=100
        ),
        score=score,
    )


class TestMiningStats:
    def test_as_dict_roundtrip(self):
        stats = MiningStats(lw_nodes=3, grs_examined=10, runtime_seconds=0.5)
        d = stats.as_dict()
        assert d["lw_nodes"] == 3
        assert d["grs_examined"] == 10
        assert d["runtime_seconds"] == 0.5


class TestMiningResult:
    def test_container_protocol(self):
        result = MiningResult(grs=[_mined("x", 0.9), _mined("y", 0.8)])
        assert len(result) == 2
        assert [m.score for m in result] == [0.9, 0.8]
        assert result[1].score == 0.8
        assert len(result.top(1)) == 1

    def test_find(self):
        entry = _mined("x", 0.9)
        result = MiningResult(grs=[entry])
        assert result.find(entry.gr) is entry
        assert result.find(_mined("zz", 0.1).gr) is None

    def test_str_lists_entries(self):
        result = MiningResult(grs=[_mined("x", 0.9)])
        text = str(result)
        assert "1." in text and "(A:x)" in text


class TestExports:
    def test_csv_export(self, toy_network, tmp_path):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        path = result_to_csv(result, tmp_path / "out.csv")
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result)
        assert rows[0]["rank"] == "1"
        assert float(rows[0]["nhp"]) == pytest.approx(result[0].metrics.nhp)

    def test_csv_export_empty_result(self, tmp_path):
        path = result_to_csv(MiningResult(grs=[]), tmp_path / "empty.csv")
        with open(path, newline="") as handle:
            assert list(csv.DictReader(handle)) == []

    def test_json_export_has_structure(self, toy_network, tmp_path):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        path = result_to_json(result, tmp_path / "out.json")
        entries = json.loads(path.read_text())
        assert len(entries) == len(result)
        first = entries[0]
        assert set(first) >= {"lhs", "rhs", "edge", "nhp", "beta", "support_count"}
        assert first["lhs"] == result[0].gr.lhs.as_dict()

    def test_cli_output_flag(self, toy_network, tmp_path):
        from repro.cli import main
        from repro.io.loaders import save_network

        save_network(toy_network, tmp_path / "net")
        out = tmp_path / "result.json"
        assert (
            main(
                [
                    "mine",
                    str(tmp_path / "net"),
                    "-k",
                    "3",
                    "--min-support",
                    "2",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert json.loads(out.read_text())


class TestBenchHarness:
    def test_algorithm_factories_names(self):
        factories = algorithm_factories()
        assert list(factories) == ["GRMiner(k)", "GRMiner", "BL2", "BL1"]
        assert list(algorithm_factories(include_baselines=False)) == [
            "GRMiner(k)",
            "GRMiner",
        ]

    def test_run_series_rows(self, toy_network):
        rows = run_series(
            toy_network,
            "min_support",
            (1, 5),
            dict(min_score=0.5, k=10),
            algorithms=algorithm_factories(include_baselines=False),
        )
        assert len(rows) == 2
        assert rows[0]["min_support"] == 1
        assert "GRMiner(k) (s)" in rows[0]
        assert all(rows[i]["GRMiner(k) grs"] > 0 for i in range(2))

    def test_format_series_alignment(self, toy_network):
        rows = run_series(
            toy_network,
            "min_support",
            (2,),
            dict(min_score=0.5, k=5),
            algorithms=algorithm_factories(include_baselines=False),
        )
        text = format_series(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "min_support" in lines[1]
        assert len(lines) == 4  # title, header, rule, one row

    def test_format_series_empty(self):
        assert format_series([], title="nothing") == "nothing"
