"""End-to-end Table II reproduction at reduced scale (E2/E3 shape checks).

The full-size regeneration lives in ``benchmarks/``; these tests run the
same pipeline on smaller samples and assert the paper's *qualitative*
claims:

* the conf-ranked top list is dominated by trivial homophily GRs
  (Table II's "4 of the top-5 GRs ranked by conf are trivially expected");
* the nhp-ranked top list contains only non-trivial GRs and surfaces
  the planted beyond-homophily preferences;
* nhp-ranked results include low-confidence GRs that conf ranking would
  bury.
"""

import pytest

from repro.core.baselines import ConfidenceMiner
from repro.core.miner import GRMiner
from repro.datasets.dblp import synthetic_dblp
from repro.datasets.pokec import synthetic_pokec


@pytest.fixture(scope="module")
def pokec():
    return synthetic_pokec(num_sources=4000, num_edges=40_000, seed=11)


@pytest.fixture(scope="module")
def dblp():
    return synthetic_dblp(num_authors=8000, num_links=10_000, seed=11)


class TestTable2aPokec:
    @pytest.fixture(scope="class")
    def results(self, pokec):
        nhp = GRMiner(pokec, min_support=0.001, min_score=0.5, k=300).mine()
        conf = ConfidenceMiner(pokec, min_support=0.001, min_score=0.5, k=300).mine()
        return nhp, conf

    def test_conf_top5_dominated_by_trivial_grs(self, pokec, results):
        _, conf = results
        trivial = [m for m in conf.top(5) if m.gr.is_trivial(pokec.schema)]
        assert len(trivial) >= 3  # paper: 4 of 5

    def test_conf_winners_are_same_region_style(self, results):
        _, conf = results
        same_value = [
            m
            for m in conf.top(5)
            if any(m.gr.lhs.get(name) == value for name, value in m.gr.rhs)
        ]
        assert same_value

    def test_nhp_top_grs_all_non_trivial(self, pokec, results):
        nhp, _ = results
        assert all(not m.gr.is_trivial(pokec.schema) for m in nhp)

    def test_nhp_surfaces_education_preferences(self, results):
        nhp, _ = results
        tops = [str(m.gr) for m in nhp.top(20)]
        assert any(
            "Education:Basic" in t and "Education:Secondary" in t for t in tops
        ), tops

    def test_nhp_surfaces_chat_to_good_friend(self, results):
        nhp, _ = results
        tops = [str(m.gr) for m in nhp.top(20)]
        assert any(
            "Looking-For:Chat" in t and "Looking-For:Good Friend" in t for t in tops
        )

    def test_nhp_list_contains_low_confidence_grs(self, results):
        """GRs found *because* their nhp is high despite low conf."""
        nhp, _ = results
        assert any(
            m.metrics.confidence < 0.4 and m.metrics.nhp >= 0.5 for m in nhp.top(20)
        )

    def test_p207_style_pattern_qualifies(self, pokec):
        """The P207 pattern passes the paper's thresholds and is mined.

        (Its exact rank depends on how many stronger multi-attribute
        combinations the synthetic sample produces — the paper found it
        at rank 207 of 300; we assert membership in the full qualifying
        set rather than a fixed prefix.)"""
        full = GRMiner(pokec, min_support=0.001, min_score=0.5, k=None).mine()
        assert any(
            m.gr.lhs.get("Age") == "25-34" and m.gr.rhs.get("Age") == "18-24"
            for m in full
        )


class TestTable2bDBLP:
    @pytest.fixture(scope="class")
    def results(self, dblp):
        nhp = GRMiner(dblp, min_support=0.001, min_score=0.5, k=20).mine()
        conf = ConfidenceMiner(dblp, min_support=0.001, min_score=0.5, k=20).mine()
        return nhp, conf

    def test_conf_top_is_same_area(self, results):
        _, conf = results
        top = conf.top(3)
        assert any(
            m.gr.lhs.get("Area") == m.gr.rhs.get("Area") is not None for m in top
        )

    def test_nhp_finds_poor_preference(self, results):
        """D1/D3/D5: Poor-productivity destinations dominate."""
        nhp, _ = results
        assert any(m.gr.rhs.get("Productivity") == "Poor" for m in nhp.top(10))

    def test_nhp_finds_db_often_dm(self, results):
        """D2: the interdisciplinary DB --often--> DM tie."""
        nhp, _ = results
        assert any(
            m.gr.lhs.get("Area") == "DB"
            and m.gr.rhs.get("Area") == "DM"
            and m.gr.edge.get("Strength") == "often"
            for m in nhp
        ), [str(m.gr) for m in nhp]

    def test_d2_would_not_be_found_by_conf(self, results, dblp):
        """D2's conf ≈ 7% is far below the 50% minConf the paper uses."""
        from repro.core.descriptors import GR as GRcls, Descriptor
        from repro.core.metrics import MetricEngine

        engine = MetricEngine(dblp)
        d2 = GRcls(
            Descriptor({"Area": "DB"}),
            Descriptor({"Area": "DM"}),
            Descriptor({"Strength": "often"}),
        )
        metrics = engine.evaluate(d2)
        assert metrics.confidence < 0.5 <= metrics.nhp


class TestDynamicThresholdEffect:
    def test_topk_pruning_reduces_examined_grs(self, dblp):
        """Fig. 4's GRMiner(k) vs GRMiner gap, as search effort."""
        with_k = GRMiner(dblp, min_support=0.001, min_score=0.0, k=5).mine()
        without_k = GRMiner(
            dblp, min_support=0.001, min_score=0.0, k=5, push_topk=False
        ).mine()
        assert with_k.stats.grs_examined <= without_k.stats.grs_examined

    def test_nhp_pruning_reduces_examined_grs(self, dblp):
        """Fig. 4b's GRMiner vs BL2 gap."""
        pruned = GRMiner(dblp, min_support=0.001, min_score=0.5, k=None).mine()
        unpruned = GRMiner(
            dblp,
            min_support=0.001,
            min_score=0.5,
            k=None,
            push_score_pruning=False,
        ).mine()
        assert pruned.stats.grs_examined < unpruned.stats.grs_examined
        assert [str(m.gr) for m in pruned] == [str(m.gr) for m in unpruned]
