"""Unit tests for ``repro.obs`` (metrics + traces) and ``repro.bench.history``."""

from __future__ import annotations

import json
import re

import pytest

from repro.bench.history import (
    check_regressions,
    format_report,
    load_history,
    record_bench_run,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import NullTracer, Tracer


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_math(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_math(self):
        reg = MetricsRegistry()
        g = reg.gauge("inflight", "inflight shards")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_s", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        cumulative = h.cumulative()
        assert cumulative == [(0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5)]
        # cumulative counts must be monotonic and end at the total count
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == h.count

    def test_histogram_boundary_lands_in_le_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "h", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive
        assert h.cumulative()[0] == (1.0, 1)

    def test_labels_children_are_distinct_and_stable(self):
        reg = MetricsRegistry()
        family = reg.counter("resolved_total", "resolved", labels=("state",))
        family.labels(state="done").inc()
        family.labels(state="done").inc()
        family.labels(state="failed").inc()
        assert family.labels(state="done").value == 2
        assert family.labels(state="failed").value == 1

    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("n", "help")
        b = reg.counter("n", "help")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n", "help")
        with pytest.raises(ValueError):
            reg.gauge("n", "help")

    def test_label_schema_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n", "help", labels=("state",))
        with pytest.raises(ValueError):
            reg.counter("n", "help", labels=("priority",))

    def test_set_enabled_gates_all_mutation(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "c")
        g = reg.gauge("g", "g")
        h = reg.histogram("h", "h")
        reg.set_enabled(False)
        c.inc()
        g.set(9)
        h.observe(1.0)
        assert c.value == 0 and g.value == 0 and h.count == 0
        reg.set_enabled(True)
        c.inc()
        assert c.value == 1

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "c")
        h = reg.histogram("h", "h")
        c.inc(7)
        h.observe(0.2)
        reg.reset()
        assert c.value == 0
        assert h.count == 0 and h.sum == 0
        assert reg.counter("c", "c") is c  # same family, not re-created

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# Prometheus text format, version 0.0.4: every non-comment line is
#   name{label="value",...} value
_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$'
)


class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", "Jobs submitted").inc(3)
        reg.gauge("repro_inflight", "Inflight shards").set(2)
        family = reg.counter("repro_resolved_total", "Resolved", labels=("state",))
        family.labels(state="done").inc(5)
        h = reg.histogram("repro_latency_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return reg

    def test_every_line_parses(self):
        text = self._registry().render_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE_LINE.match(line), f"invalid exposition line: {line!r}"

    def test_help_and_type_precede_samples(self):
        text = self._registry().render_prometheus()
        lines = text.strip().splitlines()
        seen: set[str] = set()
        for line in lines:
            if line.startswith("#"):
                name = line.split()[2]
                seen.add(name)
            else:
                name = line.split("{")[0].split(" ")[0]
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen or base in seen, f"sample before HELP/TYPE: {line!r}"
        assert "# TYPE repro_latency_seconds histogram" in lines
        assert "# TYPE repro_jobs_total counter" in lines
        assert "# TYPE repro_inflight gauge" in lines

    def test_histogram_series_complete(self):
        text = self._registry().render_prometheus()
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert re.search(r"repro_latency_seconds_sum 5\.5\d*", text)

    def test_labelled_sample_rendered(self):
        text = self._registry().render_prometheus()
        assert 'repro_resolved_total{state="done"} 5' in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "c", labels=("net",)).labels(net='a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert 'c{net="a\\"b\\\\c\\nd"} 1' in text

    def test_json_render_round_trips(self):
        payload = self._registry().render_json()
        parsed = json.loads(json.dumps(payload))
        names = {m["name"] for m in parsed["metrics"]}
        assert "repro_latency_seconds" in names
        hist = next(m for m in parsed["metrics"] if m["name"] == "repro_latency_seconds")
        assert hist["type"] == "histogram"
        assert hist["samples"][0]["buckets"]["+Inf"] == 3
        assert hist["samples"][0]["count"] == 3


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_trace_relative_times(self):
        tracer = Tracer()
        tracer.begin("j1", network="a", priority=1)
        t0 = tracer._jobs["j1"]["t0"]
        tracer.span("j1", "plan", t0 + 0.1, t0 + 0.3, shards=2)
        tracer.span("j1", "shard-0", t0 + 0.3, t0 + 0.9, tid=1)
        trace = tracer.trace("j1")
        assert trace["job_id"] == "j1"
        assert trace["meta"] == {"network": "a", "priority": 1}
        plan, shard = trace["spans"]
        assert plan["name"] == "plan"
        assert plan["start_s"] == pytest.approx(0.1)
        assert plan["duration_s"] == pytest.approx(0.2)
        assert plan["args"] == {"shards": 2}
        assert shard["tid"] == 1

    def test_chrome_trace_is_valid_trace_event_json(self):
        tracer = Tracer()
        tracer.begin("j1")
        t0 = tracer._jobs["j1"]["t0"]
        tracer.span("j1", "execute", t0, t0 + 0.5, tid=0, entries=7)
        payload = tracer.chrome_trace("j1")
        parsed = json.loads(json.dumps(payload))  # must survive a JSON round trip
        events = parsed["traceEvents"]
        assert events[0]["ph"] == "M"  # metadata record first
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        for event in complete:
            # the keys chrome://tracing requires of a complete event
            assert {"name", "ph", "pid", "tid", "ts", "dur"} <= set(event)
            assert event["dur"] >= 0
        assert complete[0]["dur"] == pytest.approx(5e5, rel=1e-3)  # µs

    def test_unknown_job_returns_none(self):
        tracer = Tracer()
        assert tracer.trace("nope") is None
        assert tracer.chrome_trace("nope") is None

    def test_ring_evicts_oldest_job(self):
        tracer = Tracer(max_jobs=2)
        for jid in ("a", "b", "c"):
            tracer.begin(jid)
        assert tracer.jobs() == ["b", "c"]
        assert tracer.trace("a") is None

    def test_rebegin_moves_job_to_newest(self):
        tracer = Tracer(max_jobs=2)
        tracer.begin("a")
        tracer.begin("b")
        tracer.begin("a")  # warm-start resubmit: "a" becomes the newest again
        tracer.begin("c")
        assert tracer.jobs() == ["a", "c"]

    def test_span_cap(self):
        tracer = Tracer(max_spans_per_job=3)
        tracer.begin("j")
        for i in range(10):
            tracer.span("j", f"s{i}", 0.0, 1.0)
        assert len(tracer.trace("j")["spans"]) == 3

    def test_span_for_unknown_job_is_dropped(self):
        tracer = Tracer()
        tracer.span("ghost", "s", 0.0, 1.0)  # must not raise
        assert tracer.trace("ghost") is None

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.begin("j", network="a")
        tracer.span("j", "plan", 0.0, 1.0)
        assert tracer.jobs() == []
        assert tracer.trace("j") is None
        assert tracer.chrome_trace("j") is None


# ---------------------------------------------------------------------------
# bench history
# ---------------------------------------------------------------------------


def _row(bench="serve", value=1.0, better="lower", metric="p95_s", config=None):
    return {
        "ts": "2026-08-07T00:00:00+00:00",
        "git_sha": "abc",
        "bench": bench,
        "config": config or {"quick": True},
        "headline": {metric: {"value": value, "better": better}},
    }


class TestBenchHistory:
    def test_record_writes_snapshot_and_appends(self, tmp_path):
        path = record_bench_run(
            "demo",
            {"summary": {"x": 1}},
            tmp_path,
            headline={"x_s": {"value": 1.25, "better": "lower"}},
            config={"quick": True},
            timestamp="2026-08-07T00:00:00+00:00",
        )
        snapshot = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert snapshot == {"summary": {"x": 1}}
        record_bench_run(
            "demo",
            {"summary": {"x": 2}},
            tmp_path,
            headline={"x_s": {"value": 1.5, "better": "lower"}},
            config={"quick": True},
            timestamp="2026-08-07T01:00:00+00:00",
        )
        rows = load_history(path)
        assert len(rows) == 2  # appended, not overwritten
        assert rows[0]["headline"]["x_s"] == {"value": 1.25, "better": "lower"}
        assert rows[1]["bench"] == "demo"
        # snapshot reflects the latest run only
        assert json.loads((tmp_path / "BENCH_demo.json").read_text())["summary"]["x"] == 2

    def test_record_validates_headline(self, tmp_path):
        with pytest.raises(ValueError, match="no 'value'"):
            record_bench_run("d", {}, tmp_path, headline={"m": {"better": "lower"}})
        with pytest.raises(ValueError, match="'lower' or 'higher'"):
            record_bench_run(
                "d", {}, tmp_path, headline={"m": {"value": 1, "better": "sideways"}}
            )

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_load_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"bench": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_history(path)

    def test_regression_lower_is_better(self):
        rows = [_row(value=1.0), _row(value=1.0), _row(value=1.5)]
        findings = check_regressions(rows, tolerance=0.10)
        assert len(findings) == 1
        assert findings[0]["metric"] == "p95_s"
        assert findings[0]["ratio"] == pytest.approx(1.5)

    def test_regression_higher_is_better(self):
        rows = [
            _row(value=2.0, better="higher", metric="speedup"),
            _row(value=2.0, better="higher", metric="speedup"),
            _row(value=1.0, better="higher", metric="speedup"),
        ]
        assert len(check_regressions(rows, tolerance=0.10)) == 1

    def test_within_tolerance_passes(self):
        rows = [_row(value=1.0), _row(value=1.05)]
        assert check_regressions(rows, tolerance=0.10) == []

    def test_single_run_group_skipped(self):
        assert check_regressions([_row(value=99.0)]) == []

    def test_configs_do_not_cross_baseline(self):
        # A slow full run must not be flagged against a quick baseline.
        rows = [
            _row(value=0.1, config={"quick": True}),
            _row(value=10.0, config={"quick": False}),
        ]
        assert check_regressions(rows) == []

    def test_median_baseline_robust_to_outlier(self):
        rows = [_row(value=1.0), _row(value=1.0), _row(value=50.0), _row(value=1.05)]
        assert check_regressions(rows, tolerance=0.10) == []

    def test_zero_baseline_skipped(self):
        rows = [_row(value=0.0), _row(value=5.0)]
        assert check_regressions(rows) == []

    def test_format_report_marks_regressions(self):
        rows = [_row(value=1.0), _row(value=1.0), _row(value=2.0)]
        findings = check_regressions(rows)
        text = format_report(rows, findings)
        assert "serve" in text
        assert "p95_s: 1 -> 1 -> 2" in text
        assert "** REGRESSION +100.0%" in text
        assert "1 regression(s)" in text

    def test_format_report_empty(self):
        assert format_report([]) == "no bench history yet"
