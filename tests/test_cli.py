"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def toy_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "toy"
    assert main(["generate", "toy", str(path)]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_min_support_parses_counts_and_fractions(self):
        parser = build_parser()
        args = parser.parse_args(["mine", "d", "--min-support", "50"])
        assert args.min_support == 50 and isinstance(args.min_support, int)
        args = parser.parse_args(["mine", "d", "--min-support", "0.001"])
        assert args.min_support == pytest.approx(0.001)


class TestGenerate:
    def test_toy_dataset_written(self, toy_dir):
        assert (toy_dir / "nodes.csv").exists()
        assert (toy_dir / "edges.csv").exists()

    def test_financial_with_sizes(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    "financial",
                    str(tmp_path / "fin"),
                    "--nodes",
                    "300",
                    "--edges",
                    "1500",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "|V|=300" in out and "|E|=1500" in out

    def test_pokec_small(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    "pokec",
                    str(tmp_path / "pk"),
                    "--nodes",
                    "200",
                    "--edges",
                    "1000",
                ]
            )
            == 0
        )
        assert "|E|=1000" in capsys.readouterr().out

    def test_dblp_small(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    "dblp",
                    str(tmp_path / "db"),
                    "--nodes",
                    "300",
                    "--edges",
                    "2000",
                ]
            )
            == 0
        )
        assert "|E|=2000" in capsys.readouterr().out


class TestInfo:
    def test_prints_schema_and_homophily(self, toy_dir, capsys):
        assert main(["info", str(toy_dir)]) == 0
        out = capsys.readouterr().out
        assert "EDU (homophily)" in out
        assert "assortativity" in out


class TestMine:
    def test_prints_topk(self, toy_dir, capsys):
        assert (
            main(
                [
                    "mine",
                    str(toy_dir),
                    "-k",
                    "3",
                    "--min-support",
                    "2",
                    "--min-nhp",
                    "0.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Top-3 GRs by nhp" in out
        assert "nhp = 100.0%" in out

    def test_homophily_override(self, toy_dir, capsys):
        assert (
            main(
                [
                    "mine",
                    str(toy_dir),
                    "-k",
                    "3",
                    "--min-support",
                    "2",
                    "--homophily",
                    "RACE",
                ]
            )
            == 0
        )
        assert "Top-3" in capsys.readouterr().out

    def test_attribute_restriction(self, toy_dir, capsys):
        assert (
            main(["mine", str(toy_dir), "-k", "3", "--attributes", "SEX"]) == 0
        )
        out = capsys.readouterr().out
        assert "EDU" not in out.split("[")[0]  # no EDU conditions in results

    def test_workers_flag_mines_in_parallel(self, toy_dir, capsys):
        assert (
            main(
                [
                    "mine",
                    str(toy_dir),
                    "-k",
                    "3",
                    "--min-support",
                    "2",
                    "--min-nhp",
                    "0.5",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Top-3 GRs by nhp" in out

    def test_workers_flag_matches_serial_output(self, toy_dir, capsys):
        args = ["mine", str(toy_dir), "-k", "3", "--min-support", "2"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # The serial GRMiner(k) heuristic can return fewer than k GRs
        # (DESIGN.md §5.5); the parallel miner is exact, so the serial
        # table must be a prefix of the parallel one.
        serial_table = [l for l in serial_out.splitlines() if "-->" in l]
        parallel_table = [l for l in parallel_out.splitlines() if "-->" in l]
        assert serial_table == parallel_table[: len(serial_table)]
        assert len(parallel_table) >= len(serial_table)

    def test_sweep_grid_through_engine(self, toy_dir, capsys, tmp_path):
        import json

        out_path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep",
                    str(toy_dir),
                    "-k",
                    "3",
                    "5",
                    "--min-nhp",
                    "0.4",
                    "0.6",
                    "--min-support",
                    "2",
                    "--json",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sweep of 4 queries" in out
        assert "0 store export(s)" in out  # serial mode: no export needed
        payload = json.loads(out_path.read_text())
        assert len(payload["rows"]) == 4
        assert payload["engine"]["queries"] == 4
        # Every grid point must equal a fresh serial run of the same params.
        from repro.core.miner import GRMiner
        from repro.io.loaders import load_network

        network = load_network(str(toy_dir))
        for row in payload["rows"]:
            fresh = GRMiner(
                network,
                k=row["k"],
                min_support=row["minSupp"],
                min_score=row["minNhp"],
                rank_by=row["rank_by"],
            ).mine()
            assert row["grs"] == len(fresh)

    def test_sweep_workers_flag(self, toy_dir, capsys):
        assert (
            main(
                [
                    "sweep",
                    str(toy_dir),
                    "-k",
                    "3",
                    "--min-support",
                    "2",
                    "--min-nhp",
                    "0.5",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Sweep of 1 queries" in out

    def test_rank_by_confidence(self, toy_dir, capsys):
        assert main(["mine", str(toy_dir), "--rank-by", "confidence"]) == 0
        assert "confidence" in capsys.readouterr().out


class TestCompare:
    def test_table2_layout(self, toy_dir, capsys):
        assert (
            main(["compare", str(toy_dir), "-k", "5", "--min-support", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Ranked by nhp" in out and "Ranked by conf" in out


class TestHomophilyCommand:
    def test_suggests_edu(self, toy_dir, capsys):
        assert main(["homophily", str(toy_dir)]) == 0
        out = capsys.readouterr().out
        assert "suggested homophily attributes: EDU" in out


class TestHub:
    @pytest.fixture(scope="class")
    def fin_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-hub") / "fin"
        assert main(
            ["generate", "financial", str(path), "--nodes", "60",
             "--edges", "300", "--seed", "7"]
        ) == 0
        return path

    def test_hub_sweeps_named_networks(self, toy_dir, fin_dir, capsys, tmp_path):
        import json

        out_path = tmp_path / "hub.json"
        assert (
            main(
                [
                    "hub",
                    "--register", f"toy={toy_dir}",
                    "--register", f"fin={fin_dir}",
                    "--mine", "toy",
                    "--mine", "fin",
                    "--mine", "toy",  # interleaved + repeated: cache hits
                    "-k", "3", "5",
                    "--min-support", "2",
                    "--min-nhp", "0.5",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Hub sweep: 3 network visit(s)" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["rows"]) == 6  # 3 visits x 2 grid points
        assert payload["hub"]["queries"] == 6
        # The second toy visit is answered entirely from the cache.
        revisit = [r for r in payload["rows"] if r["network"] == "toy"][2:]
        assert all(r["cached"] for r in revisit)
        assert payload["hub"]["cache_hits"] == 2

    def test_hub_disk_cache_warms_a_restart(self, toy_dir, capsys, tmp_path):
        cache_path = tmp_path / "hub-results.sqlite"
        argv = [
            "hub",
            "--register", f"toy={toy_dir}",
            "-k", "4",
            "--min-support", "2",
            "--min-nhp", "0.5",
            "--disk-cache", str(cache_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 cache hit(s)" not in cold
        assert main(argv) == 0  # a fresh process over the same file
        warm = capsys.readouterr().out
        assert "1 cache hit(s) across 1 queries" in warm

    def test_hub_duplicate_grid_points_report_cached_once(
        self, toy_dir, capsys, tmp_path
    ):
        """Regression: grid points canonicalizing to one key (absolute 2
        vs fraction 0.05 of 30 edges) are mined once; the duplicate row
        must report cached=True instead of double-counting the runtime."""
        import json

        out_path = tmp_path / "dup.json"
        assert (
            main(
                [
                    "hub",
                    "--register", f"toy={toy_dir}",
                    "-k", "3",
                    "--min-support", "2", "0.05",
                    "--min-nhp", "0.5",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        rows = json.loads(out_path.read_text())["rows"]
        assert [row["cached"] for row in rows] == [False, True]
        assert rows[1]["time (s)"] == 0.0
        assert rows[0]["grs"] == rows[1]["grs"]

    def test_hub_rejects_malformed_registration(self, toy_dir):
        with pytest.raises(SystemExit):
            main(["hub", "--register", "nodirspec", "-k", "3"])


class TestBenchReport:
    def _history(self, tmp_path, values):
        import json as _json

        path = tmp_path / "history.jsonl"
        rows = [
            {
                "ts": f"2026-08-0{i + 1}T00:00:00+00:00",
                "git_sha": "abc",
                "bench": "serve",
                "config": {"quick": True},
                "headline": {"p95_s": {"value": value, "better": "lower"}},
            }
            for i, value in enumerate(values)
        ]
        path.write_text("".join(_json.dumps(row) + "\n" for row in rows))
        return path

    def test_report_renders_trajectory(self, tmp_path, capsys):
        path = self._history(tmp_path, [1.0, 1.02])
        assert main(["bench-report", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "p95_s: 1 -> 1.02" in out
        assert "REGRESSION" not in out

    def test_check_flags_regression_nonzero(self, tmp_path, capsys):
        path = self._history(tmp_path, [1.0, 1.0, 2.0])
        assert main(["bench-report", "--history", str(path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "** REGRESSION" in out

    def test_check_passes_within_tolerance(self, tmp_path, capsys):
        path = self._history(tmp_path, [1.0, 1.0, 1.05])
        assert main(["bench-report", "--history", str(path), "--check"]) == 0
        capsys.readouterr()

    def test_missing_history_is_empty_not_an_error(self, tmp_path, capsys):
        path = tmp_path / "none.jsonl"
        assert main(["bench-report", "--history", str(path), "--check"]) == 0
        assert "no bench history yet" in capsys.readouterr().out
