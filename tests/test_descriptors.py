"""Unit tests for Descriptor and GR (Section III-A definitions)."""

import pytest

from repro.core.descriptors import GR, Descriptor, gr_from_codes
from repro.datasets.toy import toy_schema


@pytest.fixture
def schema():
    return toy_schema()


class TestDescriptor:
    def test_canonical_ordering(self):
        d1 = Descriptor([("SEX", "F"), ("EDU", "Grad")])
        d2 = Descriptor([("EDU", "Grad"), ("SEX", "F")])
        assert d1 == d2
        assert hash(d1) == hash(d2)
        assert d1.items == (("EDU", "Grad"), ("SEX", "F"))

    def test_mapping_construction(self):
        assert Descriptor({"SEX": "F"}) == Descriptor([("SEX", "F")])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            Descriptor([("SEX", "F"), ("SEX", "M")])

    def test_len_bool_iter(self):
        empty = Descriptor()
        assert len(empty) == 0 and not empty
        d = Descriptor({"SEX": "F"})
        assert len(d) == 1 and d
        assert list(d) == [("SEX", "F")]

    def test_contains_and_getitem(self):
        d = Descriptor({"SEX": "F"})
        assert "SEX" in d and "EDU" not in d
        assert d["SEX"] == "F"
        with pytest.raises(KeyError):
            d["EDU"]
        assert d.get("EDU") is None
        assert d.get("EDU", "x") == "x"

    def test_issubset(self):
        small = Descriptor({"SEX": "F"})
        big = Descriptor({"SEX": "F", "EDU": "Grad"})
        assert small.issubset(big)
        assert not big.issubset(small)
        # Same attribute, different value: not a subset.
        assert not Descriptor({"SEX": "M"}).issubset(big)

    def test_extend_and_restrict(self):
        d = Descriptor({"SEX": "F"})
        extended = d.extend("EDU", "Grad")
        assert extended["EDU"] == "Grad"
        assert extended.restrict(["SEX"]) == d

    def test_str(self):
        assert str(Descriptor()) == "()"
        assert str(Descriptor({"SEX": "F", "EDU": "Grad"})) == "(EDU:Grad, SEX:F)"


class TestGR:
    def test_rhs_required(self):
        with pytest.raises(ValueError, match="RHS"):
            GR(Descriptor({"SEX": "F"}), Descriptor())

    def test_edge_attribute_name_collision_rejected(self):
        with pytest.raises(ValueError, match="shares attribute"):
            GR(
                Descriptor({"SEX": "F"}),
                Descriptor({"EDU": "Grad"}),
                Descriptor({"SEX": "M"}),
            )

    def test_beta_needs_homophily_and_value_difference(self, schema):
        # EDU is homophilous in the toy schema.
        gr = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}),
            Descriptor({"SEX": "M", "EDU": "College"}),
        )
        assert gr.beta(schema) == ("EDU",)

    def test_beta_empty_when_values_equal(self, schema):
        gr = GR(Descriptor({"EDU": "Grad"}), Descriptor({"EDU": "Grad"}))
        assert gr.beta(schema) == ()

    def test_beta_empty_for_non_homophily_attribute(self, schema):
        gr = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        assert gr.beta(schema) == ()

    def test_beta_empty_when_attribute_not_on_lhs(self, schema):
        gr = GR(Descriptor({"SEX": "F"}), Descriptor({"EDU": "College"}))
        assert gr.beta(schema) == ()

    def test_homophily_effect_rhs(self, schema):
        gr = GR(
            Descriptor({"EDU": "Grad", "SEX": "F"}),
            Descriptor({"EDU": "College"}),
        )
        assert gr.homophily_effect_rhs(schema) == Descriptor({"EDU": "Grad"})

    def test_trivial_requires_all_rhs_homophilous_and_contained(self, schema):
        trivial = GR(Descriptor({"EDU": "Grad", "SEX": "F"}), Descriptor({"EDU": "Grad"}))
        assert trivial.is_trivial(schema)
        # Non-homophily value on RHS -> non-trivial even if contained.
        nontrivial = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "F"}))
        assert not nontrivial.is_trivial(schema)
        # Homophily value not contained in LHS -> non-trivial.
        assert not GR(
            Descriptor({"SEX": "F"}), Descriptor({"EDU": "Grad"})
        ).is_trivial(schema)
        # Mixed RHS with one non-homophily value -> non-trivial.
        assert not GR(
            Descriptor({"EDU": "Grad", "SEX": "F"}),
            Descriptor({"EDU": "Grad", "SEX": "M"}),
        ).is_trivial(schema)

    def test_generality_partial_order(self):
        general = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        special = GR(Descriptor({"SEX": "F", "EDU": "Grad"}), Descriptor({"SEX": "M"}))
        assert general.is_more_general_than(special)
        assert not special.is_more_general_than(general)
        assert not general.is_more_general_than(general)  # strict

    def test_generality_requires_same_rhs(self):
        g1 = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        g2 = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}), Descriptor({"SEX": "M", "EDU": "Grad"})
        )
        assert not g1.is_more_general_than(g2)

    def test_generality_covers_edge_descriptor(self):
        g1 = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        g2 = GR(
            Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}), Descriptor({"TYPE": "dates"})
        )
        assert g1.is_more_general_than(g2)

    def test_generalizations_enumerates_proper_subsets(self):
        gr = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}),
            Descriptor({"SEX": "M"}),
            Descriptor({"TYPE": "dates"}),
        )
        gens = list(gr.generalizations())
        assert len(gens) == 2 ** 3 - 1
        assert all(g.is_more_general_than(gr) for g in gens)
        assert gr not in gens

    def test_str_forms(self):
        gr = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        assert str(gr) == "(SEX:F) --> (SEX:M)"
        with_edge = GR(
            Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}), Descriptor({"TYPE": "dates"})
        )
        assert "--(TYPE:dates)-->" in str(with_edge)

    def test_sort_key_is_canonical_string(self):
        gr = GR(Descriptor({"SEX": "F"}), Descriptor({"SEX": "M"}))
        assert gr.sort_key() == str(gr)


class TestGRFromCodes:
    def test_decodes_labels(self, schema):
        gr = gr_from_codes(schema, {"SEX": 1}, {"TYPE": 1}, {"EDU": 3})
        assert gr.lhs == Descriptor({"SEX": "F"})
        assert gr.edge == Descriptor({"TYPE": "dates"})
        assert gr.rhs == Descriptor({"EDU": "Grad"})
