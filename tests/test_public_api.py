"""Public API surface: imports, __all__ hygiene, docstring examples."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.parallel",
    "repro.data",
    "repro.datasets",
    "repro.analysis",
    "repro.io",
    "repro.cube",
    "repro.sortutil",
    "repro.bench",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_imports(self, package):
        importlib.import_module(package)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__


class TestTopLevelConvenience:
    def test_everything_needed_for_quickstart_is_top_level(self):
        import repro

        for name in (
            "GR",
            "Descriptor",
            "GRMiner",
            "MetricEngine",
            "ParallelGRMiner",
            "SocialNetwork",
            "Schema",
            "Attribute",
            "mine_top_k",
        ):
            assert hasattr(repro, name)

    def test_mine_top_k_docstring_example(self):
        from repro import mine_top_k
        from repro.datasets import toy_dating_network

        result = mine_top_k(toy_dating_network(), k=5, min_support=2, min_nhp=0.5)
        assert len(result) <= 5

    def test_module_docstrings_exist(self):
        """Every public module is documented."""
        for package in PACKAGES:
            module = importlib.import_module(package)
            assert module.__doc__, f"{package} lacks a docstring"

    def test_public_classes_documented(self):
        from repro import (
            GR,
            CompactStore,
            Descriptor,
            GRMetrics,
            GRMiner,
            MetricEngine,
            MiningResult,
            Schema,
            SocialNetwork,
        )

        for cls in (
            GR,
            CompactStore,
            Descriptor,
            GRMetrics,
            GRMiner,
            MetricEngine,
            MiningResult,
            Schema,
            SocialNetwork,
        ):
            assert cls.__doc__ and len(cls.__doc__) > 20, cls
