"""BL1 / BL2 / ConfidenceMiner behaviour (Section VI-D)."""

import pytest

from repro.core.baselines import BL1Miner, BL2Miner, ConfidenceMiner
from repro.core.miner import GRMiner
from repro.datasets.random_graphs import random_attributed_network, random_schema


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


@pytest.fixture(scope="module")
def random_network():
    schema = random_schema(
        num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=1, seed=42
    )
    return random_attributed_network(
        schema, num_nodes=30, num_edges=200, homophily_strength=0.5, seed=42
    )


class TestBL1:
    @pytest.mark.parametrize(
        "params",
        [
            dict(min_support=2, min_score=0.5),
            dict(min_support=1, min_score=0.0),
            dict(min_support=4, min_score=0.3, rank_by="confidence"),
            dict(min_support=2, min_score=0.5, allow_empty_lhs=True),
        ],
    )
    def test_matches_grminer_output(self, toy_network, params):
        bl1 = BL1Miner(toy_network, k=None, **params).mine()
        reference = GRMiner(toy_network, k=None, **params).mine()
        assert _signature(bl1) == _signature(reference)

    def test_matches_on_random_network(self, random_network):
        bl1 = BL1Miner(random_network, k=None, min_support=3, min_score=0.4).mine()
        reference = GRMiner(random_network, k=None, min_support=3, min_score=0.4).mine()
        assert _signature(bl1) == _signature(reference)

    def test_topk_truncation(self, toy_network):
        bl1 = BL1Miner(toy_network, k=5, min_support=2, min_score=0.5).mine()
        assert len(bl1) <= 5

    def test_no_nhp_pruning_in_search(self, toy_network):
        """BL1 enumerates all frequent cells regardless of minNhp."""
        strict = BL1Miner(toy_network, k=None, min_support=2, min_score=0.99).mine()
        loose = BL1Miner(toy_network, k=None, min_support=2, min_score=0.0).mine()
        assert strict.stats.grs_examined == loose.stats.grs_examined

    def test_node_attribute_restriction(self, toy_network):
        result = BL1Miner(
            toy_network, k=None, min_support=1, min_score=0.0, node_attributes=["SEX"]
        ).mine()
        used = {name for m in result for name, _ in tuple(m.gr.lhs) + tuple(m.gr.rhs)}
        assert used <= {"SEX"}

    def test_rank_by_validated(self, toy_network):
        with pytest.raises(ValueError):
            BL1Miner(toy_network, rank_by="lift")

    def test_params_tagged(self, toy_network):
        result = BL1Miner(toy_network, min_support=2).mine()
        assert result.params["baseline"] == "BL1"


class TestBL2:
    def test_matches_grminer_output(self, toy_network):
        bl2 = BL2Miner(toy_network, k=None, min_support=2, min_score=0.5).mine()
        reference = GRMiner(toy_network, k=None, min_support=2, min_score=0.5).mine()
        assert _signature(bl2) == _signature(reference)

    def test_matches_on_random_network(self, random_network):
        bl2 = BL2Miner(random_network, k=None, min_support=3, min_score=0.4).mine()
        reference = GRMiner(random_network, k=None, min_support=3, min_score=0.4).mine()
        assert _signature(bl2) == _signature(reference)

    def test_pushdowns_disabled(self, toy_network):
        miner = BL2Miner(toy_network)
        assert miner.push_score_pruning is False
        assert miner.push_topk is False

    def test_examines_at_least_as_much_as_grminer(self, toy_network):
        bl2 = BL2Miner(toy_network, k=None, min_support=1, min_score=0.8).mine()
        grm = GRMiner(toy_network, k=None, min_support=1, min_score=0.8).mine()
        assert bl2.stats.grs_examined >= grm.stats.grs_examined

    def test_params_tagged(self, toy_network):
        assert BL2Miner(toy_network, min_support=2).mine().params["baseline"] == "BL2"


class TestConfidenceMiner:
    def test_defaults_to_confidence_ranking(self, toy_network):
        miner = ConfidenceMiner(toy_network, min_support=2, min_score=0.5)
        assert miner.rank_by == "confidence"
        assert miner.include_trivial is True

    def test_scores_are_confidences(self, toy_network):
        result = ConfidenceMiner(toy_network, min_support=2, min_score=0.5, k=5).mine()
        for m in result:
            assert m.score == pytest.approx(m.metrics.confidence)

    def test_trivial_grs_can_appear(self, random_network):
        """conf ranking keeps homophilic GRs — the Table II contrast."""
        result = ConfidenceMiner(
            random_network, min_support=2, min_score=0.0, k=None
        ).mine()
        schema = random_network.schema
        assert any(m.gr.is_trivial(schema) for m in result)
