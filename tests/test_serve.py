"""repro.serve: async serving semantics over one shared fleet.

The serving layer's contract, on top of the hub's:

1. **Exactness under any interleaving** — every served answer equals a
   fresh one-shot miner, no matter how many concurrent jobs' shards the
   scheduler interleaves, in what order they were submitted, at what
   priorities, or across worker counts; cache sharing included.
2. **Priorities** — a high-priority job submitted *after* a bulk batch
   completes before the batch does.
3. **Cancellation hygiene** — a cancelled job stops submitting shards,
   drains in-flight ones, releases its bus only after the drain, and
   never corrupts another job's results (asserted by exactness of
   everything else, including jobs that reuse the freed bus).
4. **Safety rails** — deadlines expire jobs; ``close()`` during an
   in-flight pooled job fails fast instead of deadlocking its gatherer;
   lease-budget eviction stays correct while two networks' shards are
   interleaved (pinned leases are not evicted from under queued tasks).
"""

import asyncio
import json
import random
import re
import time

import numpy as np
import pytest

import repro.parallel.pool as pool_module
from repro.core.miner import GRMiner
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.engine import EngineHub, MineRequest, MiningEngine
from repro.parallel import ParallelGRMiner
from repro.parallel.pool import PersistentWorkerPool
from repro.serve import JobCancelled, JobState, Scheduler, ServeHTTP


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


def _make_network(seed: int, num_edges: int = 100):
    schema = random_schema(
        num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
    )
    return random_attributed_network(
        schema, num_nodes=20, num_edges=num_edges, homophily_strength=0.5, seed=seed
    )


def _fresh(network, request: MineRequest):
    kwargs = dict(
        k=request.k,
        min_support=request.min_support,
        min_score=request.min_nhp,
        rank_by=request.rank_by,
        push_topk=request.push_topk,
        **dict(request.options),
    )
    if request.workers is None:
        return GRMiner(network, **kwargs).mine()
    return ParallelGRMiner(network, workers=request.workers, **kwargs).mine()


def _delta(network, count: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, network.num_nodes, count)
    dst = rng.integers(0, network.num_nodes, count)
    edge_codes = {
        name: rng.integers(
            1, network.schema.edge_attribute(name).domain_size + 1, count
        )
        for name in network.schema.edge_attribute_names
    }
    return src, dst, edge_codes


async def _wait_for(predicate, timeout: float = 30.0, interval: float = 0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("timed out waiting for serving condition")
        await asyncio.sleep(interval)


class TestServeEquivalence:
    """Acceptance: concurrent served results are GR-for-GR equal to the
    blocking hub/fresh miners for the same requests, across submission
    interleavings and worker counts."""

    REQUESTS = [
        MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2),
        MineRequest(k=5, min_support=1, min_nhp=0.5, rank_by="confidence", workers=2),
        MineRequest(k=6, min_support=2, min_nhp=0.4),  # serial mode
        MineRequest(k=4, min_support=2, min_nhp=0.4, workers=1),  # inline mode
    ]

    @pytest.mark.parametrize("order_seed", [0, 1])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interleaved_two_network_traffic(self, order_seed, workers):
        nets = {"a": _make_network(1), "b": _make_network(2)}
        baseline = {
            (name, i): _signature(_fresh(network, request))
            for name, network in nets.items()
            for i, request in enumerate(self.REQUESTS)
        }
        stream = [
            (name, i, request)
            for name in nets
            for i, request in enumerate(self.REQUESTS)
        ]
        random.Random(order_seed).shuffle(stream)

        async def scenario():
            with EngineHub(workers=workers) as hub:
                for name, network in nets.items():
                    hub.register(name, network)
                async with Scheduler(hub) as scheduler:
                    jobs = [
                        (name, i, scheduler.submit(name, request, priority=i % 3))
                        for name, i, request in stream
                    ]
                    return [
                        (name, i, _signature(await job)) for name, i, job in jobs
                    ]

        for name, i, signature in asyncio.run(scenario()):
            assert signature == baseline[(name, i)], (
                f"served result diverged on {name}: {self.REQUESTS[i].describe()}"
            )

    def test_cache_sharing_under_concurrency(self):
        network = _make_network(3)
        request = MineRequest(k=8, min_support=2, min_nhp=0.3, workers=2)
        reference = _signature(_fresh(network, request))

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    first = await scheduler.mine("n", request)
                    again = scheduler.submit("n", request)
                    result = await again
                    return _signature(first), _signature(result), again.cached

        first, second, cached = asyncio.run(scenario())
        assert first == reference and second == reference
        assert cached  # the repeat was served from the shared cache

    def test_sweep_convenience_matches_hub_sweep(self):
        network = _make_network(4)
        requests = [
            MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2),  # dup
            MineRequest(k=3, min_support=2, min_nhp=0.5),
        ]
        with EngineHub(workers=2) as ref:
            ref.register("n", _make_network(4))
            expected = [_signature(r) for r in ref.sweep("n", requests)]

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    results = await scheduler.sweep("n", requests)
                    return [_signature(r) for r in results]

        assert asyncio.run(scenario()) == expected


class TestPriorities:
    def test_high_priority_overtakes_earlier_bulk(self):
        """Acceptance: a later-submitted high-priority request completes
        ahead of an earlier-submitted bulk sweep."""
        nets = {"bulk": _make_network(5), "urgent": _make_network(6)}
        bulk_requests = [
            MineRequest(k=k, min_support=1, min_nhp=nhp, workers=2)
            for k in (5, 10, 15)
            for nhp in (0.2, 0.3, 0.4)
        ]
        urgent_request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)

        async def scenario():
            with EngineHub(workers=2) as hub:
                for name, network in nets.items():
                    hub.register(name, network)
                async with Scheduler(hub) as scheduler:
                    bulk = [
                        scheduler.submit("bulk", request, priority=0)
                        for request in bulk_requests
                    ]
                    urgent = scheduler.submit("urgent", urgent_request, priority=10)
                    await urgent
                    unfinished_bulk = sum(not job.done for job in bulk)
                    await asyncio.gather(*bulk)
                    last_bulk = max(job.finished_at for job in bulk)
                    return urgent.finished_at, last_bulk, unfinished_bulk

        urgent_done, last_bulk, unfinished = asyncio.run(scenario())
        assert urgent_done < last_bulk
        # The urgent job really did overtake queued bulk work rather
        # than just running after it drained.
        assert unfinished > 0

    def test_weights_and_validation(self):
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(7))
                async with Scheduler(hub) as scheduler:
                    scheduler.set_weight("n", 4.0)
                    with pytest.raises(ValueError):
                        scheduler.set_weight("n", 0)
                    assert scheduler.stats()["slots"] == 1

        asyncio.run(scenario())


class TestCancellation:
    def test_cancel_mid_flight_frees_bus_and_preserves_others(self):
        nets = {"a": _make_network(8), "b": _make_network(9)}
        request = MineRequest(k=10, min_support=1, min_nhp=0.2, workers=2)
        baseline = {
            name: _signature(_fresh(network, request))
            for name, network in nets.items()
        }
        follow_up = MineRequest(k=6, min_support=2, min_nhp=0.3, workers=2)
        follow_base = {
            name: _signature(_fresh(network, follow_up))
            for name, network in nets.items()
        }

        async def scenario():
            with EngineHub(workers=2) as hub:
                for name, network in nets.items():
                    hub.register(name, network)
                async with Scheduler(hub) as scheduler:
                    victim = scheduler.submit("a", request)
                    survivors = [
                        scheduler.submit(name, request) for name in ("b", "a", "b")
                    ]
                    # Cancel once the victim has shards in flight so the
                    # drain-then-release path actually runs (fall back to
                    # an early cancel if it finished too fast to catch).
                    try:
                        await _wait_for(
                            lambda: victim._inflight > 0 or victim.done, timeout=10
                        )
                    except AssertionError:
                        pass
                    victim.cancel()
                    cancelled = False
                    try:
                        await victim
                    except JobCancelled:
                        cancelled = True
                    outcomes = [_signature(await job) for job in survivors]
                    # Bus reuse after the cancellation: new jobs check the
                    # freed segment out again and must stay exact.
                    reused = [
                        _signature(await scheduler.submit(name, follow_up))
                        for name in ("a", "b")
                    ]
                    # Every bus the hub ever created is back on the free
                    # list — the cancelled job's checkout was recycled.
                    buses = hub._buses
                    assert buses is not None
                    assert len(buses._free) == len(buses._all)
                    return cancelled, victim.state, outcomes, reused

        cancelled, state, outcomes, reused = asyncio.run(scenario())
        if cancelled:
            assert state is JobState.CANCELLED
        else:  # raced to completion before the cancel landed
            assert state is JobState.DONE
        for (name, expected), got in zip(
            [("b", baseline["b"]), ("a", baseline["a"]), ("b", baseline["b"])],
            outcomes,
        ):
            assert got == expected, f"survivor on {name} corrupted by cancellation"
        assert reused == [follow_base["a"], follow_base["b"]]

    def test_cancel_starved_running_job_settles_without_hanging(self):
        """Regression: a RUNNING pooled job whose dispatched shards all
        settled while its remaining ones sat queued behind a
        higher-priority job must still settle promptly on cancel (it
        used to hang forever: no shard completion would ever fire for
        it again)."""
        nets = {"low": _make_network(15), "high": _make_network(16)}
        request = MineRequest(k=10, min_support=1, min_nhp=0.2, workers=2)

        async def scenario():
            with EngineHub(workers=2) as hub:
                for name, network in nets.items():
                    hub.register(name, network)
                # One slot: a 2-shard job always has its second shard
                # queued while the first runs.
                async with Scheduler(hub, max_inflight=1) as scheduler:
                    victim = scheduler.submit("low", request, priority=0)
                    await _wait_for(
                        lambda: victim.state is JobState.RUNNING or victim.done
                    )
                    # Higher priority steals the slot between the
                    # victim's shards.
                    hog = scheduler.submit("high", request, priority=10)
                    try:
                        await _wait_for(
                            lambda: (
                                victim.done
                                or (victim._inflight == 0 and victim._queue)
                            ),
                            timeout=20,
                        )
                    except AssertionError:
                        pass  # too fast to starve; cancel still must settle
                    victim.cancel()
                    outcome = "done"
                    try:
                        # The bug was an eternal hang right here.
                        await asyncio.wait_for(victim.result(), timeout=30)
                    except JobCancelled:
                        outcome = "cancelled"
                    assert _signature(await hog) == _signature(
                        _fresh(nets["high"], request)
                    )
                    return outcome, victim.state

        outcome, state = asyncio.run(scenario())
        if outcome == "cancelled":
            assert state is JobState.CANCELLED

    def test_no_pin_leak_from_cached_and_serial_jobs(self):
        """Regression: cache-hit and serial jobs must unpin their
        network's lease on the success path, not only on cancel."""

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", _make_network(17))
                async with Scheduler(hub) as scheduler:
                    pooled = MineRequest(k=6, min_support=2, min_nhp=0.3, workers=2)
                    await scheduler.mine("n", pooled)
                    repeat = scheduler.submit("n", pooled)  # cache hit
                    serial = scheduler.submit("n", k=4, min_support=2, min_nhp=0.5)
                    await repeat
                    await serial
                    assert repeat.cached
                    assert hub._lease_pins == {}

        asyncio.run(scenario())

    def test_cancel_pending_job_settles_immediately(self):
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(1))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    job = scheduler.submit("n", k=5, min_support=2, min_nhp=0.4)
                    job.cancel("user asked")
                    with pytest.raises(JobCancelled, match="user asked"):
                        await job
                    assert job.state is JobState.CANCELLED

        asyncio.run(scenario())

    def test_deadline_expires_job(self):
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(2))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    job = scheduler.submit(
                        "n", k=5, min_support=2, min_nhp=0.4, deadline_s=0.0
                    )
                    with pytest.raises(JobCancelled, match="deadline"):
                        await job
                    assert job.state is JobState.EXPIRED
                    with pytest.raises(ValueError):
                        scheduler.submit("n", k=3, deadline_s=-1.0)

        asyncio.run(scenario())

    def test_close_cancels_outstanding_jobs(self):
        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", _make_network(3))
                scheduler = await Scheduler(hub).start()
                jobs = [
                    scheduler.submit(
                        "n", k=10, min_support=1, min_nhp=0.2 + 0.01 * i, workers=2
                    )
                    for i in range(4)
                ]
                await scheduler.close()
                for job in jobs:
                    assert job.done
                with pytest.raises(RuntimeError):
                    scheduler.submit("n", k=3)
            # The drain left nothing in flight, so the plain close above
            # (inside the with-exit) passed the in-flight guard.

        asyncio.run(scenario())


class TestFairnessWakeClamp:
    def test_stale_vtime_clamps_down_to_active_floor(self):
        """Regression: a network that accumulated vtime, went idle, and
        re-woke next to a fresh network kept its stale credit deficit
        (the old code only clamped *up*) and was starved until the
        fresh network caught up.  On wake, vtime must re-enter AT the
        active floor, from either side."""
        import types

        def ghost(network):
            # Minimal ready-set occupant: _enter_ready only consults
            # the networks of jobs already ready or in flight.
            return types.SimpleNamespace(
                network=network, _inflight=0, done=False
            )

        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("stale", _make_network(19))
                hub.register("fresh", _make_network(20))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    # Simulated history: "stale" served many shards and
                    # idled; "fresh" is active at a much lower vtime.
                    scheduler._vtime = {"stale": 40.0, "fresh": 3.0}
                    scheduler._ready.append(ghost("fresh"))
                    scheduler._enter_ready(ghost("stale"))
                    down_clamped = scheduler._vtime["stale"]
                    # The original up-clamp still holds: an idle network
                    # below the floor cannot burst with banked credit.
                    scheduler._vtime["lazy"] = 0.5
                    scheduler._enter_ready(ghost("lazy"))
                    up_clamped = scheduler._vtime["lazy"]
                    scheduler._ready.clear()
                    return down_clamped, up_clamped

        down_clamped, up_clamped = asyncio.run(scenario())
        assert down_clamped == 3.0  # was 40.0 before the fix -> starved
        assert up_clamped == 3.0

    def test_two_network_idle_gap_traffic_stays_live(self):
        """End-to-end companion: after one network runs alone for a
        while, idles, and re-wakes against a fresh network, both keep
        completing (no starvation stall) and its re-entry vtime sits at
        the active floor."""
        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("a", _make_network(19))
                hub.register("b", _make_network(20))
                async with Scheduler(hub) as scheduler:
                    # Phase 1: "a" alone accumulates vtime.
                    await scheduler.sweep("a", [
                        MineRequest(k=k, min_support=1, min_nhp=0.3, workers=2)
                        for k in (5, 8)
                    ])
                    vtime_a = scheduler._vtime["a"]
                    assert vtime_a > 0
                    # Idle gap, then "b" (fresh) and "a" (waking) race.
                    jobs = [
                        scheduler.submit(
                            "b", k=6, min_support=1, min_nhp=0.3, workers=2
                        ),
                        scheduler.submit(
                            "a", k=6, min_support=2, min_nhp=0.4, workers=2
                        ),
                    ]
                    await asyncio.gather(*jobs)
                    # The waking network was clamped to the floor, not
                    # left with its phase-1 surplus.
                    return vtime_a, scheduler._vtime["a"]

        vtime_a, rewoken = asyncio.run(scenario())
        assert rewoken < vtime_a + 2.0  # re-entered near the floor


class TestDeadlineTimerHygiene:
    def test_resolved_job_cancels_its_deadline_timer(self):
        """Regression: ``submit`` armed ``loop.call_later`` and dropped
        the handle, so every completed job with a long deadline left a
        live timer until it fired — unbounded growth under traffic."""
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(21))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    job = scheduler.submit(
                        "n", k=3, min_support=2, min_nhp=0.5,
                        deadline_s=3600.0,
                    )
                    armed = job._deadline_handle is not None
                    await job
                    assert job.state is JobState.DONE
                    return armed, job._deadline_handle

        armed, handle = asyncio.run(scenario())
        assert armed  # the timer was kept on the job...
        assert handle is None  # ...and cancelled+cleared on resolution


class TestSweepAtomicSubmission:
    def test_scheduler_sweep_validates_before_admitting(self):
        """Regression: an invalid spec mid-batch used to leave the
        earlier specs' jobs mining (holding slots) after the caller got
        the error."""
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(22))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    with pytest.raises(ValueError):
                        await scheduler.sweep("n", [
                            {"k": 5, "min_nhp": 0.4},
                            {"k": 5, "min_support": 1.0},  # ambiguous
                        ])
                    live = [
                        j for j in scheduler._jobs.values() if not j.done
                    ]
                    return scheduler.stats()["submitted"], live

        submitted, live = asyncio.run(scenario())
        assert submitted == 0 and live == []

    def test_late_submission_failure_cancels_admitted_jobs(self, monkeypatch):
        """If a later *submission* (not validation) fails, the batch's
        already-admitted jobs are cancelled rather than orphaned."""
        calls = []
        original = Scheduler.submit

        def flaky(self, network, request=None, **kwargs):
            calls.append(network)
            if len(calls) == 2:
                raise RuntimeError("boom")
            return original(self, network, request, **kwargs)

        monkeypatch.setattr(Scheduler, "submit", flaky)

        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(23))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    requests = [
                        MineRequest(k=5, min_support=2, min_nhp=0.4),
                        MineRequest(k=6, min_support=2, min_nhp=0.4),
                    ]
                    with pytest.raises(RuntimeError, match="boom"):
                        scheduler.submit_sweep("n", requests)
                    survivors = [
                        j for j in scheduler._jobs.values()
                        if not j.done and not j.cancel_requested
                    ]
                    return survivors

        assert asyncio.run(scenario()) == []

    def test_http_sweep_rejects_batch_without_orphans(self):
        """The HTTP facade parses every spec before admitting any job:
        a bad spec at position i returns 400 with zero jobs admitted
        (the pre-fix code had already submitted specs 0..i-1)."""
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(24))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        status, payload = await _http(
                            server.port, "POST", "/networks/n/sweep",
                            {"requests": [
                                {"k": 4, "min_nhp": 0.4},
                                # ambiguous min_support fails request
                                # *validation* -> the whole batch is 400
                                {"k": 4, "min_support": 1.0},
                            ]},
                        )
                        assert status == 400
                        assert scheduler.stats()["submitted"] == 0
                        status, _ = await _http(
                            server.port, "POST", "/networks/n/sweep",
                            {"requests": [{"k": 4, "min_nhp": 0.4}],
                             "warm_start": "yes"},
                        )
                        assert status == 400  # knob must be boolean

        asyncio.run(scenario())


class TestAppendEdgesBarrier:
    def test_delta_drains_then_serves_new_edge_set(self):
        network = _make_network(10)
        request = MineRequest(k=8, min_support=2, min_nhp=0.3, workers=2)
        pre_delta = _signature(_fresh(network, request))

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    inflight = [scheduler.submit("n", request) for _ in range(2)]
                    new_fp = await scheduler.append_edges(
                        "n", *_delta(network, 25, seed=11)
                    )
                    # Jobs admitted before the barrier saw the old edges.
                    old = [_signature(await job) for job in inflight]
                    post = _signature(await scheduler.mine("n", request))
                    return new_fp, old, post

        new_fp, old, post = asyncio.run(scenario())
        assert all(signature == pre_delta for signature in old)
        # The network object was mutated in place, so a fresh miner now
        # sees the post-delta edge set.
        assert post == _signature(_fresh(network, request))
        assert post != pre_delta or network.num_edges == 100  # delta really landed

    def test_barrier_reports_migrated_vs_purged_counts(self):
        """The barrier surfaces the delta's cache outcome: one eligible
        sharded entry migrates, one serial entry purges."""
        network = _make_network(13)
        eligible = MineRequest(k=5, min_support=3, workers=1)
        serial = MineRequest(k=5, min_support=3)
        # Concentrated on one source node: only its first-level
        # partitions are touched, so the sharded entry is migratable.
        rng = np.random.default_rng(1)
        node = int(rng.integers(0, network.num_nodes))
        src = [node] * 3
        dst = [int(v) for v in rng.integers(0, network.num_nodes, 3)]
        codes = {
            name: [1] * 3 for name in network.schema.edge_attribute_names
        }

        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    await scheduler.mine("n", eligible)
                    await scheduler.mine("n", serial)
                    await scheduler.append_edges("n", src, dst, codes)
                    stats = scheduler.stats()
                    post = _signature(await scheduler.mine("n", eligible))
                    return stats, post

        stats, post = asyncio.run(scenario())
        assert stats["delta_migrated_entries"] == 1
        assert stats["delta_purged_entries"] == 1
        assert post == _signature(_fresh(network, eligible))


class TestLeaseBudgetInterleaved:
    def test_budget_eviction_correct_while_two_networks_interleave(self):
        """Satellite: a 1-byte budget forces eviction pressure, but the
        scheduler's lease pins keep every in-flight job's segment alive,
        so interleaved two-network traffic stays exact."""
        nets = {"a": _make_network(11), "b": _make_network(12)}
        requests = [
            MineRequest(k=8, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=5, min_support=1, min_nhp=0.4, workers=2),
            # Regression: serial and repeat (cache-hit) jobs must also
            # release their lease pins, or the budget dies by leak.
            MineRequest(k=6, min_support=2, min_nhp=0.4),
            MineRequest(k=8, min_support=2, min_nhp=0.3, workers=2),
        ]
        baseline = {
            (name, i): _signature(_fresh(network, request))
            for name, network in nets.items()
            for i, request in enumerate(requests)
        }

        async def scenario():
            with EngineHub(workers=2, lease_budget_bytes=1) as hub:
                for name, network in nets.items():
                    hub.register(name, network)
                async with Scheduler(hub) as scheduler:
                    jobs = [
                        (name, i, scheduler.submit(name, request))
                        for i, request in enumerate(requests)
                        for name in nets
                    ]
                    outcomes = [
                        (name, i, _signature(await job)) for name, i, job in jobs
                    ]
                    assert not hub._lease_pins  # every pin released
                    # With the pins gone the budget applies again: the
                    # next touch evicts down to a single resident lease
                    # (eviction triggers on touch, not on drain).
                    follow = _signature(
                        await scheduler.mine(
                            "a", k=4, min_support=2, min_nhp=0.5, workers=2
                        )
                    )
                    assert hub.resident_networks() == ["a"]
                    return outcomes, follow, hub.lease_evictions

        outcomes, follow, evictions = asyncio.run(scenario())
        for name, i, signature in outcomes:
            assert signature == baseline[(name, i)], (
                f"budget eviction corrupted {name}: {requests[i].describe()}"
            )
        assert follow == _signature(
            _fresh(nets["a"], MineRequest(k=4, min_support=2, min_nhp=0.5, workers=2))
        )
        assert evictions >= 1  # the cap did bite once the pins released


def _sleepy_shard(task):
    time.sleep(0.5)
    return task


class TestCloseGuard:
    """Satellite: close() during an in-flight pooled job fails fast."""

    @pytest.fixture
    def slow_pool(self, monkeypatch):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("requires the fork start method")
        # Patching the name run_shard resolves through in the parent
        # propagates to fork children, making task duration controllable.
        monkeypatch.setattr(pool_module, "run_shard", _sleepy_shard)
        pool = PersistentWorkerPool(None, processes=1, start_method="fork")
        yield pool
        if not pool.closed:
            pool.terminate()

    def _drain(self, pool, handles):
        for handle in handles:
            handle.get(timeout=30)
        deadline = time.monotonic() + 10
        while pool.inflight > 0:
            if time.monotonic() > deadline:
                raise AssertionError("pool never settled")
            time.sleep(0.01)

    def test_engine_close_fails_fast_with_inflight_shards(self, slow_pool):
        engine = MiningEngine(_make_network(1), workers=1)
        engine._pool = slow_pool
        handles = [slow_pool.submit("shard-0")]
        with pytest.raises(RuntimeError, match="in flight"):
            engine.close()
        assert not engine.closed  # the guard left the engine serving
        self._drain(slow_pool, handles)
        engine.close()  # drained: the same call now succeeds
        assert engine.closed

    def test_hub_close_fails_fast_with_inflight_shards(self, slow_pool):
        hub = EngineHub(workers=1)
        hub.register("n", _make_network(2))
        hub._pool = slow_pool
        handles = [slow_pool.submit("shard-0")]
        with pytest.raises(RuntimeError, match="in flight"):
            hub.close()
        assert not hub.closed
        self._drain(slow_pool, handles)
        hub.close()
        assert hub.closed

    def test_force_close_and_exception_exit_still_tear_down(self, slow_pool):
        engine = MiningEngine(_make_network(3), workers=1)
        engine._pool = slow_pool
        slow_pool.submit("shard-0")
        engine.close(force=True)  # explicit override: hard teardown
        assert engine.closed and slow_pool.closed

    def test_exception_unwind_waives_the_guard(self, monkeypatch):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("requires the fork start method")
        monkeypatch.setattr(pool_module, "run_shard", _sleepy_shard)
        with pytest.raises(ValueError, match="boom"):
            with MiningEngine(_make_network(4), workers=1) as engine:
                engine._pool = PersistentWorkerPool(
                    None, processes=1, start_method="fork"
                )
                engine._pool.submit("shard-0")
                raise ValueError("boom")
        assert engine.closed  # __exit__ forced the teardown


async def _http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n".encode() + payload
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    raw = await reader.readexactly(length)
    writer.close()
    await writer.wait_closed()
    return int(head.split()[1]), json.loads(raw)


class TestHTTPFacade:
    def test_endpoints_roundtrip(self):
        network = _make_network(13)
        request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        reference = [str(m.gr) for m in _fresh(network, request)]

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        port = server.port
                        status, health = await _http(port, "GET", "/healthz")
                        assert status == 200 and health["networks"] == ["n"]

                        status, payload = await _http(
                            port, "POST", "/networks/n/mine",
                            {"k": 5, "min_support": 2, "min_nhp": 0.3,
                             "workers": 2, "priority": 3},
                        )
                        assert status == 200
                        assert payload["job"]["state"] == "done"
                        assert [
                            entry["gr"] for entry in payload["result"]["grs"]
                        ] == reference

                        status, payload = await _http(
                            port, "POST", "/networks/n/sweep",
                            {"requests": [
                                {"k": 3, "min_nhp": 0.4},
                                {"k": 4, "min_nhp": 0.5, "workers": 1},
                            ]},
                        )
                        assert status == 200 and len(payload["jobs"]) == 2
                        assert all(
                            item["job"]["state"] == "done"
                            for item in payload["jobs"]
                        )

                        # Async submission, poll, then cancel (idempotent
                        # on a finished job).
                        status, payload = await _http(
                            port, "POST", "/networks/n/mine",
                            {"k": 8, "min_nhp": 0.3, "workers": 2,
                             "mode": "async"},
                        )
                        assert status == 200
                        job_id = payload["job"]["id"]
                        await _wait_for(
                            lambda: scheduler.job(job_id).done, timeout=30
                        )
                        status, payload = await _http(port, "GET", f"/jobs/{job_id}")
                        assert status == 200
                        assert payload["job"]["state"] == "done"
                        assert "result" in payload
                        status, payload = await _http(
                            port, "DELETE", f"/jobs/{job_id}"
                        )
                        assert status == 200 and payload["job"]["state"] == "done"

                        # Append-edge delta through the wire, then a
                        # post-delta mine against the mutated network.
                        src, dst, edge_codes = _delta(network, 20, seed=3)
                        status, payload = await _http(
                            port, "POST", "/networks/n/append_edges",
                            {"src": [int(v) for v in src],
                             "dst": [int(v) for v in dst],
                             "edge_codes": {
                                 name: [int(v) for v in values]
                                 for name, values in edge_codes.items()
                             }},
                        )
                        assert status == 200 and payload["network"] == "n"
                        status, payload = await _http(
                            port, "POST", "/networks/n/mine",
                            {"k": 5, "min_support": 2, "min_nhp": 0.3,
                             "workers": 2},
                        )
                        assert status == 200
                        post = [entry["gr"] for entry in payload["result"]["grs"]]
                        assert post == [
                            str(m.gr) for m in _fresh(network, request)
                        ]

                        status, payload = await _http(port, "GET", "/stats")
                        assert status == 200
                        assert payload["scheduler"]["completed"] >= 4
                        assert payload["hub"]["networks"] == 1

                        status, _ = await _http(port, "GET", "/networks/x/mine")
                        assert status == 404
                        status, _ = await _http(port, "GET", "/jobs/job-999999")
                        assert status == 404
                        status, _ = await _http(port, "POST", "/networks/n/mine",
                                                {"k": "many"})
                        assert status == 400

        asyncio.run(scenario())


    def test_negative_content_length_is_rejected(self):
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(18))
                async with Scheduler(hub, prewarm=False) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", server.port
                        )
                        writer.write(
                            b"POST /networks/n/mine HTTP/1.1\r\n"
                            b"Host: t\r\nContent-Length: -5\r\n\r\n"
                        )
                        await writer.drain()
                        head = await reader.readuntil(b"\r\n\r\n")
                        assert b" 400 " in head.split(b"\r\n")[0]
                        writer.close()
                        await writer.wait_closed()

        asyncio.run(scenario())


class TestServeValidation:
    def test_submit_validation_and_lifecycle(self):
        async def scenario():
            with EngineHub(workers=1) as hub:
                hub.register("n", _make_network(14))
                scheduler = Scheduler(hub, prewarm=False)
                with pytest.raises(RuntimeError, match="not started"):
                    scheduler.submit("n", k=3)
                async with scheduler:
                    with pytest.raises(RuntimeError, match="already started"):
                        await scheduler.start()
                    with pytest.raises(KeyError):
                        scheduler.submit("missing", k=3)
                    with pytest.raises(TypeError):
                        scheduler.submit(
                            "n", MineRequest(k=3), k=5
                        )  # request and kwargs
                    job = scheduler.submit("n", {"k": 3, "min_nhp": 0.5})
                    assert (await job) is not None
                with pytest.raises(ValueError):
                    Scheduler(hub, max_inflight=0)

        asyncio.run(scenario())

    def test_serve_cli_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--register", "a=/tmp/x", "--register", "b=/tmp/y",
                "--port", "0", "--workers", "2", "--max-inflight", "3",
                "--weight", "a=2.5", "--disk-cache", "/tmp/c.sqlite",
                "--disk-cache-max-bytes", "1000", "--disk-cache-ttl", "60",
            ]
        )
        assert args.command == "serve"
        assert args.register == ["a=/tmp/x", "b=/tmp/y"]
        assert args.max_inflight == 3 and args.weight == ["a=2.5"]
        assert args.disk_cache_max_bytes == 1000 and args.disk_cache_ttl == 60.0
        assert not args.no_dedup and not args.no_warm_start  # defaults on
        args = build_parser().parse_args(
            ["serve", "--register", "a=/tmp/x", "--no-dedup", "--no-warm-start"]
        )
        assert args.no_dedup and args.no_warm_start


# ---------------------------------------------------------------------------
# Observability endpoints: /metrics, /jobs/{id}/trace, /jobs/{id}/events, /stats
# ---------------------------------------------------------------------------


async def _http_raw(port, method, path):
    """Raw-body variant of ``_http`` for non-JSON responses (/metrics)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if value:
            headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", 0)))
    writer.close()
    await writer.wait_closed()
    return int(lines[0].split()[1]), headers, body


async def _sse_connect(port, job_id):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET /jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    return reader, writer, int(head.split()[1])


async def _sse_next(reader, timeout: float = 20.0):
    """Read one ``event:``/``data:`` block off an open SSE stream."""
    event = data = None
    while True:
        line = (await asyncio.wait_for(reader.readline(), timeout)).decode()
        if not line:
            raise AssertionError("SSE stream closed before a terminal event")
        line = line.rstrip("\r\n")
        if not line:
            if event is not None:
                return event, json.loads(data)
            continue
        if line.startswith("event: "):
            event = line[len("event: "):]
        elif line.startswith("data: "):
            data = line[len("data: "):]


_PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$'
)


class TestObservabilityEndpoints:
    def _pause(self, scheduler, network):
        scheduler._paused[network] = next(scheduler._seq)

    def _release(self, scheduler, network):
        scheduler._paused.pop(network, None)
        backlog = scheduler._backlog.pop(network, None)
        for job in backlog or ():
            scheduler._admit.put_nowait(job)

    def test_metrics_endpoint_prometheus_and_json(self):
        network = _make_network(21)

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        job = scheduler.submit("n", k=4, min_nhp=0.3, workers=2)
                        await job

                        status, headers, body = await _http_raw(
                            server.port, "GET", "/metrics"
                        )
                        assert status == 200
                        assert headers["content-type"].startswith("text/plain")
                        text = body.decode()
                        for line in text.strip().splitlines():
                            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                                continue
                            assert _PROM_SAMPLE.match(line), f"bad line: {line!r}"
                        # the scheduler's instruments are present and moved
                        assert "# TYPE repro_scheduler_jobs_submitted_total counter" in text
                        submitted = next(
                            float(l.split()[-1])
                            for l in text.splitlines()
                            if l.startswith("repro_scheduler_jobs_submitted_total ")
                        )
                        assert submitted >= 1
                        assert "repro_job_latency_seconds_bucket" in text

                        status, payload = await _http(
                            server.port, "GET", "/metrics?format=json"
                        )
                        assert status == 200
                        names = {m["name"] for m in payload["metrics"]}
                        assert "repro_scheduler_jobs_submitted_total" in names
                        assert "repro_job_latency_seconds" in names

        asyncio.run(scenario())

    def test_job_trace_structured_and_chrome(self):
        network = _make_network(22)

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        job = scheduler.submit("n", k=4, min_nhp=0.3, workers=2)
                        await job

                        status, trace = await _http(
                            server.port, "GET", f"/jobs/{job.id}/trace"
                        )
                        assert status == 200
                        assert trace["job_id"] == job.id
                        assert trace["meta"]["network"] == "n"
                        names = [span["name"] for span in trace["spans"]]
                        assert "plan" in names
                        assert "finalize" in names
                        assert any(n.startswith("shard-") or n == "execute"
                                   for n in names)
                        for span in trace["spans"]:
                            assert span["duration_s"] >= 0

                        status, chrome = await _http(
                            server.port, "GET", f"/jobs/{job.id}/trace?format=chrome"
                        )
                        assert status == 200
                        events = chrome["traceEvents"]
                        assert events[0]["ph"] == "M"  # process-name metadata
                        complete = [e for e in events if e["ph"] == "X"]
                        assert len(complete) == len(trace["spans"])
                        for event in complete:
                            assert {"name", "ph", "pid", "tid", "ts", "dur"} <= set(event)
                            assert event["dur"] >= 0

                        status, _ = await _http(
                            server.port, "GET", "/jobs/job-424242/trace"
                        )
                        assert status == 404

                # observe=False: jobs resolve normally but have no trace
                async with Scheduler(hub, observe=False) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        job = scheduler.submit("n", k=3, min_nhp=0.4)
                        assert (await job) is not None
                        status, _ = await _http(
                            server.port, "GET", f"/jobs/{job.id}/trace"
                        )
                        assert status == 404

        asyncio.run(scenario())

    def test_sse_heartbeats_then_monotonic_progress(self):
        network = _make_network(23, num_edges=200)

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        server.sse_heartbeat_s = 0.05
                        # Park the job behind a paused network so the
                        # stream demonstrably starts before any progress.
                        self._pause(scheduler, "n")
                        job = scheduler.submit("n", k=5, min_nhp=0.3, workers=2)
                        reader, writer, status = await _sse_connect(
                            server.port, job.id
                        )
                        assert status == 200

                        event, payload = await _sse_next(reader)
                        assert event == "progress"  # immediate snapshot
                        assert payload["state"] == "pending"
                        assert payload["shards_done"] == 0

                        heartbeats = 0
                        while heartbeats < 2:  # parked job => only heartbeats
                            event, payload = await _sse_next(reader)
                            assert event == "heartbeat"
                            assert payload["job_id"] == job.id
                            heartbeats += 1

                        self._release(scheduler, "n")
                        last_done = 0
                        last_floor = None
                        saw_progress = False
                        while True:
                            event, payload = await _sse_next(reader)
                            if event == "heartbeat":
                                continue
                            assert payload["shards_done"] >= last_done
                            last_done = payload["shards_done"]
                            if payload["floor"] is not None:
                                if last_floor is not None:
                                    assert payload["floor"] >= last_floor
                                last_floor = payload["floor"]
                            if event == "done":
                                assert payload["state"] == "done"
                                assert payload["shards_done"] == payload["shards_total"]
                                break
                            saw_progress = True
                        assert saw_progress
                        writer.close()
                        await writer.wait_closed()
                        assert job._subscribers == []
                        assert (await job) is not None

                        # Unknown job ids 404 instead of opening a stream.
                        _, _, status = await _sse_connect(server.port, "job-999999")
                        assert status == 404

        asyncio.run(scenario())

    def test_sse_disconnect_frees_subscription_and_job(self):
        network = _make_network(24)

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        server.sse_heartbeat_s = 0.05
                        self._pause(scheduler, "n")
                        job = scheduler.submit("n", k=4, min_nhp=0.3, workers=2)
                        reader, writer, status = await _sse_connect(
                            server.port, job.id
                        )
                        assert status == 200
                        await _sse_next(reader)  # initial snapshot
                        assert len(job._subscribers) == 1

                        # Abrupt client disconnect: the next heartbeat
                        # write fails and must drop the subscription.
                        writer.close()
                        await writer.wait_closed()
                        await _wait_for(lambda: not job._subscribers, timeout=10)

                        # ...and the job itself is unaffected.
                        self._release(scheduler, "n")
                        assert (await job) is not None

        asyncio.run(scenario())

    def test_stats_poll_does_not_queue_behind_coordinator(self):
        network = _make_network(25)

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    async with ServeHTTP(scheduler, port=0) as server:
                        await scheduler.submit("n", k=3, min_nhp=0.4, workers=2)
                        # Saturate the single coordinator thread the way a
                        # heavy serial mine would.
                        blocker = asyncio.ensure_future(
                            scheduler._run_coord(time.sleep, 0.6)
                        )
                        await asyncio.sleep(0)  # let the blocker occupy it
                        loop = asyncio.get_running_loop()
                        start = loop.time()
                        status, payload = await _http(server.port, "GET", "/stats")
                        elapsed = loop.time() - start
                        assert status == 200
                        # Snapshot-served: far below the 0.6s the
                        # coordinator is busy for.
                        assert elapsed < 0.3, f"/stats took {elapsed:.3f}s"
                        assert payload["hub"]["networks"] == 1
                        assert "age_s" in payload["hub"]
                        assert payload["scheduler"]["completed"] >= 1
                        await blocker

        asyncio.run(scenario())
