"""Unit and property tests for the counting-sort partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sortutil.counting_sort import (
    _placement_loop_argsort,
    counting_sort_argsort,
    partition_by_value,
    value_counts,
)


class TestCountingSortArgsort:
    def test_sorts_values(self):
        keys = np.array([3, 1, 2, 0, 2, 1])
        order = counting_sort_argsort(keys, domain_size=3)
        assert list(keys[order]) == [0, 1, 1, 2, 2, 3]

    def test_stability(self):
        keys = np.array([1, 0, 1, 0, 1])
        order = counting_sort_argsort(keys, domain_size=1)
        # Equal keys keep input order.
        assert list(order) == [1, 3, 0, 2, 4]

    def test_empty(self):
        assert counting_sort_argsort(np.array([], dtype=int), 4).size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            counting_sort_argsort(np.zeros((2, 2), dtype=int), 1)

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=200),
    )
    @settings(max_examples=50)
    def test_matches_stable_argsort(self, values):
        keys = np.array(values, dtype=np.int64)
        order = counting_sort_argsort(keys, domain_size=9)
        expected = np.argsort(keys, kind="stable")
        assert list(order) == list(expected)


class TestVectorizedScatterRegression:
    """The numpy scatter must be byte-identical to the CLRS placement loop."""

    ADVERSARIAL = [
        (np.zeros(257, dtype=np.int64), 1),  # all-null, longer than one radix bucket
        (np.full(100, 7, dtype=np.int64), 7),  # all equal at the domain edge
        (np.arange(500, dtype=np.int64)[::-1] % 9, 8),  # descending, repeating
        (np.array([0], dtype=np.int64), 3),  # singleton
        (np.tile(np.array([5, 0, 5, 5, 0]), 101), 5),  # long tie runs
        (np.array([300, 0, 299, 300, 1], dtype=np.int64), 300),  # uint16 path
        (np.array([70_000, 0, 70_000], dtype=np.int64), 70_000),  # uint32 path
    ]

    @pytest.mark.parametrize("keys,domain", ADVERSARIAL)
    def test_byte_identical_to_loop(self, keys, domain):
        fast = counting_sort_argsort(keys, domain)
        loop = _placement_loop_argsort(keys, domain)
        assert fast.dtype == loop.dtype == np.int64
        assert fast.tobytes() == loop.tobytes()

    @given(
        st.lists(st.integers(min_value=0, max_value=17), max_size=400),
        st.integers(min_value=17, max_value=1000),
    )
    @settings(max_examples=60)
    def test_byte_identical_on_random_keys(self, values, domain):
        keys = np.array(values, dtype=np.int64)
        fast = counting_sort_argsort(keys, domain)
        loop = _placement_loop_argsort(keys, domain)
        assert fast.tobytes() == loop.tobytes()

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ValueError):
            counting_sort_argsort(np.array([0, 5]), domain_size=4)
        with pytest.raises(ValueError):
            counting_sort_argsort(np.array([-1, 0]), domain_size=4)


class TestValueCounts:
    def test_histogram(self):
        counts = value_counts(np.array([0, 2, 2, 1]), domain_size=3)
        assert list(counts) == [1, 1, 2, 0]


class TestPartitionByValue:
    def test_partitions_cover_non_null_items(self):
        items = np.arange(6)
        keys = np.array([1, 2, 1, 0, 2, 1])
        parts = dict(partition_by_value(items, keys, domain_size=2))
        assert set(parts) == {1, 2}
        assert list(parts[1]) == [0, 2, 5]
        assert list(parts[2]) == [1, 4]

    def test_null_partition_skipped_by_default(self):
        items = np.arange(3)
        keys = np.array([0, 0, 1])
        parts = dict(partition_by_value(items, keys, domain_size=1))
        assert set(parts) == {1}

    def test_null_partition_kept_on_request(self):
        items = np.arange(3)
        keys = np.array([0, 0, 1])
        parts = dict(partition_by_value(items, keys, domain_size=1, skip_null=False))
        assert list(parts[0]) == [0, 1]

    def test_empty_input_yields_nothing(self):
        assert list(partition_by_value(np.array([]), np.array([]), 3)) == []

    def test_empty_partitions_not_yielded(self):
        items = np.arange(4)
        keys = np.array([3, 3, 1, 3])
        parts = list(partition_by_value(items, keys, domain_size=5))
        assert [value for value, _ in parts] == [1, 3]
        assert all(subset.size for _, subset in parts)

    def test_null_only_input_yields_nothing(self):
        items = np.arange(3)
        keys = np.zeros(3, dtype=np.int64)
        assert list(partition_by_value(items, keys, domain_size=4)) == []

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            list(partition_by_value(np.arange(3), np.arange(2), 3))

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=120),
    )
    @settings(max_examples=60)
    def test_partition_is_exact_cover(self, values):
        keys = np.array(values, dtype=np.int64)
        items = np.arange(keys.size)
        parts = list(partition_by_value(items, keys, domain_size=4))
        # Every yielded subset holds exactly the items with that key.
        for value, subset in parts:
            assert (keys[subset] == value).all()
        covered = sorted(int(i) for _, subset in parts for i in subset)
        assert covered == sorted(int(i) for i in items[keys > 0])
