"""Unit and property tests for the counting-sort partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sortutil.counting_sort import (
    counting_sort_argsort,
    partition_by_value,
    value_counts,
)


class TestCountingSortArgsort:
    def test_sorts_values(self):
        keys = np.array([3, 1, 2, 0, 2, 1])
        order = counting_sort_argsort(keys, domain_size=3)
        assert list(keys[order]) == [0, 1, 1, 2, 2, 3]

    def test_stability(self):
        keys = np.array([1, 0, 1, 0, 1])
        order = counting_sort_argsort(keys, domain_size=1)
        # Equal keys keep input order.
        assert list(order) == [1, 3, 0, 2, 4]

    def test_empty(self):
        assert counting_sort_argsort(np.array([], dtype=int), 4).size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            counting_sort_argsort(np.zeros((2, 2), dtype=int), 1)

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=200),
    )
    @settings(max_examples=50)
    def test_matches_stable_argsort(self, values):
        keys = np.array(values, dtype=np.int64)
        order = counting_sort_argsort(keys, domain_size=9)
        expected = np.argsort(keys, kind="stable")
        assert list(order) == list(expected)


class TestValueCounts:
    def test_histogram(self):
        counts = value_counts(np.array([0, 2, 2, 1]), domain_size=3)
        assert list(counts) == [1, 1, 2, 0]


class TestPartitionByValue:
    def test_partitions_cover_non_null_items(self):
        items = np.arange(6)
        keys = np.array([1, 2, 1, 0, 2, 1])
        parts = dict(partition_by_value(items, keys, domain_size=2))
        assert set(parts) == {1, 2}
        assert list(parts[1]) == [0, 2, 5]
        assert list(parts[2]) == [1, 4]

    def test_null_partition_skipped_by_default(self):
        items = np.arange(3)
        keys = np.array([0, 0, 1])
        parts = dict(partition_by_value(items, keys, domain_size=1))
        assert set(parts) == {1}

    def test_null_partition_kept_on_request(self):
        items = np.arange(3)
        keys = np.array([0, 0, 1])
        parts = dict(partition_by_value(items, keys, domain_size=1, skip_null=False))
        assert list(parts[0]) == [0, 1]

    def test_empty_input_yields_nothing(self):
        assert list(partition_by_value(np.array([]), np.array([]), 3)) == []

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            list(partition_by_value(np.arange(3), np.arange(2), 3))

    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=120),
    )
    @settings(max_examples=60)
    def test_partition_is_exact_cover(self, values):
        keys = np.array(values, dtype=np.int64)
        items = np.arange(keys.size)
        parts = list(partition_by_value(items, keys, domain_size=4))
        # Every yielded subset holds exactly the items with that key.
        for value, subset in parts:
            assert (keys[subset] == value).all()
        covered = sorted(int(i) for _, subset in parts for i in subset)
        assert covered == sorted(int(i) for i in items[keys > 0])
