"""Every example script runs end-to-end and prints its key findings."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestQuickstart:
    def test_runs_and_reports_gr4(self):
        out = _run("quickstart.py")
        assert "GR4" in out
        assert "nhp  = 100.0%" in out
        assert "Top-5 GRs" in out


class TestPokecExample:
    def test_runs_with_reduced_size(self):
        out = _run("pokec_interestingness.py", "--edges", "20000", "--sources", "2000")
        assert "Table IIa (synthetic)" in out
        assert "Ranked by nhp" in out
        assert "P207" in out
        assert "Secondary" in out


class TestDBLPExample:
    def test_runs_and_explains_d2(self):
        out = _run("dblp_interestingness.py")
        assert "Table IIb (synthetic)" in out
        assert "D2" in out
        assert "Productivity=Poor" in out


class TestFinancialExample:
    def test_runs_and_recommends_bonds(self):
        out = _run("financial_promotion.py")
        assert "Promote BONDS" in out
        assert "nhp" in out


class TestAlternativeMetricsExample:
    def test_runs_all_five_metrics(self):
        out = _run("alternative_metrics.py")
        for metric in ("laplace", "gain", "lift", "conviction", "piatetsky_shapiro"):
            assert metric in out
        assert "data skew" in out
