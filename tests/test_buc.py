"""Unit tests for the BUC iceberg cube substrate."""

from itertools import combinations

import numpy as np
import pytest

from repro.cube.buc import BUC, cell_to_maps, iceberg_cube


@pytest.fixture
def columns():
    return {
        "X": np.array([1, 1, 2, 2, 1, 0]),
        "Y": np.array([1, 2, 1, 2, 1, 1]),
    }


DOMAINS = {"X": 2, "Y": 2}


def brute_force_cube(columns, domains, min_count):
    """All frequent cells by direct counting."""
    names = list(columns)
    n = len(next(iter(columns.values())))
    cells = {}
    if n >= min_count:
        cells[()] = n
    for size in range(1, len(names) + 1):
        for subset in combinations(names, size):
            values_lists = [range(1, domains[c] + 1) for c in subset]
            import itertools

            for values in itertools.product(*values_lists):
                mask = np.ones(n, dtype=bool)
                for c, v in zip(subset, values):
                    mask &= columns[c] == v
                count = int(mask.sum())
                if count >= min_count:
                    cells[tuple(zip(subset, values))] = count
    return cells


class TestBUC:
    @pytest.mark.parametrize("min_count", [1, 2, 3])
    def test_matches_brute_force(self, columns, min_count):
        result = iceberg_cube(columns, DOMAINS, min_count)
        expected = brute_force_cube(columns, DOMAINS, min_count)
        assert result == expected

    def test_null_values_form_no_cells(self, columns):
        result = iceberg_cube(columns, DOMAINS, 1)
        assert all(v != 0 for cell in result for _, v in cell)

    def test_empty_cell_counts_all_rows(self, columns):
        result = iceberg_cube(columns, DOMAINS, 1)
        assert result[()] == 6

    def test_nothing_when_table_below_threshold(self, columns):
        result = iceberg_cube(columns, DOMAINS, 100)
        assert result == {}

    def test_min_count_validated(self, columns):
        with pytest.raises(ValueError):
            BUC(columns, DOMAINS, 0)

    def test_missing_domains_rejected(self, columns):
        with pytest.raises(ValueError, match="domain"):
            BUC(columns, {"X": 2}, 1)

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError, match="mixed"):
            BUC({"X": np.array([1]), "Y": np.array([1, 2])}, {"X": 1, "Y": 2}, 1)

    def test_on_cell_callback_sees_every_cell(self, columns):
        seen = {}
        BUC(columns, DOMAINS, 2).compute(on_cell=lambda c, n: seen.__setitem__(c, n))
        assert seen == iceberg_cube(columns, DOMAINS, 2)

    def test_anti_monotone_refinement(self, columns):
        """Every frequent cell's sub-cells are frequent too (sanity)."""
        result = iceberg_cube(columns, DOMAINS, 2)
        for cell, count in result.items():
            for i in range(len(cell)):
                sub = cell[:i] + cell[i + 1 :]
                assert sub in result
                assert result[sub] >= count

    def test_random_tables_match_bruteforce(self):
        rng = np.random.default_rng(5)
        for trial in range(5):
            columns = {
                f"C{i}": rng.integers(0, 4, size=40) for i in range(3)
            }
            domains = {f"C{i}": 3 for i in range(3)}
            assert iceberg_cube(columns, domains, 2) == brute_force_cube(
                columns, domains, 2
            )


class TestCellToMaps:
    def test_splits_roles(self):
        from repro.data.edgetable import split_column

        cell = (("A^l", 1), ("A^r", 2), ("W", 3))
        maps = cell_to_maps(cell, split_column)
        assert maps == {"L": {"A": 1}, "W": {"W": 3}, "R": {"A": 2}}
