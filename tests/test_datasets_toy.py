"""The Fig. 1 toy network reproduces every statistic the paper quotes."""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.datasets.toy import TOY_LINKS, TOY_NODES, toy_dating_network, toy_schema


class TestTopology:
    def test_fifteen_links(self):
        assert len(TOY_LINKS) == 15

    def test_fourteen_individuals(self):
        assert len(TOY_NODES) == 14

    def test_no_duplicate_links(self):
        normalized = {frozenset(link) for link in TOY_LINKS}
        assert len(normalized) == 15

    def test_no_self_links(self):
        assert all(u != v for u, v in TOY_LINKS)


class TestSchema:
    def test_edu_is_the_homophily_attribute(self):
        schema = toy_schema()
        assert schema.homophily_attribute_names == ("EDU",)

    def test_attribute_domains_match_figure(self):
        schema = toy_schema()
        assert set(schema.node_attribute("SEX").values) == {"F", "M"}
        assert set(schema.node_attribute("RACE").values) == {"Asian", "Latino", "White"}
        assert set(schema.node_attribute("EDU").values) == {
            "High School",
            "College",
            "Grad",
        }


class TestPaperStatistics:
    """The full set of quoted counts, asserted as absolute numbers."""

    @pytest.fixture(scope="class")
    def engine(self):
        return MetricEngine(toy_dating_network())

    def _count(self, engine, l, r):
        gr = GR(Descriptor(l), Descriptor(r), Descriptor({"TYPE": "dates"}))
        return engine.evaluate(gr)

    def test_male_out_edges_14(self, engine):
        assert self._count(engine, {"SEX": "M"}, {"SEX": "F"}).lw_count == 14

    def test_male_to_asian_female_7(self, engine):
        m = self._count(engine, {"SEX": "M"}, {"SEX": "F", "RACE": "Asian"})
        assert m.support_count == 7

    def test_asian_male_to_asian_female_0(self, engine):
        m = self._count(
            engine, {"SEX": "M", "RACE": "Asian"}, {"SEX": "F", "RACE": "Asian"}
        )
        assert m.support_count == 0

    def test_grad_female_out_edges_6(self, engine):
        m = self._count(engine, {"SEX": "F", "EDU": "Grad"}, {"SEX": "M"})
        assert m.lw_count == 6

    def test_grad_female_to_grad_male_4(self, engine):
        m = self._count(
            engine, {"SEX": "F", "EDU": "Grad"}, {"SEX": "M", "EDU": "Grad"}
        )
        assert m.support_count == 4

    def test_grad_female_to_college_male_2(self, engine):
        m = self._count(
            engine, {"SEX": "F", "EDU": "Grad"}, {"SEX": "M", "EDU": "College"}
        )
        assert m.support_count == 2

    def test_gr4_nhp_100_percent(self, engine):
        m = self._count(
            engine, {"SEX": "F", "EDU": "Grad"}, {"SEX": "M", "EDU": "College"}
        )
        assert m.nhp == pytest.approx(1.0)
