"""repro.lint.callgraph — the whole-program analysis substrate.

Covers the resolution machinery every interprocedural rule leans on:
import chasing (including re-exports through package ``__init__`` files
and the PEP 562 ``_LAZY`` table), dispatch-kind edges (coord / loop /
worker / any), field-type inference for ``self.x`` receivers, ``super()``
dispatch, and the documented misses (dynamic ``getattr`` dispatch).
Each case is a paired fires/clean fixture: an edge the graph must have,
next to a same-shaped construct it must *not* over-resolve.
"""

import time
from pathlib import Path

from repro.lint import load_project
from repro.lint.domains import infer_domains

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def analysis_of(tmp_path, files):
    """Materialize ``files`` under ``repro/`` and build the analysis."""
    for rel, code in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
    return load_project([tmp_path]).analysis()


def edges_from(analysis, caller_suffix):
    return [
        (e.callee, e.kind)
        for e in analysis.edges
        if e.caller.endswith(caller_suffix)
    ]


class TestResolution:
    def test_module_function_call(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": "def target():\n    return 1\n"
                    "def caller():\n    return target()\n",
        })
        assert ("repro.a.target", "call") in edges_from(analysis, ".caller")

    def test_import_chasing_across_modules(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "impl.py": "def thing():\n    return 1\n",
            "user.py": "from repro.impl import thing\n"
                       "def caller():\n    return thing()\n",
        })
        assert ("repro.impl.thing", "call") in edges_from(analysis, ".caller")

    def test_reexport_through_package_init(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "pkg/__init__.py": "from .impl import thing\n",
            "pkg/impl.py": "def thing():\n    return 1\n",
            "user.py": "from repro.pkg import thing\n"
                       "def caller():\n    return thing()\n",
        })
        assert ("repro.pkg.impl.thing", "call") in edges_from(
            analysis, "user.caller"
        )

    def test_pep562_lazy_reexport(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "pkg/__init__.py": (
                '_LAZY = {"Thing": "impl"}\n'
                "def __getattr__(name):\n"
                "    raise AttributeError(name)\n"
            ),
            "pkg/impl.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
            ),
            "user.py": "from repro.pkg import Thing\n"
                       "def caller():\n    return Thing()\n",
        })
        assert ("repro.pkg.impl.Thing.__init__", "call") in edges_from(
            analysis, "user.caller"
        )

    def test_decorator_wrapped_call_site(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def deco(fn):\n"
                "    def inner(*a):\n"
                "        return fn(*a)\n"
                "    return inner\n"
                "@deco\n"
                "def target():\n"
                "    return 1\n"
                "def caller():\n"
                "    return target()\n"
            ),
        })
        assert ("repro.a.target", "call") in edges_from(analysis, "a.caller")
        info = analysis.functions["repro.a.target"]
        assert info.decorators == ("deco",)

    def test_functools_partial_site(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "from functools import partial\n"
                "def target(x):\n    return x\n"
                "def caller():\n    return partial(target, 1)\n"
            ),
        })
        assert ("repro.a.target", "partial") in edges_from(analysis, ".caller")

    def test_async_generator_body_is_walked(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def helper():\n    return 1\n"
                "async def agen():\n"
                "    yield helper()\n"
            ),
        })
        assert ("repro.a.helper", "call") in edges_from(analysis, ".agen")
        assert analysis.functions["repro.a.agen"].is_async

    def test_dynamic_getattr_dispatch_is_a_documented_miss(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def target():\n    return 1\n"
                "def caller(obj, name):\n"
                "    return getattr(obj, name)()\n"
            ),
        })
        assert edges_from(analysis, ".caller") == []


class TestDispatchKinds:
    def test_submit_callback_kwarg_is_any(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def on_done(r):\n    return r\n"
                "def caller(pool, task):\n"
                "    pool.submit(task, callback=on_done)\n"
            ),
        })
        assert ("repro.a.on_done", "any") in edges_from(analysis, ".caller")

    def test_apply_async_target_is_worker(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def run(t):\n    return t\n"
                "def caller(pool, task):\n"
                "    pool.apply_async(run, (task,))\n"
            ),
        })
        assert ("repro.a.run", "worker") in edges_from(analysis, ".caller")

    def test_call_soon_reference_is_loop(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def tick():\n    return 1\n"
                "def caller(loop):\n"
                "    loop.call_soon_threadsafe(tick)\n"
            ),
        })
        assert ("repro.a.tick", "loop") in edges_from(analysis, ".caller")

    def test_run_coord_reference_is_coord(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "def work():\n    return 1\n"
                "class S:\n"
                "    async def go(self):\n"
                "        await self._run_coord(work)\n"
                "    def _run_coord(self, fn):\n"
                "        return fn\n"
            ),
        })
        assert ("repro.a.work", "coord") in edges_from(analysis, ".go")
        # the reference is dispatched, not called on the loop
        assert ("repro.a.work", "call") not in edges_from(analysis, ".go")


class TestFieldTypes:
    def test_constructor_assignment_types_the_receiver(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "class Real:\n"
                "    def go(self):\n        return 1\n"
                "class Decoy:\n"
                "    def go(self):\n        return 2\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self.r = Real()\n"
                "    def caller(self):\n"
                "        return self.r.go()\n"
            ),
        })
        out = edges_from(analysis, "Holder.caller")
        assert ("repro.a.Real.go", "call") in out
        assert ("repro.a.Decoy.go", "call") not in out

    def test_stdlib_typed_field_resolves_to_nothing(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "import asyncio\n"
                "class Decoy:\n"
                "    def close(self):\n        return 2\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._server: asyncio.AbstractServer | None = None\n"
                "    def caller(self):\n"
                "        self._server.close()\n"
            ),
        })
        assert edges_from(analysis, "Holder.caller") == []

    def test_annotated_parameter_types_a_bare_receiver(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "class Real:\n"
                "    def go(self):\n        return 1\n"
                "class Decoy:\n"
                "    def go(self):\n        return 2\n"
                "def caller(r: Real):\n"
                "    return r.go()\n"
            ),
        })
        out = edges_from(analysis, "a.caller")
        assert ("repro.a.Real.go", "call") in out
        assert ("repro.a.Decoy.go", "call") not in out

    def test_untyped_receiver_over_approximates_to_all(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "class Real:\n"
                "    def go(self):\n        return 1\n"
                "class Decoy:\n"
                "    def go(self):\n        return 2\n"
                "def caller(r):\n"
                "    return r.go()\n"
            ),
        })
        out = edges_from(analysis, "a.caller")
        assert ("repro.a.Real.go", "call") in out
        assert ("repro.a.Decoy.go", "call") in out

    def test_super_resolves_only_to_project_bases(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "class Base:\n"
                "    def setup(self):\n        return 1\n"
                "class Unrelated:\n"
                "    def setup(self):\n        return 2\n"
                "class Child(Base):\n"
                "    def setup(self):\n"
                "        return super().setup()\n"
            ),
        })
        out = edges_from(analysis, "Child.setup")
        assert ("repro.a.Base.setup", "call") in out
        assert ("repro.a.Unrelated.setup", "call") not in out

    def test_exception_super_init_resolves_to_nothing(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "a.py": (
                "class Holder:\n"
                "    def __init__(self, x):\n        self.x = x\n"
                "class Boom(Exception):\n"
                "    def __init__(self, what):\n"
                "        super().__init__(what)\n"
            ),
        })
        assert edges_from(analysis, "Boom.__init__") == []


class TestDomains:
    def test_loop_domain_propagates_and_marked_is_boundary(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "serve/app.py": (
                "from repro.engine.core import helper\n"
                "async def handler():\n"
                "    return helper()\n"
            ),
            "engine/core.py": (
                "def helper():\n"
                "    return leaf()\n"
                "def leaf():\n"
                "    return 1\n"
                "def coordinator_only(fn):\n"
                "    return fn\n"
                "@coordinator_only\n"
                "def internal():\n"
                "    return 2\n"
            ),
        })
        domains = infer_domains(analysis)
        assert "loop" in domains["repro.serve.app.handler"]
        assert "loop" in domains["repro.engine.core.helper"]
        assert "loop" in domains["repro.engine.core.leaf"]
        assert domains["repro.engine.core.internal"] == {"coordinator"}

    def test_worker_entry_points_are_worker_domain(self, tmp_path):
        analysis = analysis_of(tmp_path, {
            "parallel/worker.py": (
                "def initialize_worker(handle):\n"
                "    return attach(handle)\n"
                "def attach(handle):\n"
                "    return handle\n"
            ),
        })
        domains = infer_domains(analysis)
        assert "worker" in domains["repro.parallel.worker.initialize_worker"]
        assert "worker" in domains["repro.parallel.worker.attach"]


class TestRealTree:
    def test_analysis_builds_fast_and_reports_stats(self):
        started = time.perf_counter()
        analysis = load_project([SRC]).analysis()
        elapsed = time.perf_counter() - started
        stats = analysis.stats()
        assert stats["files"] >= 60
        assert stats["functions"] >= 400
        assert stats["call_edges"] >= 500
        assert elapsed < 10.0
