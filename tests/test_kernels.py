"""Kernel-tier equivalence: the batch tiers vs the scalar reference.

The reference tier is the equivalence oracle: every other tier must
return the identical result list — scores, metrics, rank order — *and*
the identical effort counters (``grs_examined``, ``pruned_by_support``,
``pruned_by_nhp``, ...), because the batch kernels claim to replay the
reference traversal exactly, not merely to reach the same answer.

The tier is also asserted to be a pure execution detail: canonical
cache keys, engine result caching, warm-start dominance and delta
migration all behave identically whichever tier computed the entries.
"""

import itertools
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.interestingness import gain, laplace
from repro.core.kernels import (
    DEFAULT_KERNEL,
    KERNEL_TIERS,
    NUMBA_AVAILABLE,
    kernel_ops,
    resolve_kernel,
)
from repro.core.miner import GRMiner, MinerConfig, _ColumnCache, _LWContext, mine_top_k
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.datasets.toy import toy_dating_network

RANK_METRICS = ("nhp", "confidence", "laplace", "gain")
#: Batch tiers under test ("numba" resolves to "vector" when numba is
#: absent, which still exercises the config-level plumbing).
BATCH_TIERS = ("vector", "numba")


def _signature(result):
    return [
        (
            str(m.gr),
            m.score,
            m.metrics.support_count,
            m.metrics.lw_count,
            m.metrics.homophily_count,
        )
        for m in result
    ]


def _counters(stats):
    return (
        stats.grs_examined,
        stats.pruned_by_support,
        stats.pruned_by_nhp,
        stats.candidates,
        stats.lw_nodes,
        stats.pruned_by_generality,
    )


_NETWORKS = {}


def _network(seed: int, null_fraction: float = 0.0):
    key = (seed, null_fraction)
    if key not in _NETWORKS:
        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
        )
        _NETWORKS[key] = random_attributed_network(
            schema,
            num_nodes=20,
            num_edges=100,
            homophily_strength=0.5,
            null_fraction=null_fraction,
            seed=seed,
        )
    return _NETWORKS[key]


def _mine(network, tier, **kw):
    return GRMiner(network, kernel=tier, **kw).mine()


class TestTierEquivalence:
    """Vector (and numba) answers equal the reference candidate-for-candidate."""

    @pytest.mark.parametrize("rank_by", RANK_METRICS)
    @pytest.mark.parametrize("push_topk", [True, False])
    def test_toy_all_metrics_and_pushdown(self, rank_by, push_topk):
        network = toy_dating_network()
        for gen, tier in itertools.product([True, False], BATCH_TIERS):
            kw = dict(
                k=5,
                min_support=1,
                rank_by=rank_by,
                push_topk=push_topk,
                apply_generality=gen,
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # numba-fallback warning
                ref = _mine(network, "reference", **kw)
                got = _mine(network, tier, **kw)
            assert _signature(got) == _signature(ref)
            assert _counters(got.stats) == _counters(ref.stats)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5),
        k=st.integers(min_value=1, max_value=8),
        min_support=st.integers(min_value=1, max_value=4),
        rank_by=st.sampled_from(RANK_METRICS),
        null_fraction=st.sampled_from([0.0, 0.2]),
    )
    def test_vector_equals_reference_on_random_networks(
        self, seed, k, min_support, rank_by, null_fraction
    ):
        network = _network(seed, null_fraction)
        kw = dict(k=k, min_support=min_support, min_score=0.1, rank_by=rank_by)
        ref = _mine(network, "reference", **kw)
        got = _mine(network, "vector", **kw)
        assert _signature(got) == _signature(ref)
        assert _counters(got.stats) == _counters(ref.stats)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_workers_match_reference_across_tiers(self, workers):
        from repro.parallel import ParallelGRMiner

        network = _network(2)
        kw = dict(k=6, min_support=2, min_score=0.2)
        ref = ParallelGRMiner(
            network, workers=workers, kernel="reference", **kw
        ).mine()
        got = ParallelGRMiner(network, workers=workers, kernel="vector", **kw).mine()
        assert _signature(got) == _signature(ref)

    def test_rearmed_skeleton_switches_tiers_in_place(self):
        network = _network(3)
        base = dict(k=5, min_support=1, min_score=0.2)
        miner = GRMiner(network, kernel="vector", **base)
        vector = miner.mine()
        reference = miner.rearm(MinerConfig(kernel="reference", **base)).mine()
        assert miner.kernel_tier == "reference"
        assert _signature(vector) == _signature(reference)

    def test_rhs_order_cache_respects_dynamic_ordering_flag(self):
        # Regression: the memoised Eqn. 8 orderings outlive re-arms, so
        # a skeleton re-armed from dynamic_rhs_ordering=True to False
        # (or back) must not serve orderings computed under the other
        # flag.
        network = _network(0)
        base = dict(k=3, min_support=3, min_score=0.4)
        miner = GRMiner(network, dynamic_rhs_ordering=True, **base)
        miner.mine()
        rearmed = miner.rearm(
            MinerConfig(dynamic_rhs_ordering=False, **base)
        ).mine()
        fresh = GRMiner(network, dynamic_rhs_ordering=False, **base).mine()
        assert _signature(rearmed) == _signature(fresh)
        assert _counters(rearmed.stats) == _counters(fresh.stats)

    def test_mine_top_k_kernel_keyword(self):
        network = toy_dating_network()
        ref = mine_top_k(network, k=5, min_support=2, kernel="reference")
        got = mine_top_k(network, k=5, min_support=2, kernel="vector")
        assert _signature(got) == _signature(ref)


class TestNumbaTier:
    def test_default_is_vector(self):
        assert DEFAULT_KERNEL == "vector"
        assert GRMiner(toy_dating_network(), k=3).kernel_tier in ("vector",)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("simd")
        with pytest.raises(ValueError, match="kernel"):
            GRMiner(toy_dating_network(), k=3, kernel="simd")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed: no fallback path")
    def test_numba_absent_falls_back_to_vector_warning_once(self):
        kernels._warned_numba_missing = False
        network = toy_dating_network()
        with pytest.warns(UserWarning, match="falling back"):
            miner = GRMiner(network, k=5, min_support=1, kernel="numba")
        assert miner.kernel == "numba"
        assert miner.kernel_tier == "vector"
        # Warn-once: a second numba request in the same process is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = GRMiner(network, k=5, min_support=1, kernel="numba")
        assert again.kernel_tier == "vector"
        assert _signature(miner.mine()) == _signature(
            _mine(network, "vector", k=5, min_support=1)
        )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_tier_equals_reference(self):
        network = _network(1)
        kw = dict(k=6, min_support=1, min_score=0.1)
        ref = _mine(network, "reference", **kw)
        got = _mine(network, "numba", **kw)
        assert _signature(got) == _signature(ref)
        assert _counters(got.stats) == _counters(ref.stats)

    def test_kernel_ops_resolution(self):
        assert kernel_ops("vector") is kernels.VectorOps
        assert kernel_ops("reference") is kernels.VectorOps
        if NUMBA_AVAILABLE:
            assert kernel_ops("numba") is kernels.NumbaOps


class TestTierIsExecutionDetail:
    """Cache keys, dedup, warm start and deltas are tier-blind."""

    def test_canonical_keys_equal_across_tiers(self):
        network = toy_dating_network()
        keys = {
            tier: MinerConfig(k=5, min_support=2, kernel=tier).canonical_key(
                network.schema, network.num_edges
            )
            for tier in KERNEL_TIERS
        }
        assert len(set(keys.values())) == 1

    def test_engine_cache_shared_across_tiers(self):
        from repro.engine import MineRequest, MiningEngine

        network = _network(4)
        ref_req = MineRequest.create(
            k=5, min_support=1, min_nhp=0.2, kernel="reference"
        )
        vec_req = MineRequest.create(k=5, min_support=1, min_nhp=0.2, kernel="vector")
        with MiningEngine(network) as engine:
            first = engine.mine(ref_req)
            hits_before = engine.stats.cache_hits
            second = engine.mine(vec_req)
            assert engine.stats.cache_hits == hits_before + 1
        assert _signature(first) == _signature(second)

    def test_warmstart_dominance_is_tier_blind(self):
        from repro.engine.request import MineRequest, warmstart_dominates

        network = _network(4)
        schema, num_edges = network.schema, network.num_edges
        seed = MineRequest.create(
            k=5, min_support=4, min_nhp=0.5, workers=2, kernel="reference"
        )
        dependent = MineRequest.create(
            k=5, min_support=2, min_nhp=0.5, workers=2, kernel="vector"
        )
        assert warmstart_dominates(
            seed.canonical_key(schema, num_edges),
            dependent.canonical_key(schema, num_edges),
        )
        # Same thresholds under different tiers is the dedup case, not
        # dominance: the canonical keys coincide exactly.
        twin = MineRequest.create(
            k=5, min_support=4, min_nhp=0.5, workers=2, kernel="vector"
        )
        assert twin.canonical_key(schema, num_edges) == seed.canonical_key(
            schema, num_edges
        )

    def test_delta_migration_identical_across_tiers(self):
        from repro.engine import MineRequest, MiningEngine

        def fresh_network():
            # append_edges mutates the network, so each tier gets its
            # own same-seed copy instead of the shared cached instance.
            schema = random_schema(
                num_node_attrs=3, num_edge_attrs=1, max_domain=3,
                num_homophily=2, seed=5,
            )
            return random_attributed_network(
                schema, num_nodes=20, num_edges=100,
                homophily_strength=0.5, seed=5,
            )

        results = {}
        for tier in ("reference", "vector"):
            network = fresh_network()
            rng = np.random.default_rng(11)
            request = MineRequest.create(
                k=8, min_support=1, min_nhp=0.1, kernel=tier
            )
            with MiningEngine(network) as engine:
                engine.mine(request)
                count = 6
                src = rng.integers(0, network.num_nodes, count)
                dst = rng.integers(0, network.num_nodes, count)
                codes = {
                    name: rng.integers(
                        0,
                        network.schema.edge_attribute(name).domain_size + 1,
                        count,
                    )
                    for name in network.schema.edge_attribute_names
                }
                engine.append_edges(src, dst, codes)
                results[tier] = _signature(engine.mine(request))
        assert results["vector"] == results["reference"]


class TestMetricFormulaConsistency:
    """One source of truth: interestingness, the scalar path and the
    array path all evaluate the same count-level formulas."""

    def test_interestingness_delegates_match_counts(self):
        rng = np.random.default_rng(0)
        num_edges = 200
        for _ in range(50):
            lw = int(rng.integers(1, 60))
            supp = int(rng.integers(0, lw + 1))
            assert laplace(
                supp / num_edges, lw / num_edges, num_edges, k=2
            ) == pytest.approx(kernels.laplace_counts(supp, lw, 2))
            assert gain(supp / num_edges, lw / num_edges, 0.5) == pytest.approx(
                kernels.gain_counts(supp / num_edges, lw / num_edges, 1, 0.5)
            )

    @pytest.mark.parametrize("rank_by", RANK_METRICS)
    def test_score_matrix_matches_scalar_scores_bitwise(self, rank_by):
        rng = np.random.default_rng(3)
        lw_count = 40
        hom = 7
        num_edges = 500
        counts = rng.integers(0, lw_count + 1, size=32).astype(np.int64)
        denoms = np.full(counts.shape, lw_count - hom, dtype=np.int64)
        batch = kernels.score_matrix(
            rank_by, counts, lw_count, denoms, num_edges, 2, 0.5
        )
        for i, count in enumerate(counts):
            scalar = kernels.score_counts(
                rank_by, int(count), lw_count, hom, num_edges, 2, 0.5
            )
            # Bit-identical, not approximately equal: the batch tier's
            # equality with the reference depends on it.
            assert batch[i] == scalar

    def test_nhp_degenerate_denominator_is_zero(self):
        assert kernels.nhp_counts(5, 10, 10) == 0.0
        assert kernels.nhp_counts(5, 10, 12) == 0.0


class _SpyColumnCache(_ColumnCache):
    """Counts full-column fetch requests per attribute."""

    __slots__ = ("requests",)

    def __init__(self, fetch):
        super().__init__(fetch)
        self.requests = {}

    def __getitem__(self, name):
        self.requests[name] = self.requests.get(name, 0) + 1
        return super().__getitem__(name)


class TestContextColumnCache:
    """β sets sharing an attribute reuse one per-context gather."""

    def _spied_miner(self):
        miner = GRMiner(toy_dating_network(), k=5, min_support=1)
        spy = _SpyColumnCache(miner.store.dest_codes)
        miner._dst_cols = spy
        return miner, spy

    def test_context_dst_gathers_once_per_context(self):
        miner, spy = self._spied_miner()
        edges = np.arange(miner.network.num_edges)
        context = _LWContext(edges=edges, l_map={"EDU": 1}, w_map={}, lw_count=8)
        first = miner._context_dst(context, "EDU")
        second = miner._context_dst(context, "EDU")
        assert first is second
        assert spy.requests == {"EDU": 1}

    def test_homophily_counts_share_gathered_columns(self):
        miner, spy = self._spied_miner()
        edges = np.arange(miner.network.num_edges)
        l_map = {"EDU": 1, "SEX": 1}
        context = _LWContext(edges=edges, l_map=l_map, w_map={}, lw_count=8)
        miner._homophily_count(context, ("EDU",))
        miner._homophily_count(context, ("EDU", "SEX"))
        miner._homophily_count(context, ("SEX",))
        assert spy.requests == {"EDU": 1, "SEX": 1}
        # A different context re-gathers: the cache is per ``l ∧ w``.
        other = _LWContext(
            edges=edges[: len(edges) // 2], l_map=l_map, w_map={}, lw_count=4
        )
        miner._homophily_count(other, ("EDU",))
        assert spy.requests["EDU"] == 2


class TestProfileHook:
    def test_profile_mining_matches_plain_mine(self, tmp_path):
        from repro.bench.harness import profile_mining

        network = toy_dating_network()
        plain = _mine(network, "vector", k=5, min_support=1)
        out = tmp_path / "walk.pstats"
        result, text = profile_mining(
            GRMiner(network, k=5, min_support=1, kernel="vector"), out_path=out
        )
        assert _signature(result) == _signature(plain)
        assert out.exists() and out.stat().st_size > 0
        assert "mine_branch" in text

    def test_cli_accepts_kernel_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["mine", "data", "--kernel", "reference"])
        assert args.kernel == "reference"
        args = build_parser().parse_args(["sweep", "data", "--kernel", "vector"])
        assert args.kernel == "vector"
