"""Equivalence of GRMiner against the brute-force reference miner.

This is the load-bearing correctness test of the reproduction: the
SFDF-enumerating, nhp-pruning, generality-indexed miner must produce
*identical ranked output* to the direct Definition 2–5 implementation,
across parameter grids and randomized networks (hypothesis).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import BruteForceMiner
from repro.core.miner import GRMiner
from repro.datasets.random_graphs import random_attributed_network, random_schema


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


def _assert_equal_results(miner_result, reference_result):
    assert _signature(miner_result) == _signature(reference_result)


_NETWORKS = {}


def _network(seed: int, null_fraction: float = 0.0):
    key = (seed, null_fraction)
    if key not in _NETWORKS:
        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
        )
        _NETWORKS[key] = random_attributed_network(
            schema,
            num_nodes=20,
            num_edges=100,
            homophily_strength=0.5,
            null_fraction=null_fraction,
            seed=seed,
        )
    return _NETWORKS[key]


class TestToyEquivalence:
    @pytest.mark.parametrize(
        "params",
        [
            dict(min_support=1, min_score=0.0),
            dict(min_support=2, min_score=0.5),
            dict(min_support=3, min_score=0.6),
            dict(min_support=0.1, min_score=0.4),
            dict(min_support=2, min_score=0.5, rank_by="confidence"),
            dict(min_support=2, min_score=0.5, allow_empty_lhs=True),
            dict(min_support=2, min_score=0.2, include_trivial=True),
            dict(min_support=2, min_score=0.0, apply_generality=False),
        ],
    )
    def test_full_output_matches_bruteforce(self, toy_network, params):
        mined = GRMiner(toy_network, k=None, **params).mine()
        reference = BruteForceMiner(toy_network, k=None, **params).mine()
        _assert_equal_results(mined, reference)

    @pytest.mark.parametrize("rank_by", ["laplace", "gain"])
    def test_alternative_antimonotone_metrics_match(self, toy_network, rank_by):
        threshold = 0.0 if rank_by == "laplace" else -1.0
        mined = GRMiner(
            toy_network, k=None, min_support=2, min_score=threshold, rank_by=rank_by
        ).mine()
        reference = BruteForceMiner(
            toy_network, k=None, min_support=2, min_score=threshold, rank_by=rank_by
        ).mine()
        _assert_equal_results(mined, reference)


class TestRandomizedEquivalence:
    @given(
        seed=st.integers(0, 15),
        min_support=st.integers(1, 8),
        min_score=st.sampled_from([0.0, 0.2, 0.5, 0.8]),
        null_fraction=st.sampled_from([0.0, 0.15]),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_miner_matches_bruteforce(
        self, seed, min_support, min_score, null_fraction
    ):
        network = _network(seed, null_fraction)
        mined = GRMiner(
            network, k=None, min_support=min_support, min_score=min_score
        ).mine()
        reference = BruteForceMiner(
            network, k=None, min_support=min_support, min_score=min_score
        ).mine()
        _assert_equal_results(mined, reference)

    @given(seed=st.integers(0, 15), min_support=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_confidence_ranking_matches_bruteforce(self, seed, min_support):
        network = _network(seed)
        mined = GRMiner(
            network, k=None, min_support=min_support, min_score=0.3, rank_by="confidence"
        ).mine()
        reference = BruteForceMiner(
            network, k=None, min_support=min_support, min_score=0.3, rank_by="confidence"
        ).mine()
        _assert_equal_results(mined, reference)

    @given(seed=st.integers(0, 15), min_support=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_static_ordering_ablation_still_exact(self, seed, min_support):
        """Disabling dynamic ordering must not change output — only cost.

        The miner falls back to the conservative Theorem 2 pruning rule,
        so correctness is preserved (Remark 2's trap is avoided)."""
        network = _network(seed)
        dynamic = GRMiner(
            network, k=None, min_support=min_support, min_score=0.4
        ).mine()
        static = GRMiner(
            network,
            k=None,
            min_support=min_support,
            min_score=0.4,
            dynamic_rhs_ordering=False,
        ).mine()
        _assert_equal_results(dynamic, static)


class TestTopKPushdown:
    """GRMiner(k) (dynamic threshold upgrade + verification pass)."""

    @given(seed=st.integers(0, 15), k=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_topk_is_subsequence_of_exact_topk(self, seed, k):
        network = _network(seed)
        fast = GRMiner(network, k=k, min_support=2, min_score=0.3).mine()
        exact = BruteForceMiner(network, k=k, min_support=2, min_score=0.3).mine()
        fast_sig, exact_sig = _signature(fast), _signature(exact)
        positions = []
        for item in fast_sig:
            assert item in exact_sig, f"{item} not in exact top-k"
            positions.append(exact_sig.index(item))
        assert positions == sorted(positions)

    @given(seed=st.integers(0, 15), k=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_push_topk_false_is_exact(self, seed, k):
        network = _network(seed)
        plain = GRMiner(
            network, k=k, min_support=2, min_score=0.3, push_topk=False
        ).mine()
        exact = BruteForceMiner(network, k=k, min_support=2, min_score=0.3).mine()
        _assert_equal_results(plain, exact)

    def test_first_result_always_agrees(self, toy_network):
        fast = GRMiner(toy_network, k=1, min_support=2, min_score=0.3).mine()
        exact = BruteForceMiner(toy_network, k=1, min_support=2, min_score=0.3).mine()
        _assert_equal_results(fast, exact)
