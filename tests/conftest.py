"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.network import SocialNetwork
from repro.data.schema import Attribute, Schema
from repro.datasets.toy import toy_dating_network


@pytest.fixture(scope="session")
def toy_network() -> SocialNetwork:
    """The Fig. 1 dating network (session-cached; it is immutable)."""
    return toy_dating_network()


@pytest.fixture
def small_schema() -> Schema:
    """Two node attributes (one homophilous) and one edge attribute."""
    return Schema(
        node_attributes=[
            Attribute("A", ("a1", "a2"), homophily=True),
            Attribute("B", ("b1", "b2", "b3")),
        ],
        edge_attributes=[Attribute("W", ("w1", "w2"))],
    )


@pytest.fixture
def small_network(small_schema: Schema) -> SocialNetwork:
    """A hand-built 6-node / 8-edge network with known counts."""
    nodes = {
        0: {"A": "a1", "B": "b1"},
        1: {"A": "a1", "B": "b2"},
        2: {"A": "a2", "B": "b1"},
        3: {"A": "a2", "B": "b3"},
        4: {"A": "a1"},  # B is null
        5: {"B": "b2"},  # A is null
    }
    edges = [
        (0, 1, {"W": "w1"}),
        (0, 2, {"W": "w1"}),
        (1, 2, {"W": "w2"}),
        (1, 3, {"W": "w1"}),
        (2, 3, {"W": "w2"}),
        (3, 0, {"W": "w1"}),
        (4, 5, {"W": "w2"}),
        (5, 4, {}),  # W is null
    ]
    return SocialNetwork.from_records(small_schema, nodes, edges)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
