"""Delta-aware incremental re-mining (the append-edges fast path).

The contract under test, in three legs:

1. **Exactness** — after any append-edge delta, an engine's answers are
   GR-for-GR identical to a fresh miner over the post-delta network,
   whether the cache entry was *migrated* (untouched branches carried,
   touched branches re-mined) or *purged* (cold re-mine).  The property
   sweep drives random deltas — empty, single-edge, many-edge,
   concentrated in one first-level partition and spread across them,
   repeated, and followed by sweeps — through both the serial and the
   sharded paths.
2. **Incrementality** — an eligible cached entry survives a delta as a
   migrated entry whose re-mine covered strictly fewer branches than a
   cold mine would, while every ineligible shape (serial mode, gain
   ranking, score threshold + generality, untracked deltas) demonstrably
   falls back to the purge path.
3. **Transactionality** — ``MiningEngine.append_edges`` never half
   commits: validation failures leave the engine untouched, a refresh
   failure is recovered through a full rebuild (with a warning), and a
   double failure poisons the engine so queries fail loudly instead of
   serving pre-delta answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import GRMiner, MinerConfig, config_from_canonical_key
from repro.data.network import NetworkError
from repro.data.store import CompactStore, StoreDelta
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.engine import EngineHub, MineRequest, MiningEngine
from repro.parallel import ParallelGRMiner


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


def _build(seed: int):
    """A fresh random network (never shared: these tests mutate it)."""
    schema = random_schema(
        num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
    )
    return random_attributed_network(
        schema, num_nodes=20, num_edges=100, homophily_strength=0.5, seed=seed
    )


def _delta(network, count: int, seed: int = 0, concentrated: bool = False):
    """A valid random edge batch; ``concentrated`` pins one source node
    so the delta touches only that node's first-level partitions."""
    rng = np.random.default_rng(seed)
    if concentrated and count:
        src = np.full(count, int(rng.integers(0, network.num_nodes)))
    else:
        src = rng.integers(0, network.num_nodes, count)
    dst = rng.integers(0, network.num_nodes, count)
    edge_codes = {
        name: rng.integers(
            0, network.schema.edge_attribute(name).domain_size + 1, count
        )
        for name in network.schema.edge_attribute_names
    }
    return src, dst, edge_codes


def _fresh(network, request: MineRequest):
    """A cold one-shot run of the same query, outside any engine."""
    kwargs = dict(
        k=request.k,
        min_support=request.min_support,
        min_score=request.min_nhp,
        rank_by=request.rank_by,
        push_topk=request.push_topk,
        **dict(request.options),
    )
    if request.workers is None:
        return GRMiner(network, **kwargs).mine()
    return ParallelGRMiner(network, workers=request.workers, **kwargs).mine()


class TestStoreDelta:
    """``CompactStore.apply_delta`` reports what changed, exactly."""

    def test_reports_tail_rows_and_partition_footprint(self, small_network):
        store = CompactStore(small_network)
        small_network.append_edges([0, 2], [3, 5], {"W": [1, 2]})
        delta = store.apply_delta()
        assert delta.num_edges_before == 8
        assert delta.num_edges_after == 10
        assert delta.num_new_edges == 2
        assert not delta.untracked
        assert list(delta.new_src) == [0, 2]
        assert list(delta.new_dst) == [3, 5]
        assert delta.touched_sources() == {0, 2}
        assert delta.touched_destinations() == {3, 5}
        expected = {
            (name, int(small_network.node_column(name)[v]))
            for name in small_network.schema.node_attribute_names
            for v in (0, 2)
        }
        assert delta.touched_partitions == expected

    def test_empty_delta_has_empty_footprint(self, small_network):
        store = CompactStore(small_network)
        delta = store.apply_delta()
        assert delta.num_new_edges == 0
        assert delta.touched_partitions == frozenset()
        assert not delta.untracked

    def test_shrinking_edge_set_is_untracked(self, small_network):
        store = CompactStore(small_network)
        # Simulate a wholesale array replacement the store cannot
        # attribute to an append: the edge count went down.
        store._num_edges += 1
        delta = store.apply_delta()
        assert delta.untracked
        # An untracked delta still leaves the store itself consistent.
        assert store._num_edges == small_network.num_edges

    def test_delta_keeps_store_equal_to_cold_rebuild(self, small_network):
        store = CompactStore(small_network)
        small_network.append_edges([1, 1, 4], [0, 2, 2], {"W": [2, 1, 0]})
        store.apply_delta()
        cold = CompactStore(small_network)
        assert store.fingerprint() == cold.fingerprint()


class TestConfigRoundtrip:
    """``config_from_canonical_key`` inverts ``MinerConfig.canonical_key``."""

    @pytest.mark.parametrize(
        "config",
        [
            MinerConfig(k=5, min_support=3),
            MinerConfig(k=None, min_support=2, min_score=0.4, rank_by="confidence"),
            MinerConfig(k=7, min_support=4, rank_by="laplace", laplace_k=3),
            MinerConfig(k=2, min_support=2, rank_by="gain", gain_theta=0.25),
            MinerConfig(
                k=3, min_support=2, allow_empty_lhs=True, include_trivial=True,
                apply_generality=False, push_topk=False,
            ),
            MinerConfig(k=4, min_support=0.1, max_lhs_attrs=1, max_rhs_attrs=1),
        ],
    )
    def test_roundtrip_is_exact(self, small_schema, config):
        key = config.canonical_key(small_schema, 50)
        rebuilt = config_from_canonical_key(key)
        assert rebuilt.canonical_key(small_schema, 50) == key
        # Absolute support makes the key |E|-independent.
        assert rebuilt.canonical_key(small_schema, 999) == key


class TestShortCircuit:
    """A zero-length delta must not rebuild or invalidate anything."""

    def test_empty_batch_skips_rebuild_and_refresh(self, monkeypatch):
        network = _build(3)
        empty = {name: [] for name in network.schema.edge_attribute_names}
        with MiningEngine(network) as engine:
            fingerprint = engine.fingerprint
            calls = []
            monkeypatch.setattr(
                CompactStore, "_rebuild", lambda self: calls.append(1)
            )
            assert engine.append_edges([], [], empty) == fingerprint
            assert calls == []
            assert engine.stats.invalidations == 0
            assert engine.fingerprint == fingerprint


class TestTransactionalAppend:
    """append_edges commits fully, recovers, or poisons — never halfway."""

    def test_validation_failure_leaves_engine_healthy(self):
        network = _build(4)
        request = MineRequest(k=5, min_support=3)
        with MiningEngine(network) as engine:
            before = _signature(engine.mine(request))
            fingerprint = engine.fingerprint
            with pytest.raises(NetworkError):
                engine.append_edges([0], [10_000], None)
            assert engine.fingerprint == fingerprint
            assert _signature(engine.mine(request)) == before

    def test_one_shot_refresh_failure_recovers_with_warning(self, monkeypatch):
        network = _build(5)
        request = MineRequest(k=5, min_support=3, workers=1)
        with MiningEngine(network) as engine:
            engine.mine(request)
            original = CompactStore.apply_delta
            state = {"failures": 1}

            def flaky(store):
                if state["failures"]:
                    state["failures"] -= 1
                    raise RuntimeError("injected rebuild fault")
                return original(store)

            monkeypatch.setattr(CompactStore, "apply_delta", flaky)
            with pytest.warns(UserWarning, match="recovered"):
                engine.append_edges(*_delta(network, 5, seed=1))
            # Recovery took the purge path (no delta to migrate with) …
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            # … and the engine serves exact post-delta answers.
            assert _signature(engine.mine(request)) == _signature(
                _fresh(network, request)
            )

    def test_double_failure_poisons_the_engine(self, monkeypatch):
        network = _build(6)
        request = MineRequest(k=5, min_support=3)
        with MiningEngine(network) as engine:
            engine.mine(request)

            def broken(store):
                raise RuntimeError("injected rebuild fault")

            monkeypatch.setattr(CompactStore, "apply_delta", broken)
            with pytest.raises(RuntimeError, match="injected rebuild fault"):
                engine.append_edges(*_delta(network, 5, seed=2))
            # The network mutated but the store could not follow: the
            # engine must now refuse to serve (possibly stale) answers.
            with pytest.raises(RuntimeError, match="poisoned"):
                engine.mine(request)
            with pytest.raises(RuntimeError, match="poisoned"):
                engine.append_edges(*_delta(network, 1, seed=3))


class TestMigration:
    """Eligible entries migrate (fewer branches mined); others purge."""

    def test_eligible_entry_migrates_and_mines_fewer_branches(self):
        network = _build(7)
        request = MineRequest(k=5, min_support=3, workers=1)
        with MiningEngine(network) as engine:
            cold = engine.mine(request)
            assert "migrated" not in cold.params
            engine.append_edges(*_delta(network, 3, seed=1, concentrated=True))
            assert engine.stats.migrated_entries == 1
            assert engine.stats.purged_entries == 0
            warm = engine.mine(request)
            assert warm.params["cached"] is True
            assert warm.params["migrated"] is True
            assert warm.params["branches_mined"] < warm.params["branches_total"]
            assert _signature(warm) == _signature(_fresh(network, request))

    def test_serial_entries_always_purge(self):
        network = _build(8)
        request = MineRequest(k=5, min_support=3)  # workers=None -> serial
        with MiningEngine(network) as engine:
            engine.mine(request)
            engine.append_edges(*_delta(network, 3, seed=1, concentrated=True))
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            assert engine.stats.migration_fallbacks == 0
            result = engine.mine(request)
            assert "migrated" not in result.params
            assert _signature(result) == _signature(_fresh(network, request))

    def test_gain_ranking_always_purges(self):
        network = _build(9)
        request = MineRequest(k=5, min_support=3, rank_by="gain", workers=1)
        with MiningEngine(network) as engine:
            engine.mine(request)
            engine.append_edges(*_delta(network, 3, seed=1, concentrated=True))
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            assert _signature(engine.mine(request)) == _signature(
                _fresh(network, request)
            )

    def test_score_threshold_with_generality_purges(self):
        network = _build(10)
        request = MineRequest(k=5, min_support=3, min_nhp=0.3, workers=1)
        with MiningEngine(network) as engine:
            engine.mine(request)
            engine.append_edges(*_delta(network, 3, seed=1, concentrated=True))
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            assert _signature(engine.mine(request)) == _signature(
                _fresh(network, request)
            )

    def test_untracked_delta_purges_and_recovers_cold(self, monkeypatch):
        network = _build(11)
        request = MineRequest(k=5, min_support=3, workers=1)
        with MiningEngine(network) as engine:
            engine.mine(request)
            original = CompactStore.apply_delta

            def untracked(store):
                delta = original(store)
                return StoreDelta(
                    num_edges_before=delta.num_edges_before,
                    num_edges_after=delta.num_edges_after,
                    untracked=True,
                )

            monkeypatch.setattr(CompactStore, "apply_delta", untracked)
            engine.append_edges(*_delta(network, 3, seed=1, concentrated=True))
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            assert _signature(engine.mine(request)) == _signature(
                _fresh(network, request)
            )

    def test_lying_delta_trips_the_reverification_tripwire(self, monkeypatch):
        """A delta that under-reports its partition footprint must be
        caught by the carried-entry count re-check, not believed."""
        network = _build(12)
        request = MineRequest(k=20, min_support=2, workers=1)
        with MiningEngine(network) as engine:
            engine.mine(request)
            original = CompactStore.apply_delta

            def lying(store):
                delta = original(store)
                return StoreDelta(
                    num_edges_before=delta.num_edges_before,
                    num_edges_after=delta.num_edges_after,
                    new_src=delta.new_src,
                    new_dst=delta.new_dst,
                    touched_partitions=frozenset(),  # the lie
                )

            monkeypatch.setattr(CompactStore, "apply_delta", lying)
            # Duplicate existing edges: supports genuinely change, so
            # the "untouched" invariant is violated for cached entries.
            src = [int(v) for v in network.src[:5]]
            dst = [int(v) for v in network.dst[:5]]
            codes = {
                name: [int(v) for v in network.edge_column(name)[:5]]
                for name in network.schema.edge_attribute_names
            }
            engine.append_edges(src, dst, codes)
            assert engine.stats.migrated_entries == 0
            assert engine.stats.purged_entries == 1
            assert engine.stats.migration_fallbacks == 1
            assert _signature(engine.mine(request)) == _signature(
                _fresh(network, request)
            )

    def test_migration_counters_reach_hub_stats(self):
        network = _build(13)
        request = MineRequest(k=5, min_support=3, workers=1)
        with EngineHub(workers=1) as hub:
            hub.register("n", network)
            hub.mine("n", request)
            hub.append_edges("n", *_delta(network, 3, seed=1, concentrated=True))
            assert hub.stats("n").migrated_entries == 1
            assert hub.aggregate_stats()["migrated_entries"] == 1


class TestIncrementalEquivalence:
    """Incremental re-mining equals a cold re-mine, GR for GR."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.sampled_from([0, 1, 7]),
        concentrated=st.booleans(),
        workers=st.sampled_from([None, 1]),
    )
    def test_random_deltas_stay_exact(self, seed, size, concentrated, workers):
        network = _build(seed % 7)
        request = MineRequest(k=5, min_support=3, workers=workers)
        with MiningEngine(network) as engine:
            engine.mine(request)
            engine.append_edges(
                *_delta(network, size, seed=seed, concentrated=concentrated)
            )
            incremental = engine.mine(request)
            assert _signature(incremental) == _signature(_fresh(network, request))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_repeated_deltas_sharded(self, workers):
        network = _build(14)
        request = MineRequest(k=5, min_support=3, workers=workers)
        with MiningEngine(network, workers=workers) as engine:
            engine.mine(request)
            for i in range(3):
                engine.append_edges(
                    *_delta(network, 4, seed=i, concentrated=(i % 2 == 0))
                )
                result = engine.mine(request)
                assert _signature(result) == _signature(_fresh(network, request))

    def test_delta_then_sweep_stays_exact(self):
        network = _build(15)
        requests = [
            MineRequest(k=5, min_support=3, workers=1),
            MineRequest(k=3, min_support=2, workers=1),
            MineRequest(k=5, min_support=3),  # serial rides along
        ]
        with MiningEngine(network) as engine:
            engine.sweep(requests)
            engine.append_edges(*_delta(network, 5, seed=9))
            results = engine.sweep(requests)
            for request, result in zip(requests, results):
                assert _signature(result) == _signature(_fresh(network, request))
