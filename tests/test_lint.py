"""repro.lint — the invariant linter that gates this codebase's contracts.

Three layers of coverage:

1. **Paired fixtures per rule** — every rule fires on a minimal
   violating snippet and stays quiet on the compliant twin, so a rule
   can neither rot into a no-op nor creep into false positives.
   Fixtures are materialized under a ``repro/...`` directory inside
   ``tmp_path`` because several rules are path-scoped.
2. **Pragma machinery** — justified suppressions hide findings (and
   surface them as ``suppressed`` with the justification attached);
   unjustified or unknown-rule pragmas are themselves unsuppressable
   findings.
3. **The tree itself** — ``src/repro`` lints clean (the PR-8 sweep must
   never regress) and the linter lints *itself*, wiring the self-check
   into tier-1.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, UNSUPPRESSABLE, run_lint
from repro.lint.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint_snippet(tmp_path, rel, code, select=None):
    """Materialize ``code`` at ``repro/<rel>`` under tmp and lint it."""
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return run_lint([tmp_path], select=select)


def rules_fired(report):
    return {f.rule for f in report.findings}


# ---------------------------------------------------------------------------
# R1: no-blocking-in-async


class TestNoBlockingInAsync:
    def test_fires_on_time_sleep_in_async_def(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/app.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n",
        )
        assert rules_fired(report) == {"no-blocking-in-async"}
        assert report.findings[0].line == 3

    def test_fires_on_bare_open_and_nonawaited_acquire(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/app.py",
            "async def handler(lock):\n"
            "    lock.acquire()\n"
            "    open('x')\n",
            select=["no-blocking-in-async"],
        )
        assert len(report.findings) == 2
        assert rules_fired(report) == {"no-blocking-in-async"}

    def test_quiet_on_awaited_wait_and_async_sleep(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/app.py",
            "import asyncio\n"
            "async def handler(event):\n"
            "    await event.wait()\n"
            "    await asyncio.sleep(0)\n",
        )
        assert report.ok

    def test_quiet_on_blocking_call_in_nested_sync_def(self, tmp_path):
        # A nested `def` runs on whatever thread calls it (typically the
        # coordinator); only the coroutine's own body is constrained.
        report = lint_snippet(
            tmp_path,
            "serve/app.py",
            "import time\n"
            "async def handler():\n"
            "    def on_coord():\n"
            "        time.sleep(1)\n"
            "    return on_coord\n",
        )
        assert report.ok

    def test_quiet_outside_serve(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "bench/app.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# R2: lease-lifecycle


class TestLeaseLifecycle:
    def test_fires_on_discarded_acquisition(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(store):\n"
            "    store.export_shared()\n",
        )
        assert rules_fired(report) == {"lease-lifecycle"}

    def test_fires_on_binding_without_release(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(pool):\n"
            "    bus = pool.acquire()\n"
            "    return None\n",
        )
        assert rules_fired(report) == {"lease-lifecycle"}

    @pytest.mark.parametrize(
        "body",
        [
            # with-block ownership
            "    with store.lease_shared() as lease:\n        return lease.handle\n",
            # explicit release on an error path
            "    bus = pool.acquire()\n"
            "    try:\n        use(bus)\n"
            "    finally:\n        pool.release(bus)\n",
            # handed to an owner object
            "    bus = pool.acquire()\n    return Prepared(bus=bus)\n",
            # stored on an owner attribute
            "    self._lease = store.lease_shared()\n",
        ],
        ids=["with", "try-finally", "owner-call", "attribute"],
    )
    def test_quiet_on_owned_acquisitions(self, tmp_path, body):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(self, store, pool, use, Prepared):\n" + body,
        )
        assert report.ok, [f.message for f in report.findings]


# ---------------------------------------------------------------------------
# R3: coordinator-only


_MARKED_DEF = (
    "from repro.serve.markers import coordinator_only\n"
    "@coordinator_only\n"
    "def prepare_query(engine):\n"
    "    return engine\n"
)


class TestCoordinatorOnly:
    def test_fires_on_unmarked_caller_in_serve(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/sched.py",
            _MARKED_DEF + "def event_loop_side(engine):\n"
            "    return prepare_query(engine)\n",
        )
        assert rules_fired(report) == {"coordinator-only"}
        assert "prepare_query" in report.findings[0].message

    def test_quiet_when_caller_is_marked(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/sched.py",
            _MARKED_DEF + "@coordinator_only\n"
            "def also_coordinator(engine):\n"
            "    return prepare_query(engine)\n",
        )
        assert report.ok

    def test_quiet_inside_the_dispatch_shim(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/sched.py",
            _MARKED_DEF + "def _run_coord(engine):\n"
            "    return lambda: prepare_query(engine)\n",
        )
        assert report.ok

    def test_quiet_on_awaited_async_sibling(self, tmp_path):
        # Scheduler.append_edges (async) shares its name with the
        # marked hub/engine method; awaited calls are the async wrapper.
        report = lint_snippet(
            tmp_path,
            "serve/sched.py",
            "from repro.serve.markers import coordinator_only\n"
            "@coordinator_only\n"
            "def append_edges(hub):\n"
            "    return hub\n"
            "async def handler(scheduler):\n"
            "    return await scheduler.append_edges()\n",
        )
        assert report.ok

    def test_reference_into_run_coord_is_not_a_call(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/sched.py",
            _MARKED_DEF + "async def handler(self, engine):\n"
            "    return await self._run_coord(prepare_query, engine)\n",
        )
        assert report.ok

    def test_marked_defs_outside_serve_constrain_serve_callers(self, tmp_path):
        (tmp_path / "repro" / "engine").mkdir(parents=True)
        (tmp_path / "repro" / "engine" / "eng.py").write_text(_MARKED_DEF)
        (tmp_path / "repro" / "serve").mkdir(parents=True)
        (tmp_path / "repro" / "serve" / "sched.py").write_text(
            "def loop_side(engine):\n    return engine.prepare_query()\n"
        )
        report = run_lint([tmp_path])
        assert rules_fired(report) == {"coordinator-only"}

    def test_engine_layer_callers_are_unconstrained(self, tmp_path):
        # Blocking engine.sweep()/hub.mine() paths: the calling thread
        # *is* the coordinator there.
        report = lint_snippet(
            tmp_path,
            "engine/eng.py",
            _MARKED_DEF + "def sweep(engine):\n"
            "    return prepare_query(engine)\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# R4: pickle-boundary


class TestPickleBoundary:
    def test_fires_on_lambda_into_pool_submit(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(pool):\n"
            "    pool.submit(lambda: 1)\n",
        )
        # the interprocedural pickle-taint rule sees the same literal
        assert rules_fired(report) == {"pickle-boundary", "pickle-taint"}

    def test_fires_on_local_def_into_shard_task(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f():\n"
            "    def helper():\n"
            "        return 1\n"
            "    return ShardTask(shard_id=0, config=helper)\n",
        )
        assert rules_fired(report) == {"pickle-boundary", "pickle-taint"}
        assert "helper" in report.findings[0].message

    def test_callback_kwargs_stay_in_parent_and_are_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "def f(self, task):\n"
            "    self._fleet.submit(task, callback=lambda r: r,\n"
            "                       error_callback=lambda e: e)\n",
        )
        assert report.ok

    def test_quiet_on_module_level_payloads(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def shard_fn():\n"
            "    return 1\n"
            "def f(pool, task):\n"
            "    pool.submit(task)\n"
            "    return ShardTask(shard_id=0, config=shard_fn)\n",
        )
        assert report.ok

    def test_non_pool_submit_is_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(executor):\n"
            "    executor.submit(lambda: 1)\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# R5: ckey-layout


class TestCkeyLayout:
    def test_fires_on_integer_subscript(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "def f(ckey):\n"
            "    return ckey[4]\n",
        )
        assert rules_fired(report) == {"ckey-layout"}

    def test_fires_on_slice_and_variant_names(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(seed_ckey, request):\n"
            "    a = seed_ckey[1:]\n"
            "    b = request.canonical_key(None, 0)[0]\n"
            "    return a, b\n",
        )
        assert len(report.findings) == 2
        assert rules_fired(report) == {"ckey-layout"}

    def test_layout_owning_modules_are_exempt(self, tmp_path):
        for rel in ("engine/request.py", "core/miner.py"):
            report = lint_snippet(
                tmp_path, rel, "def f(ckey):\n    return ckey[4]\n"
            )
            assert report.ok, rel

    def test_quiet_on_named_constants_and_other_tuples(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "engine/x.py",
            "def f(ckey, row, CKEY_K):\n"
            "    return ckey[CKEY_K], row[0]\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# R6: swallowed-exception


class TestSwallowedException:
    @pytest.mark.parametrize(
        "clause", ["except:", "except Exception:", "except (ValueError, Exception):"]
    )
    def test_fires_on_broad_pass(self, tmp_path, clause):
        report = lint_snippet(
            tmp_path,
            "parallel/x.py",
            f"def f():\n    try:\n        g()\n    {clause}\n        pass\n",
        )
        assert rules_fired(report) == {"swallowed-exception"}

    def test_quiet_on_narrow_except_pass(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "parallel/x.py",
            "def f():\n    try:\n        g()\n"
            "    except FileNotFoundError:\n        pass\n",
        )
        assert report.ok

    def test_quiet_on_broad_except_with_a_body(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "def f(log):\n    try:\n        g()\n"
            "    except Exception as exc:\n        log.warning(exc)\n",
        )
        assert report.ok

    def test_quiet_outside_parallel_and_serve(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/x.py",
            "def f():\n    try:\n        g()\n    except Exception:\n        pass\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# R7: obs-nonblocking


class TestObsNonblocking:
    def test_fires_on_persistence_verb_on_obs_receiver(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "async def handler(self, path):\n"
            "    self.tracer.dump(path)\n",
        )
        assert rules_fired(report) == {"obs-nonblocking"}

    def test_fires_on_registry_flush_and_history_write(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "async def handler(metrics_registry, history_file):\n"
            "    metrics_registry.flush()\n"
            "    history_file.write_text('row')\n",
        )
        assert rules_fired(report) == {"obs-nonblocking"}
        assert len(report.findings) == 2

    def test_fires_on_direct_record_bench_run(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "from repro.bench.history import record_bench_run\n"
            "async def handler(payload):\n"
            "    record_bench_run('serve', payload, 'out', headline={})\n",
        )
        assert rules_fired(report) == {"obs-nonblocking"}

    def test_quiet_on_in_memory_emission(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "async def handler(REGISTRY, tracer, counter):\n"
            "    counter.inc()\n"
            "    tracer.span('job-1', 'plan', 0.0, 1.0)\n"
            "    return REGISTRY.render_prometheus()\n",
        )
        assert report.ok

    def test_quiet_on_non_obs_receiver(self, tmp_path):
        # The SSE path writes to the *socket* from a coroutine — that is
        # the endpoint's job, not observability persistence.
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "async def handler(writer, data):\n"
            "    writer.write(data)\n"
            "    await writer.drain()\n",
        )
        assert report.ok

    def test_quiet_in_sync_def_and_outside_serve(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "def snapshot(self, path):\n"
            "    self.tracer.dump(path)\n",
        )
        assert report.ok
        report = lint_snippet(
            tmp_path,
            "bench/x.py",
            "async def handler(self, path):\n"
            "    self.tracer.dump(path)\n",
        )
        assert report.ok


# ---------------------------------------------------------------------------
# pragma machinery


class TestPragmas:
    def test_justified_pragma_suppresses_and_records_why(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "parallel/x.py",
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    # repro-lint: disable=swallowed-exception -- teardown is best-effort\n"
            "    except Exception:\n"
            "        pass\n",
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].justification == "teardown is best-effort"

    def test_same_line_pragma_suppresses(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\n"
            "async def f():\n"
            "    time.sleep(0)  # repro-lint: disable=no-blocking-in-async -- test fixture\n",
        )
        assert report.ok and len(report.suppressed) == 1

    def test_pragma_without_justification_is_a_finding(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "parallel/x.py",
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    # repro-lint: disable=swallowed-exception\n"
            "    except Exception:\n"
            "        pass\n",
        )
        # The violation *is* suppressed, but the naked pragma is flagged.
        assert rules_fired(report) == {"pragma"}

    def test_unknown_rule_in_pragma_is_a_finding(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/x.py",
            "x = 1  # repro-lint: disable=no-such-rule -- oops\n",
        )
        assert rules_fired(report) == {"pragma"}
        assert "no-such-rule" in report.findings[0].message

    def test_pragma_findings_cannot_be_self_suppressed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/x.py",
            "x = 1  # repro-lint: disable=pragma,no-such-rule -- nice try\n",
        )
        assert rules_fired(report) == {"pragma"}

    def test_pragma_only_suppresses_named_rules(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\n"
            "async def f():\n"
            "    time.sleep(0)  # repro-lint: disable=ckey-layout -- wrong rule\n",
        )
        assert rules_fired(report) == {"no-blocking-in-async"}

    def test_pragma_inside_string_literal_is_inert(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "data/x.py",
            'DOC = "# repro-lint: disable=bogus-rule"\n',
        )
        assert report.ok


# ---------------------------------------------------------------------------
# runner, reporters, CLI


class TestRunnerAndReporters:
    def test_parse_failure_is_an_unsuppressable_finding(self, tmp_path):
        report = lint_snippet(tmp_path, "data/x.py", "def broken(:\n")
        assert rules_fired(report) == {"parse"}

    def test_select_restricts_rules(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\n"
            "async def f(ckey):\n"
            "    time.sleep(0)\n"
            "    return ckey[0]\n",
            select=["ckey-layout"],
        )
        assert rules_fired(report) == {"ckey-layout"}

    def test_select_unknown_rule_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_snippet(tmp_path, "data/x.py", "x = 1\n", select=["nope"])

    def test_json_report_shape(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\n"
            "async def f():\n"
            "    time.sleep(0)\n",
        )
        out = report.write_json(tmp_path / "deep" / "nested" / "lint.json")
        data = json.loads(out.read_text())
        assert data["ok"] is False
        assert data["summary"]["findings"] == 1
        (finding,) = data["findings"]
        assert finding["rule"] == "no-blocking-in-async"
        assert finding["line"] == 3
        assert {r["name"] for r in data["rules"]} == set(ALL_RULES)

    def test_cli_exit_codes_and_json(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "repro" / "serve" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nasync def f():\n    time.sleep(0)\n")
        json_path = tmp_path / "out" / "report.json"
        assert lint_main([str(tmp_path), "--json", str(json_path)]) == 1
        assert json.loads(json_path.read_text())["ok"] is False
        bad.write_text("import asyncio\nasync def f():\n    await asyncio.sleep(0)\n")
        assert lint_main([str(tmp_path)]) == 0
        assert lint_main([str(tmp_path), "--select", "definitely-not-a-rule"]) == 2
        capsys.readouterr()

    def test_json_schema_version_is_2_with_stats(self, tmp_path):
        report = lint_snippet(tmp_path, "data/x.py", "x = 1\n")
        data = report.to_dict()
        assert data["schema_version"] == 2
        assert "baselined" in data and data["baselined"] == []
        assert data["summary"]["baselined"] == 0
        assert "rule_seconds" in data["stats"]
        assert set(data["stats"]["rule_seconds"]) == set(ALL_RULES)

    def test_baseline_suppresses_recorded_findings(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\nasync def f():\n    time.sleep(0)\n",
        )
        assert not report.ok
        triples = [(f.rule, f.path, f.message) for f in report.findings]
        again = run_lint([tmp_path], baseline=triples)
        assert again.ok
        assert len(again.baselined) == len(triples)
        assert again.to_dict()["summary"]["baselined"] == len(triples)

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\nasync def f():\n    time.sleep(0)\n",
        )
        triples = [(f.rule, f.path, f.message) for f in report.findings]
        # a second, different violation appears after the baseline was cut
        (tmp_path / "repro" / "serve" / "y.py").write_text(
            "import time\nasync def g():\n    time.sleep(1)\n"
        )
        again = run_lint([tmp_path], baseline=triples)
        assert not again.ok
        assert len(again.baselined) == len(triples)
        assert all(f.path.endswith("repro/serve/y.py") for f in again.findings)

    def test_sarif_shape(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\nasync def f():\n    time.sleep(0)\n",
        )
        out = report.write_sarif(tmp_path / "out" / "lint.sarif")
        sarif = json.loads(out.read_text())
        assert sarif["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in sarif["$schema"]
        (run,) = sarif["runs"]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(
            ALL_RULES
        )
        (result,) = run["results"]
        assert result["ruleId"] == "no-blocking-in-async"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("repro/serve/x.py")
        assert location["region"]["startLine"] == 3

    def test_sarif_marks_suppressed_findings(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            "serve/x.py",
            "import time\n"
            "async def f():\n"
            "    time.sleep(0)  # repro-lint: disable=no-blocking-in-async"
            " -- fixture\n",
        )
        assert report.ok
        (result,) = report.to_sarif()["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "inSource"
        assert result["suppressions"][0]["justification"] == "fixture"

    def test_cli_empty_select_exits_2(self, tmp_path, capsys):
        (tmp_path / "x.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--select", ","]) == 2
        assert "named no rules" in capsys.readouterr().err

    def test_cli_stats_baseline_sarif_and_cache(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "serve" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nasync def f():\n    time.sleep(0)\n")
        json_path = tmp_path / "out" / "report.json"
        sarif_path = tmp_path / "out" / "report.sarif"
        cache_dir = tmp_path / "cache"
        code = lint_main(
            [str(tmp_path / "repro"), "--stats", "--json", str(json_path),
             "--sarif", str(sarif_path), "--cache", str(cache_dir)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "stats:" in out and "call_edges=" in out
        assert json.loads(sarif_path.read_text())["version"] == "2.1.0"
        assert list(cache_dir.glob("lint-cache-*.pickle"))
        # second run hits the cache and honors the baseline
        code = lint_main(
            [str(tmp_path / "repro"), "--baseline", str(json_path),
             "--cache", str(cache_dir)]
        )
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_cli_unreadable_baseline_exits_2(self, tmp_path, capsys):
        (tmp_path / "x.py").write_text("x = 1\n")
        missing = tmp_path / "nope.json"
        assert lint_main([str(tmp_path), "--baseline", str(missing)]) == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ALL_RULES:
            assert name in out
        assert "unsuppressable" in out

    def test_module_entry_point(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "coordinator-only" in proc.stdout


# ---------------------------------------------------------------------------
# the tree itself


class TestTreeIsClean:
    def test_src_repro_lints_clean(self):
        report = run_lint([SRC / "repro"])
        assert report.ok, "\n" + "\n".join(f.format() for f in report.findings)

    def test_every_shipped_pragma_is_justified(self):
        report = run_lint([SRC / "repro"])
        assert all(f.justification for f in report.suppressed)

    def test_linter_lints_itself(self):
        """Tier-1 self-check: the tool cannot rot silently."""
        report = run_lint([SRC / "repro" / "lint"])
        assert report.ok, "\n" + "\n".join(f.format() for f in report.findings)
        assert report.files_checked >= 5

    def test_unsuppressable_set_matches_registry(self):
        assert UNSUPPRESSABLE <= set(ALL_RULES)
        assert "parse" in UNSUPPRESSABLE and "pragma" in UNSUPPRESSABLE
