"""GRMiner behaviour on the Fig. 1 toy network."""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.miner import GRMiner, mine_top_k


class TestBasicMining:
    def test_gr4_is_found_with_perfect_nhp(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.9, k=None).mine()
        gr4 = GR(
            Descriptor({"SEX": "F", "EDU": "Grad"}),
            Descriptor({"SEX": "M", "EDU": "College"}),
            Descriptor({"TYPE": "dates"}),
        )
        # GR4 itself is blocked by its generalization without the edge
        # descriptor / SEX on RHS; some generalization of it must appear.
        found = [m for m in result if m.metrics.nhp == pytest.approx(1.0)]
        assert found
        assert any(
            m.gr.rhs.get("EDU") == "College" and m.gr.lhs.get("EDU") == "Grad"
            for m in found
        )

    def test_trivial_grs_never_output(self, toy_network):
        result = GRMiner(toy_network, min_support=1, min_score=0.0, k=None).mine()
        schema = toy_network.schema
        assert all(not m.gr.is_trivial(schema) for m in result)

    def test_results_sorted_by_rank(self, toy_network):
        result = GRMiner(toy_network, min_support=1, min_score=0.0, k=None).mine()
        keys = [(-m.score, -m.metrics.support_count, m.gr.sort_key()) for m in result]
        assert keys == sorted(keys)

    def test_all_results_meet_thresholds(self, toy_network):
        result = GRMiner(toy_network, min_support=3, min_score=0.6, k=None).mine()
        for m in result:
            assert m.metrics.support_count >= 3
            assert m.score >= 0.6

    def test_results_are_maximally_general(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=None).mine()
        identities = {(m.gr.lhs, m.gr.edge, m.gr.rhs) for m in result}
        for m in result:
            for g in m.gr.generalizations():
                assert (g.lhs, g.edge, g.rhs) not in identities

    def test_empty_lhs_excluded_by_default(self, toy_network):
        result = GRMiner(toy_network, min_support=1, min_score=0.0, k=None).mine()
        assert all(len(m.gr.lhs) > 0 for m in result)

    def test_empty_lhs_admitted_when_allowed(self, toy_network):
        result = GRMiner(
            toy_network, min_support=1, min_score=0.0, k=None, allow_empty_lhs=True
        ).mine()
        assert any(len(m.gr.lhs) == 0 for m in result)

    def test_metrics_agree_with_direct_evaluation(self, toy_network):
        from repro.core.metrics import MetricEngine

        engine = MetricEngine(toy_network)
        result = GRMiner(toy_network, min_support=1, min_score=0.3, k=None).mine()
        for m in result:
            direct = engine.evaluate(m.gr)
            assert direct.support_count == m.metrics.support_count
            assert direct.lw_count == m.metrics.lw_count
            assert direct.homophily_count == m.metrics.homophily_count
            assert direct.nhp == pytest.approx(m.metrics.nhp)


class TestParameters:
    def test_fractional_min_support(self, toy_network):
        # 0.1 of 30 edges = 3.
        miner = GRMiner(toy_network, min_support=0.1)
        assert miner.abs_min_support == 3

    def test_absolute_min_support(self, toy_network):
        assert GRMiner(toy_network, min_support=5).abs_min_support == 5

    def test_zero_min_support_clamped_to_one(self, toy_network):
        assert GRMiner(toy_network, min_support=0).abs_min_support == 1

    def test_invalid_min_support_rejected(self, toy_network):
        with pytest.raises(ValueError):
            GRMiner(toy_network, min_support=1.5)
        with pytest.raises(ValueError):
            GRMiner(toy_network, min_support=-2)
        with pytest.raises(ValueError):
            GRMiner(toy_network, min_support=True)

    def test_invalid_rank_by_rejected(self, toy_network):
        with pytest.raises(ValueError, match="rank_by"):
            GRMiner(toy_network, rank_by="lift")

    def test_invalid_min_score_rejected(self, toy_network):
        with pytest.raises(ValueError):
            GRMiner(toy_network, min_score=1.5)

    def test_gain_allows_negative_threshold(self, toy_network):
        GRMiner(toy_network, rank_by="gain", min_score=-0.5)  # no raise

    def test_laplace_k_validated(self, toy_network):
        with pytest.raises(ValueError, match="laplace_k"):
            GRMiner(toy_network, laplace_k=1)

    def test_node_attribute_restriction(self, toy_network):
        result = GRMiner(
            toy_network, min_support=1, min_score=0.0, k=None, node_attributes=["SEX"]
        ).mine()
        used = {
            name for m in result for name, _ in tuple(m.gr.lhs) + tuple(m.gr.rhs)
        }
        assert used <= {"SEX"}

    def test_descriptor_length_caps(self, toy_network):
        result = GRMiner(
            toy_network,
            min_support=1,
            min_score=0.0,
            k=None,
            max_lhs_attrs=1,
            max_rhs_attrs=1,
        ).mine()
        assert all(len(m.gr.lhs) <= 1 and len(m.gr.rhs) <= 1 for m in result)

    def test_params_echoed_in_result(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=7).mine()
        assert result.params["k"] == 7
        assert result.params["abs_min_support"] == 2


class TestStats:
    def test_stats_populated(self, toy_network):
        result = GRMiner(toy_network, min_support=2, min_score=0.5, k=None).mine()
        stats = result.stats
        assert stats.grs_examined > 0
        assert stats.lw_nodes > 0
        assert stats.candidates >= len(result)
        assert stats.runtime_seconds > 0

    def test_nhp_pruning_reduces_work(self, toy_network):
        strict = GRMiner(toy_network, min_support=1, min_score=0.9, k=None).mine()
        loose = GRMiner(toy_network, min_support=1, min_score=0.0, k=None).mine()
        assert strict.stats.grs_examined <= loose.stats.grs_examined

    def test_pruning_disabled_examines_more(self, toy_network):
        pruned = GRMiner(toy_network, min_support=1, min_score=0.8, k=None).mine()
        unpruned = GRMiner(
            toy_network,
            min_support=1,
            min_score=0.8,
            k=None,
            push_score_pruning=False,
        ).mine()
        assert unpruned.stats.grs_examined >= pruned.stats.grs_examined
        # Same output either way: pruning is lossless (Theorem 3).
        assert [(str(a.gr), a.score) for a in pruned] == [
            (str(b.gr), b.score) for b in unpruned
        ]


class TestMineTopK:
    def test_wrapper_defaults(self, toy_network):
        result = mine_top_k(toy_network, k=5, min_support=2, min_nhp=0.5)
        assert len(result) <= 5
        assert all(m.metrics.nhp >= 0.5 for m in result)

    def test_result_container_api(self, toy_network):
        result = mine_top_k(toy_network, k=5, min_support=2, min_nhp=0.5)
        assert len(result.top(2)) <= 2
        assert result.find(result[0].gr) is result[0]
        missing = GR(Descriptor({"SEX": "F"}), Descriptor({"RACE": "Asian"}))
        assert result.find(missing) is None or str(result.find(missing).gr) == str(missing)
        assert "MiningResult" in str(result)
