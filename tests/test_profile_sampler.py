"""The profile-driven generation primitives behind the synthetic datasets."""

import numpy as np
import pytest

from repro.datasets._profile_sampler import (
    ProfilePool,
    draw_conditional,
    normalize_rows,
)


class TestNormalizeRows:
    def test_rows_sum_to_one(self):
        matrix = normalize_rows(np.array([[1.0, 3.0], [2.0, 2.0]]))
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_rows(np.array([[1.0, -0.5]]))

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            normalize_rows(np.array([[0.0, 0.0]]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            normalize_rows(np.array([1.0, 2.0]))


class TestDrawConditional:
    def test_deterministic_rows(self):
        rng = np.random.default_rng(0)
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        given = np.array([0, 1, 0, 1])
        drawn = draw_conditional(rng, matrix, given)
        assert list(drawn) == [0, 1, 0, 1]

    def test_distribution_converges(self):
        rng = np.random.default_rng(1)
        matrix = np.array([[0.2, 0.8]])
        drawn = draw_conditional(rng, matrix, np.zeros(20_000, dtype=int))
        assert drawn.mean() == pytest.approx(0.8, abs=0.02)

    def test_conditional_rows_respected(self):
        rng = np.random.default_rng(2)
        matrix = np.array([[0.9, 0.1], [0.1, 0.9]])
        given = np.repeat([0, 1], 10_000)
        drawn = draw_conditional(rng, matrix, given)
        assert drawn[:10_000].mean() == pytest.approx(0.1, abs=0.02)
        assert drawn[10_000:].mean() == pytest.approx(0.9, abs=0.02)


class TestProfilePool:
    def test_seed_nodes_get_sequential_indices(self):
        pool = ProfilePool(np.random.default_rng(0), mean_in_degree=4)
        ids = pool.add_seed_nodes(np.array([[1, 2], [3, 4]]))
        assert list(ids) == [0, 1]
        assert pool.profiles == [(1, 2), (3, 4)]

    def test_resolve_returns_nodes_with_exact_profile(self):
        pool = ProfilePool(np.random.default_rng(0), mean_in_degree=4)
        profiles = np.array([[1, 1], [2, 2], [1, 1], [1, 1]])
        ids = pool.resolve(profiles)
        for row, node in zip(profiles, ids):
            assert pool.profiles[node] == tuple(row)

    def test_mean_in_degree_controls_reuse(self):
        rng = np.random.default_rng(3)
        pool = ProfilePool(rng, mean_in_degree=10)
        profiles = np.tile(np.array([[1, 1]]), (5000, 1))
        ids = pool.resolve(profiles)
        distinct = len(set(int(i) for i in ids))
        assert distinct == pytest.approx(500, rel=0.3)

    def test_per_edge_create_probability(self):
        rng = np.random.default_rng(4)
        pool = ProfilePool(rng, mean_in_degree=2)
        profiles = np.tile(np.array([[7, 7]]), (4000, 1))
        hub_ids = pool.resolve(profiles, create_probability=np.full(4000, 0.01))
        assert len(set(int(i) for i in hub_ids)) < 120  # hubs, not 2000 nodes

    def test_mean_in_degree_validated(self):
        with pytest.raises(ValueError):
            ProfilePool(np.random.default_rng(0), mean_in_degree=0.5)

    def test_node_columns_shape(self):
        pool = ProfilePool(np.random.default_rng(0))
        pool.add_seed_nodes(np.array([[1, 2, 3], [4, 5, 6]]))
        columns = pool.node_columns(3)
        assert len(columns) == 3
        assert list(columns[1]) == [2, 5]

    def test_node_columns_empty_pool(self):
        pool = ProfilePool(np.random.default_rng(0))
        columns = pool.node_columns(2)
        assert all(col.size == 0 for col in columns)
