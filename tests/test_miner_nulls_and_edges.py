"""Edge cases: null attribute values, edge descriptors, degenerate inputs."""

import numpy as np
import pytest

from repro.core.bruteforce import BruteForceMiner
from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.core.miner import GRMiner
from repro.data.network import SocialNetwork
from repro.data.schema import Attribute, Schema
from repro.datasets.random_graphs import random_attributed_network, random_schema


class TestNullHandling:
    def test_nulls_never_satisfy_descriptors(self, small_network):
        engine = MetricEngine(small_network)
        # Node 5 has null A; edges from node 5 must not match any (A:x).
        for value in ("a1", "a2"):
            mask = engine.lhs_mask(Descriptor({"A": value}))
            edges_from_5 = small_network.src == 5
            assert not (mask & edges_from_5).any()

    def test_null_heavy_network_still_exact(self):
        network = random_attributed_network(
            num_nodes=20, num_edges=80, null_fraction=0.4, seed=77
        )
        mined = GRMiner(network, k=None, min_support=1, min_score=0.0).mine()
        reference = BruteForceMiner(network, k=None, min_support=1, min_score=0.0).mine()
        assert [(str(a.gr), a.score) for a in mined] == [
            (str(b.gr), b.score) for b in reference
        ]

    def test_all_null_attribute_yields_no_grs_on_it(self):
        schema = Schema([Attribute("A", ("x",)), Attribute("B", ("y", "z"))])
        network = SocialNetwork(
            schema,
            {"A": np.zeros(4, dtype=int), "B": np.array([1, 2, 1, 2])},
            np.array([0, 1, 2]),
            np.array([1, 2, 3]),
        )
        result = GRMiner(network, k=None, min_support=1, min_score=0.0).mine()
        used = {name for m in result for name, _ in tuple(m.gr.lhs) + tuple(m.gr.rhs)}
        assert "A" not in used


class TestEdgeDescriptors:
    def test_edge_attribute_participates_in_grs(self):
        schema = random_schema(num_node_attrs=2, num_edge_attrs=1, seed=8)
        network = random_attributed_network(schema, num_nodes=20, num_edges=150, seed=8)
        # A threshold matters here: at min_score 0 every `l -> r` is a
        # qualifying blocker, so no `l -w-> r` can ever be maximal.
        result = GRMiner(network, k=None, min_support=2, min_score=0.5).mine()
        assert any(m.gr.edge for m in result)

    def test_edge_descriptor_grs_blocked_at_zero_threshold(self):
        schema = random_schema(num_node_attrs=2, num_edge_attrs=1, seed=8)
        network = random_attributed_network(schema, num_nodes=20, num_edges=150, seed=8)
        result = GRMiner(network, k=None, min_support=1, min_score=0.0).mine()
        assert all(not m.gr.edge for m in result)

    def test_schema_without_edge_attributes(self):
        schema = Schema([Attribute("A", ("x", "y"))])
        network = SocialNetwork(
            schema,
            {"A": np.array([1, 2, 1, 2])},
            np.array([0, 1, 2, 3]),
            np.array([1, 2, 3, 0]),
        )
        result = GRMiner(network, k=None, min_support=1, min_score=0.0).mine()
        assert all(not m.gr.edge for m in result)
        reference = BruteForceMiner(network, k=None, min_support=1, min_score=0.0).mine()
        assert [str(m.gr) for m in result] == [str(m.gr) for m in reference]


class TestDegenerateInputs:
    def test_single_edge_network(self):
        schema = Schema([Attribute("A", ("x", "y"))])
        network = SocialNetwork(
            schema, {"A": np.array([1, 2])}, np.array([0]), np.array([1])
        )
        result = GRMiner(network, k=None, min_support=1, min_score=0.0).mine()
        assert any(
            m.gr.lhs == Descriptor({"A": "x"}) and m.gr.rhs == Descriptor({"A": "y"})
            for m in result
        )

    def test_network_with_no_edges(self):
        schema = Schema([Attribute("A", ("x",))])
        network = SocialNetwork(
            schema,
            {"A": np.array([1, 1])},
            np.array([], dtype=int),
            np.array([], dtype=int),
        )
        result = GRMiner(network, k=5, min_support=1, min_score=0.0).mine()
        assert len(result) == 0

    def test_self_loops_counted_normally(self):
        schema = Schema([Attribute("A", ("x", "y"))])
        network = SocialNetwork(
            schema, {"A": np.array([1, 2])}, np.array([0, 0]), np.array([0, 1])
        )
        engine = MetricEngine(network)
        gr = GR(Descriptor({"A": "x"}), Descriptor({"A": "x"}))
        assert engine.evaluate(gr).support_count == 1

    def test_k_larger_than_result_set(self, toy_network):
        result = GRMiner(toy_network, k=100_000, min_support=2, min_score=0.5).mine()
        exact = GRMiner(
            toy_network, k=None, min_support=2, min_score=0.5
        ).mine()
        assert len(result) == len(exact)

    def test_min_score_one_keeps_only_perfect_grs(self, toy_network):
        result = GRMiner(toy_network, k=None, min_support=1, min_score=1.0).mine()
        assert result
        assert all(m.score == pytest.approx(1.0) for m in result)

    def test_min_support_above_edge_count_empty(self, toy_network):
        result = GRMiner(toy_network, k=None, min_support=1000, min_score=0.0).mine()
        assert len(result) == 0


class TestVerifyGeneralityPass:
    def test_verified_entries_are_maximal(self, toy_network):
        """Theorem 4-style guarantee after the DESIGN §5.5 post-pass."""
        result = GRMiner(toy_network, k=10, min_support=2, min_score=0.5).mine()
        engine = MetricEngine(toy_network)
        for mined in result:
            for general in mined.gr.generalizations():
                if not general.lhs or general.is_trivial(toy_network.schema):
                    continue
                metrics = engine.evaluate(general)
                blocked = metrics.support_count >= 2 and metrics.nhp >= 0.5
                assert not blocked, f"{mined.gr} blocked by {general}"

    def test_unverified_variant_may_contain_redundant_entries(self, toy_network):
        raw = GRMiner(
            toy_network, k=5, min_support=2, min_score=0.5, verify_generality=False
        ).mine()
        verified = GRMiner(
            toy_network, k=5, min_support=2, min_score=0.5, verify_generality=True
        ).mine()
        assert len(verified) <= len(raw)


class TestTheorem4:
    def test_no_nontrivial_gr_below_thresholds_examined_needlessly(self, toy_network):
        """Theorem 4(2) consequence: raising minNhp strictly shrinks the
        candidate set and never the result's correctness."""
        low = GRMiner(toy_network, k=None, min_support=2, min_score=0.3).mine()
        high = GRMiner(toy_network, k=None, min_support=2, min_score=0.7).mine()
        low_set = {str(m.gr) for m in low if m.score >= 0.7}
        high_set = {str(m.gr) for m in high}
        # Every GR qualifying at the high threshold appears in the low run.
        assert high_set <= {str(m.gr) for m in low} | high_set
        # And the high run finds exactly the low run's >= 0.7 subset, up to
        # generality interactions (blockers below 0.7 disappear).
        assert high_set >= low_set
