"""Unit tests for repro.data.network."""

import numpy as np
import pytest

from repro.data.network import NetworkError, SocialNetwork
from repro.data.schema import Attribute, Schema


class TestConstruction:
    def test_sizes(self, small_network):
        assert small_network.num_nodes == 6
        assert small_network.num_edges == 8

    def test_node_column_contents(self, small_network):
        a = small_network.node_column("A")
        assert list(a) == [1, 1, 2, 2, 1, 0]  # node 5 has null A

    def test_edge_column_contents(self, small_network):
        w = small_network.edge_column("W")
        assert list(w) == [1, 1, 2, 1, 2, 1, 2, 0]

    def test_missing_node_column_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="node attribute columns"):
            SocialNetwork(
                small_schema,
                {"A": np.array([1])},
                np.array([0]),
                np.array([0]),
                {"W": np.array([1])},
            )

    def test_extra_edge_column_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="edge attribute columns"):
            SocialNetwork(
                small_schema,
                {"A": np.array([1]), "B": np.array([1])},
                np.array([0]),
                np.array([0]),
                {"W": np.array([1]), "Q": np.array([1])},
            )

    def test_endpoint_out_of_range_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="out of range"):
            SocialNetwork(
                small_schema,
                {"A": np.array([1]), "B": np.array([1])},
                np.array([0]),
                np.array([5]),
                {"W": np.array([1])},
            )

    def test_code_out_of_domain_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="codes outside"):
            SocialNetwork(
                small_schema,
                {"A": np.array([9]), "B": np.array([1])},
                np.array([0]),
                np.array([0]),
                {"W": np.array([1])},
            )

    def test_mixed_column_lengths_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="mixed lengths"):
            SocialNetwork(
                small_schema,
                {"A": np.array([1, 1]), "B": np.array([1])},
                np.array([0]),
                np.array([0]),
                {"W": np.array([1])},
            )

    def test_from_records_duplicate_node_ids_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="duplicate"):
            SocialNetwork.from_records(
                small_schema, [(1, {}), (1, {})], []
            )

    def test_from_records_unknown_endpoint_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="not a node"):
            SocialNetwork.from_records(small_schema, {1: {}}, [(1, 2)])

    def test_from_records_bad_edge_tuple_rejected(self, small_schema):
        with pytest.raises(NetworkError, match="bad edge"):
            SocialNetwork.from_records(small_schema, {1: {}}, [(1,)])

    def test_node_ids_preserved(self, small_network):
        assert small_network.node_ids == (0, 1, 2, 3, 4, 5)

    def test_node_ids_length_checked(self, small_schema):
        with pytest.raises(NetworkError, match="node ids"):
            SocialNetwork(
                small_schema,
                {"A": np.array([1]), "B": np.array([1])},
                np.array([], dtype=int),
                np.array([], dtype=int),
                {"W": np.array([], dtype=int)},
                node_ids=["x", "y"],
            )


class TestAccessors:
    def test_source_values_gather(self, small_network):
        assert list(small_network.source_values("A")) == [1, 1, 1, 1, 2, 2, 1, 0]

    def test_dest_values_gather(self, small_network):
        assert list(small_network.dest_values("A")) == [1, 2, 2, 2, 2, 1, 0, 1]

    def test_node_record_decodes_labels(self, small_network):
        assert small_network.node_record(0) == {"A": "a1", "B": "b1"}
        assert small_network.node_record(4) == {"A": "a1"}  # null B omitted

    def test_edge_record_decodes_labels(self, small_network):
        assert small_network.edge_record(0) == {"W": "w1"}
        assert small_network.edge_record(7) == {}

    def test_degrees(self, small_network):
        assert list(small_network.out_degrees()) == [2, 2, 1, 1, 1, 1]
        assert list(small_network.in_degrees()) == [1, 1, 2, 2, 1, 1]
        assert int(small_network.out_degrees().sum()) == small_network.num_edges
        assert int(small_network.in_degrees().sum()) == small_network.num_edges


class TestDerivation:
    def test_reciprocal_doubles_edges(self, small_network):
        doubled = small_network.with_reciprocal_edges()
        assert doubled.num_edges == 2 * small_network.num_edges
        # The second half is the reverse of the first.
        n = small_network.num_edges
        assert list(doubled.src[n:]) == list(small_network.dst)
        assert list(doubled.dst[n:]) == list(small_network.src)

    def test_reciprocal_copies_edge_attributes(self, small_network):
        doubled = small_network.with_reciprocal_edges()
        n = small_network.num_edges
        assert list(doubled.edge_column("W")[:n]) == list(doubled.edge_column("W")[n:])

    def test_restrict_node_attributes(self, small_network):
        restricted = small_network.restrict_node_attributes(["B"])
        assert restricted.schema.node_attribute_names == ("B",)
        assert restricted.num_edges == small_network.num_edges
        assert list(restricted.node_column("B")) == list(small_network.node_column("B"))

    def test_with_homophily(self, small_network):
        derived = small_network.with_homophily(["B"])
        assert derived.schema.homophily_attribute_names == ("B",)
        # Data unchanged.
        assert list(derived.node_column("A")) == list(small_network.node_column("A"))

    def test_repr_mentions_sizes(self, small_network):
        text = repr(small_network)
        assert "|V|=6" in text and "|E|=8" in text


class TestToyNetwork:
    def test_toy_shape_matches_paper(self, toy_network):
        assert toy_network.num_nodes == 14
        assert toy_network.num_edges == 30  # 15 undirected links

    def test_toy_attribute_table_matches_figure(self, toy_network):
        from repro.datasets.toy import TOY_NODES

        for index, node_id in enumerate(toy_network.node_ids):
            assert toy_network.node_record(index) == TOY_NODES[node_id]

    def test_every_toy_node_has_a_link(self, toy_network):
        degrees = toy_network.out_degrees() + toy_network.in_degrees()
        assert (degrees > 0).all()


class TestAppendEdges:
    """In-place append-edge deltas (the hub's mutable-network primitive)."""

    def test_appends_edges_and_codes(self, small_network):
        before = small_network.num_edges
        appended = small_network.append_edges(
            [0, 2], [3, 5], {"W": np.array([1, 2])}
        )
        assert appended == 2
        assert small_network.num_edges == before + 2
        assert list(small_network.src[-2:]) == [0, 2]
        assert list(small_network.dst[-2:]) == [3, 5]
        assert list(small_network.edge_column("W")[-2:]) == [1, 2]
        # The node side is untouched.
        assert small_network.num_nodes == 6

    def test_empty_delta_is_a_noop(self, small_network):
        before = small_network.num_edges
        assert small_network.append_edges([], [], {"W": []}) == 0
        assert small_network.num_edges == before

    def test_bad_batches_leave_the_network_untouched(self, small_network):
        before = small_network.num_edges
        with pytest.raises(NetworkError, match="out of range"):
            small_network.append_edges([0], [99], {"W": [1]})
        with pytest.raises(NetworkError, match="edge attribute columns"):
            small_network.append_edges([0], [1], {})  # W missing
        with pytest.raises(NetworkError, match="edge attribute columns"):
            small_network.append_edges([0], [1], {"W": [1], "Q": [1]})
        with pytest.raises(NetworkError, match="codes outside"):
            small_network.append_edges([0], [1], {"W": [99]})
        with pytest.raises(NetworkError, match="has 2 entries"):
            small_network.append_edges([0], [1], {"W": [1, 2]})
        with pytest.raises(NetworkError, match="equal length"):
            small_network.append_edges([0, 1], [2], {"W": [1]})
        assert small_network.num_edges == before

    def test_appended_edges_reach_the_miners(self, small_network):
        from repro.core.miner import GRMiner

        base = GRMiner(small_network, k=5, min_support=1).mine()
        # Duplicate the densest relationship a few times: supports grow.
        small_network.append_edges(
            [0, 0, 0], [1, 1, 1], {"W": np.array([1, 1, 1])}
        )
        grown = GRMiner(small_network, k=5, min_support=1).mine()
        assert grown.params["abs_min_support"] == base.params["abs_min_support"]
        assert max(m.metrics.support_count for m in grown) >= max(
            m.metrics.support_count for m in base
        )


class TestDuplicateSemantics:
    """``append_edges`` duplicate-edge policy (``on_duplicate``)."""

    def test_multigraph_by_default(self, small_network):
        # Edge (0, 1, W=w1) already exists; appending it again is legal
        # and every instance counts once toward support.
        before = small_network.num_edges
        assert small_network.append_edges([0], [1], {"W": [1]}) == 1
        assert small_network.num_edges == before + 1

    def test_reject_refuses_existing_duplicates(self, small_network):
        before = small_network.num_edges
        with pytest.raises(NetworkError, match="duplicate"):
            small_network.append_edges(
                [0], [1], {"W": [1]}, on_duplicate="reject"
            )
        assert small_network.num_edges == before

    def test_reject_refuses_within_batch_duplicates(self, small_network):
        before = small_network.num_edges
        with pytest.raises(NetworkError, match="duplicate"):
            small_network.append_edges(
                [0, 0], [3, 3], {"W": [2, 2]}, on_duplicate="reject"
            )
        # All-or-nothing: the non-duplicate first row was not applied.
        assert small_network.num_edges == before

    def test_reject_identity_includes_edge_attributes(self, small_network):
        # Same endpoints as an existing edge but a different W label is
        # a distinct edge, not a duplicate.
        assert small_network.append_edges(
            [0], [1], {"W": [2]}, on_duplicate="reject"
        ) == 1

    def test_self_loops_are_legal_under_either_policy(self, small_network):
        assert small_network.append_edges([2], [2], {"W": [1]}) == 1
        assert small_network.append_edges(
            [3], [3], {"W": [1]}, on_duplicate="reject"
        ) == 1
        # ... but a *duplicate* self-loop is still rejected.
        with pytest.raises(NetworkError, match="duplicate"):
            small_network.append_edges(
                [3], [3], {"W": [1]}, on_duplicate="reject"
            )

    def test_unknown_policy_rejected(self, small_network):
        with pytest.raises(ValueError, match="on_duplicate"):
            small_network.append_edges([0], [1], {"W": [1]}, on_duplicate="drop")
