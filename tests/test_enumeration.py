"""Tests for the SFDF enumeration order (Section IV-C)."""

import pytest

from repro.core.enumeration import (
    Token,
    dynamic_rhs_order,
    iter_subsets_sfdf,
    static_tau,
)
from repro.data.schema import Attribute, Schema


@pytest.fixture
def two_homophily_schema():
    """The paper's running example: A and B both homophilous, one W."""
    return Schema(
        node_attributes=[
            Attribute("A", ("a1", "a2"), homophily=True),
            Attribute("B", ("b1", "b2"), homophily=True),
        ],
        edge_attributes=[Attribute("W", ("w1",))],
    )


class TestToken:
    def test_roles_validated(self):
        with pytest.raises(ValueError):
            Token("X", "A")

    def test_str(self):
        assert str(Token("L", "A")) == "A^l"
        assert str(Token("R", "A")) == "A^r"
        assert str(Token("W", "S")) == "S"


class TestStaticTau:
    def test_group_order_matches_eqn7(self, two_homophily_schema):
        tau = static_tau(two_homophily_schema)
        # NH^r (none), H^r, W, NH^l (none), H^l
        assert [(t.role, t.attr) for t in tau] == [
            ("R", "A"),
            ("R", "B"),
            ("W", "W"),
            ("L", "A"),
            ("L", "B"),
        ]

    def test_non_homophily_before_homophily(self):
        schema = Schema(
            node_attributes=[
                Attribute("H", ("x",), homophily=True),
                Attribute("N", ("x",)),
            ]
        )
        tau = static_tau(schema)
        roles = [(t.role, t.attr) for t in tau]
        assert roles == [("R", "N"), ("R", "H"), ("L", "N"), ("L", "H")]

    def test_restriction_to_node_attributes(self, two_homophily_schema):
        tau = static_tau(two_homophily_schema, node_attributes=["B"])
        assert {t.attr for t in tau if t.role in "LR"} == {"B"}

    def test_unknown_restriction_raises(self, two_homophily_schema):
        with pytest.raises(Exception):
            static_tau(two_homophily_schema, node_attributes=["Z"])


class TestDynamicRHSOrder:
    def test_partitioning_into_nh_h1_h2(self):
        schema = Schema(
            node_attributes=[
                Attribute("A", ("x",), homophily=True),
                Attribute("B", ("x",), homophily=True),
                Attribute("N", ("x",)),
            ]
        )
        tokens = [Token("R", "A"), Token("R", "B"), Token("R", "N")]
        # B is on the LHS -> B is H^r_2 and must come last.
        ordered = dynamic_rhs_order(tokens, ["B"], schema)
        assert [t.attr for t in ordered] == ["N", "A", "B"]

    def test_no_lhs_means_all_h1(self):
        schema = Schema(
            node_attributes=[
                Attribute("A", ("x",), homophily=True),
                Attribute("B", ("x",), homophily=True),
            ]
        )
        tokens = [Token("R", "A"), Token("R", "B")]
        ordered = dynamic_rhs_order(tokens, [], schema)
        assert [t.attr for t in ordered] == ["A", "B"]

    def test_rejects_non_rhs_tokens(self, two_homophily_schema):
        with pytest.raises(ValueError):
            dynamic_rhs_order([Token("L", "A")], [], two_homophily_schema)

    def test_paper_example_t8(self, two_homophily_schema):
        """At t8 (path = {B^l}) the tail (B^r, A^r) reorders to (A^r, B^r)."""
        ordered = dynamic_rhs_order(
            [Token("R", "B"), Token("R", "A")], ["B"], two_homophily_schema
        )
        assert [t.attr for t in ordered] == ["A", "B"]


class TestSFDFWalk:
    def test_matches_fig3_prefix(self, two_homophily_schema):
        """The first seven visited subsets match Fig. 3's t1..t7."""
        # Fig. 3 uses tau = (B^r, A^r, W, B^l, A^l); our schema order
        # gives (A^r, B^r, W, A^l, B^l) — same structure, A/B swapped.
        tau = static_tau(two_homophily_schema)
        visited = iter_subsets_sfdf(tau)
        names = [tuple(str(t) for t in path) for path in visited[:7]]
        assert names == [
            ("A^r",),
            ("B^r",),
            ("B^r", "A^r"),
            ("W",),
            ("W", "A^r"),
            ("W", "B^r"),
            ("W", "B^r", "A^r"),
        ]

    def test_every_subset_exactly_once(self, two_homophily_schema):
        tau = static_tau(two_homophily_schema)
        visited = iter_subsets_sfdf(tau)
        as_sets = [frozenset(path) for path in visited]
        assert len(as_sets) == len(set(as_sets)) == 2 ** len(tau) - 1

    def test_property2_subsets_before_supersets(self, two_homophily_schema):
        tau = static_tau(two_homophily_schema)
        visited = [frozenset(path) for path in iter_subsets_sfdf(tau)]
        position = {s: i for i, s in enumerate(visited)}
        for s in visited:
            for t in visited:
                if s < t:
                    assert position[s] < position[t], (s, t)

    def test_property1_role_order_along_paths(self, two_homophily_schema):
        """Along any path: L tokens, then W tokens, then R tokens."""
        tau = static_tau(two_homophily_schema)
        rank = {"L": 0, "W": 1, "R": 2}
        for path in iter_subsets_sfdf(tau):
            ranks = [rank[t.role] for t in path]
            assert ranks == sorted(ranks), path

    def test_scales_to_more_attributes(self):
        schema = Schema(
            node_attributes=[
                Attribute(f"X{i}", ("a",), homophily=i % 2 == 0) for i in range(3)
            ],
            edge_attributes=[Attribute("W", ("w",))],
        )
        tau = static_tau(schema)
        visited = iter_subsets_sfdf(tau)
        assert len(visited) == 2 ** len(tau) - 1
