"""Unit tests for the compact LArray/EArray/RArray store (Section IV-A)."""

import numpy as np
import pytest

from repro.data.store import CompactStore
from repro.datasets.random_graphs import random_attributed_network


class TestLayout:
    def test_larray_holds_only_positive_out_degree(self, small_network):
        store = CompactStore(small_network)
        out = small_network.out_degrees()
        assert set(store.l_nodes) == set(np.flatnonzero(out > 0))

    def test_rarray_holds_only_positive_in_degree(self, small_network):
        store = CompactStore(small_network)
        indeg = small_network.in_degrees()
        assert set(store.r_nodes) == set(np.flatnonzero(indeg > 0))

    def test_out_and_ind_describe_contiguous_runs(self, small_network):
        store = CompactStore(small_network)
        # Ind must be the exclusive prefix sum of Out.
        assert store.l_ind[0] == 0
        assert list(store.l_ind[1:]) == list(np.cumsum(store.l_out)[:-1])
        assert int(store.l_out.sum()) == small_network.num_edges

    def test_out_edges_of_l_row_point_to_own_edges(self, small_network):
        store = CompactStore(small_network)
        for row in range(store.l_nodes.size):
            edges = store.out_edges_of_l_row(row)
            assert (store.e_src_row[edges] == row).all()

    def test_ptr_resolves_destinations(self, small_network):
        store = CompactStore(small_network)
        # Destination node attribute through Ptr equals the network's own gather.
        order = store.edge_order
        for name in small_network.schema.node_attribute_names:
            via_store = store.dest_codes(name)
            direct = small_network.dest_values(name)[order]
            assert list(via_store) == list(direct)

    def test_source_codes_match_network(self, small_network):
        store = CompactStore(small_network)
        order = store.edge_order
        for name in small_network.schema.node_attribute_names:
            assert list(store.source_codes(name)) == list(
                small_network.source_values(name)[order]
            )

    def test_edge_codes_match_network(self, small_network):
        store = CompactStore(small_network)
        order = store.edge_order
        for name in small_network.schema.edge_attribute_names:
            assert list(store.edge_codes(name)) == list(
                small_network.edge_column(name)[order]
            )

    def test_subset_gather(self, small_network):
        store = CompactStore(small_network)
        subset = np.array([0, 3, 5])
        assert list(store.source_codes("A", subset)) == list(
            store.source_codes("A")[subset]
        )

    def test_all_edges(self, small_network):
        store = CompactStore(small_network)
        assert list(store.all_edges()) == list(range(8))


class TestStorageClaim:
    """The Section IV-A size comparison against the single table."""

    def test_size_formula(self, small_network):
        store = CompactStore(small_network)
        n_v, n_e = 2, 1  # attributes in the small schema
        expected = (
            store.l_nodes.size * (n_v + 2)
            + small_network.num_edges * (n_e + 1)
            + store.r_nodes.size * n_v
        )
        assert store.size_cells() == expected

    def test_single_table_formula(self, small_network):
        store = CompactStore(small_network)
        assert store.single_table_size_cells() == 8 * (2 * 2 + 1)

    def test_compact_smaller_on_dense_graphs(self):
        # Dense multi-attribute network: the |E| * 2 * #AttrV term dominates.
        from repro.datasets.random_graphs import random_schema

        schema = random_schema(num_node_attrs=6, num_edge_attrs=1, seed=3)
        network = random_attributed_network(
            schema, num_nodes=50, num_edges=2000, seed=3
        )
        store = CompactStore(network)
        assert store.size_cells() < store.single_table_size_cells()

    def test_zero_degree_nodes_excluded_from_arrays(self, small_schema):
        from repro.data.network import SocialNetwork

        network = SocialNetwork.from_records(
            small_schema,
            {0: {"A": "a1"}, 1: {"A": "a2"}, 2: {"A": "a1"}},
            [(0, 1, {})],
        )
        store = CompactStore(network)
        assert store.l_nodes.size == 1  # only node 0 has out-edges
        assert store.r_nodes.size == 1  # only node 1 has in-edges
