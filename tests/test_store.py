"""Unit tests for the compact LArray/EArray/RArray store (Section IV-A)."""

import numpy as np
import pytest

from repro.data.store import CompactStore
from repro.datasets.random_graphs import random_attributed_network


class TestLayout:
    def test_larray_holds_only_positive_out_degree(self, small_network):
        store = CompactStore(small_network)
        out = small_network.out_degrees()
        assert set(store.l_nodes) == set(np.flatnonzero(out > 0))

    def test_rarray_holds_only_positive_in_degree(self, small_network):
        store = CompactStore(small_network)
        indeg = small_network.in_degrees()
        assert set(store.r_nodes) == set(np.flatnonzero(indeg > 0))

    def test_out_and_ind_describe_contiguous_runs(self, small_network):
        store = CompactStore(small_network)
        # Ind must be the exclusive prefix sum of Out.
        assert store.l_ind[0] == 0
        assert list(store.l_ind[1:]) == list(np.cumsum(store.l_out)[:-1])
        assert int(store.l_out.sum()) == small_network.num_edges

    def test_out_edges_of_l_row_point_to_own_edges(self, small_network):
        store = CompactStore(small_network)
        for row in range(store.l_nodes.size):
            edges = store.out_edges_of_l_row(row)
            assert (store.e_src_row[edges] == row).all()

    def test_ptr_resolves_destinations(self, small_network):
        store = CompactStore(small_network)
        # Destination node attribute through Ptr equals the network's own gather.
        order = store.edge_order
        for name in small_network.schema.node_attribute_names:
            via_store = store.dest_codes(name)
            direct = small_network.dest_values(name)[order]
            assert list(via_store) == list(direct)

    def test_source_codes_match_network(self, small_network):
        store = CompactStore(small_network)
        order = store.edge_order
        for name in small_network.schema.node_attribute_names:
            assert list(store.source_codes(name)) == list(
                small_network.source_values(name)[order]
            )

    def test_edge_codes_match_network(self, small_network):
        store = CompactStore(small_network)
        order = store.edge_order
        for name in small_network.schema.edge_attribute_names:
            assert list(store.edge_codes(name)) == list(
                small_network.edge_column(name)[order]
            )

    def test_subset_gather(self, small_network):
        store = CompactStore(small_network)
        subset = np.array([0, 3, 5])
        assert list(store.source_codes("A", subset)) == list(
            store.source_codes("A")[subset]
        )

    def test_all_edges(self, small_network):
        store = CompactStore(small_network)
        assert list(store.all_edges()) == list(range(8))


class TestStorageClaim:
    """The Section IV-A size comparison against the single table."""

    def test_size_formula(self, small_network):
        store = CompactStore(small_network)
        n_v, n_e = 2, 1  # attributes in the small schema
        expected = (
            store.l_nodes.size * (n_v + 2)
            + small_network.num_edges * (n_e + 1)
            + store.r_nodes.size * n_v
        )
        assert store.size_cells() == expected

    def test_single_table_formula(self, small_network):
        store = CompactStore(small_network)
        assert store.single_table_size_cells() == 8 * (2 * 2 + 1)

    def test_compact_smaller_on_dense_graphs(self):
        # Dense multi-attribute network: the |E| * 2 * #AttrV term dominates.
        from repro.datasets.random_graphs import random_schema

        schema = random_schema(num_node_attrs=6, num_edge_attrs=1, seed=3)
        network = random_attributed_network(
            schema, num_nodes=50, num_edges=2000, seed=3
        )
        store = CompactStore(network)
        assert store.size_cells() < store.single_table_size_cells()

    def test_zero_degree_nodes_excluded_from_arrays(self, small_schema):
        from repro.data.network import SocialNetwork

        network = SocialNetwork.from_records(
            small_schema,
            {0: {"A": "a1"}, 1: {"A": "a2"}, 2: {"A": "a1"}},
            [(0, 1, {})],
        )
        store = CompactStore(network)
        assert store.l_nodes.size == 1  # only node 0 has out-edges
        assert store.r_nodes.size == 1  # only node 1 has in-edges


class TestSharedMemoryExport:
    """Zero-copy shared-memory round trip (repro.parallel substrate)."""

    def test_round_trip_preserves_every_array(self, small_network):
        from repro.data.store import attach_shared_store

        store = CompactStore(small_network)
        with store.export_shared() as export:
            network2, store2, shm = attach_shared_store(export.handle)
            try:
                np.testing.assert_array_equal(store2.e_ptr, store.e_ptr)
                np.testing.assert_array_equal(store2.e_src_row, store.e_src_row)
                np.testing.assert_array_equal(store2.l_ind, store.l_ind)
                for name in small_network.schema.node_attribute_names:
                    np.testing.assert_array_equal(
                        store2.l_attrs[name], store.l_attrs[name]
                    )
                    np.testing.assert_array_equal(
                        network2.node_column(name), small_network.node_column(name)
                    )
                for name in small_network.schema.edge_attribute_names:
                    np.testing.assert_array_equal(
                        store2.e_attrs[name], store.e_attrs[name]
                    )
                np.testing.assert_array_equal(network2.src, small_network.src)
                np.testing.assert_array_equal(network2.dst, small_network.dst)
            finally:
                shm.close()

    def test_attached_views_are_zero_copy_and_read_only(self, small_network):
        from repro.data.store import attach_shared_store

        store = CompactStore(small_network)
        with store.export_shared() as export:
            _, store2, shm = attach_shared_store(export.handle)
            try:
                assert not store2.e_ptr.flags.owndata  # a view over the segment
                with pytest.raises(ValueError):
                    store2.e_ptr[0] = 99
            finally:
                shm.close()

    def test_handle_is_picklable(self, small_network):
        import pickle

        store = CompactStore(small_network)
        with store.export_shared() as export:
            restored = pickle.loads(pickle.dumps(export.handle))
            assert restored.shm_name == export.handle.shm_name
            assert restored.num_edges == store.num_edges

    def test_release_is_idempotent(self, small_network):
        store = CompactStore(small_network)
        export = store.export_shared()
        export.release()
        export.release()  # second call must not raise

    def test_mining_over_attached_store_matches(self, small_network):
        from repro.core.miner import GRMiner
        from repro.data.store import attach_shared_store

        store = CompactStore(small_network)
        baseline = GRMiner(small_network, k=5, min_support=1, min_score=0.0).mine()
        with store.export_shared() as export:
            network2, store2, shm = attach_shared_store(export.handle)
            try:
                mined = GRMiner(
                    network2, k=5, min_support=1, min_score=0.0, store=store2
                ).mine()
                assert [str(m.gr) for m in mined] == [str(m.gr) for m in baseline]
            finally:
                shm.close()


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestFingerprint:
    """Content identity of a store (the engine's cache key component)."""

    def test_identical_networks_share_a_fingerprint(self, small_schema):
        from repro.data.network import SocialNetwork

        nodes = {0: {"A": "a1"}, 1: {"A": "a2"}, 2: {"B": "b1"}}
        edges = [(0, 1, {"W": "w1"}), (1, 2, {})]
        first = CompactStore(SocialNetwork.from_records(small_schema, nodes, edges))
        second = CompactStore(SocialNetwork.from_records(small_schema, nodes, edges))
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() is first.fingerprint()  # memoized

    def test_different_data_different_fingerprint(self, small_schema):
        from repro.data.network import SocialNetwork

        nodes = {0: {"A": "a1"}, 1: {"A": "a2"}}
        base = CompactStore(
            SocialNetwork.from_records(small_schema, nodes, [(0, 1, {"W": "w1"})])
        )
        other = CompactStore(
            SocialNetwork.from_records(small_schema, nodes, [(0, 1, {"W": "w2"})])
        )
        assert base.fingerprint() != other.fingerprint()

    def test_attached_store_fingerprint_matches_source(self, small_network):
        from repro.data.store import attach_shared_store

        store = CompactStore(small_network)
        with store.export_shared() as export:
            _, store2, shm = attach_shared_store(export.handle)
            try:
                assert store2.fingerprint() == store.fingerprint()
            finally:
                shm.close()


class TestSharedStoreLease:
    """Guaranteed unlink of shared exports (satellite: leak-proofing)."""

    def test_close_unlinks_and_is_idempotent(self, small_network):
        lease = CompactStore(small_network).lease_shared()
        name = lease.name
        assert _segment_exists(name) and not lease.closed
        lease.close()
        lease.close()  # second call must not raise
        assert lease.closed and not _segment_exists(name)

    def test_exception_inside_with_unlinks(self, small_network):
        store = CompactStore(small_network)
        with pytest.raises(RuntimeError):
            with store.lease_shared() as lease:
                name = lease.name
                raise RuntimeError("boom")
        assert not _segment_exists(name)

    def test_abandoned_lease_is_collected(self, small_network):
        import gc

        lease = CompactStore(small_network).lease_shared()
        name = lease.name
        del lease  # nobody ever called close()
        gc.collect()
        assert not _segment_exists(name)

    def test_handle_attachable_until_closed(self, small_network):
        from repro.data.store import attach_shared_store

        store = CompactStore(small_network)
        with store.lease_shared() as lease:
            network2, _, shm = attach_shared_store(lease.handle)
            assert network2.num_edges == small_network.num_edges
            shm.close()


class TestApplyDelta:
    """Store rebuilds after the backing network appended edges."""

    @staticmethod
    def _network(seed: int):
        from repro.datasets.random_graphs import random_schema

        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, seed=seed
        )
        return random_attributed_network(
            schema, num_nodes=15, num_edges=60, seed=seed
        )

    def test_delta_rebuilds_arrays_and_resets_fingerprint(self):
        network = self._network(3)
        store = CompactStore(network)
        fp_before = store.fingerprint()
        edges_before = store.num_edges

        network.append_edges(
            [0, 1, 2], [3, 4, 5],
            {name: np.ones(3, dtype=np.int64)
             for name in network.schema.edge_attribute_names},
        )
        # The store is a snapshot until the delta is applied.
        assert store.num_edges == edges_before
        store.apply_delta()
        assert store.num_edges == edges_before + 3
        assert store.fingerprint() != fp_before
        # The rebuilt pointer structure stays internally consistent.
        assert store.e_src_row.size == store.num_edges
        assert int(store.l_out.sum()) == store.num_edges
        gathered = store.source_codes(network.schema.node_attribute_names[0])
        assert gathered.size == store.num_edges

    def test_rebuilt_store_equals_a_fresh_store(self):
        network = self._network(4)
        store = CompactStore(network)
        store.fingerprint()
        network.append_edges(
            [5, 6], [7, 8],
            {name: np.zeros(2, dtype=np.int64)
             for name in network.schema.edge_attribute_names},
        )
        store.apply_delta()
        fresh = CompactStore(network)
        assert store.fingerprint() == fresh.fingerprint()
