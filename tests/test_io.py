"""CSV persistence and networkx interop."""

import networkx as nx
import pytest

from repro.core.metrics import MetricEngine
from repro.io.loaders import (
    from_networkx,
    load_network,
    save_network,
    schema_from_dict,
    schema_to_dict,
    to_networkx,
)


class TestSchemaJSON:
    def test_roundtrip(self, small_schema):
        assert schema_from_dict(schema_to_dict(small_schema)) == small_schema

    def test_homophily_preserved(self, toy_network):
        schema = toy_network.schema
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.homophily_attribute_names == ("EDU",)


class TestCSVRoundtrip:
    def test_roundtrip_preserves_everything(self, toy_network, tmp_path):
        save_network(toy_network, tmp_path / "toy")
        restored = load_network(tmp_path / "toy")
        assert restored.schema == toy_network.schema
        assert restored.num_nodes == toy_network.num_nodes
        assert restored.num_edges == toy_network.num_edges
        for name in toy_network.schema.node_attribute_names:
            assert list(restored.node_column(name)) == list(
                toy_network.node_column(name)
            )
        assert list(restored.src) == list(toy_network.src)
        assert list(restored.dst) == list(toy_network.dst)

    def test_roundtrip_preserves_nulls(self, small_network, tmp_path):
        save_network(small_network, tmp_path / "net")
        restored = load_network(tmp_path / "net")
        assert list(restored.node_column("A")) == list(small_network.node_column("A"))
        assert list(restored.edge_column("W")) == list(small_network.edge_column("W"))

    def test_mining_results_survive_roundtrip(self, toy_network, tmp_path):
        from repro.core.miner import GRMiner

        save_network(toy_network, tmp_path / "toy")
        restored = load_network(tmp_path / "toy")
        a = GRMiner(toy_network, min_support=2, min_score=0.5, k=None).mine()
        b = GRMiner(restored, min_support=2, min_score=0.5, k=None).mine()
        assert [str(m.gr) for m in a] == [str(m.gr) for m in b]

    def test_expected_files_written(self, toy_network, tmp_path):
        directory = save_network(toy_network, tmp_path / "toy")
        assert (directory / "schema.json").exists()
        assert (directory / "nodes.csv").exists()
        assert (directory / "edges.csv").exists()


class TestNetworkx:
    def test_to_networkx_shape(self, toy_network):
        graph = to_networkx(toy_network)
        assert graph.number_of_nodes() == 14
        assert graph.number_of_edges() == 30
        assert graph.nodes[1]["SEX"] == "F"

    def test_roundtrip_through_networkx(self, toy_network):
        graph = to_networkx(toy_network)
        restored = from_networkx(graph, toy_network.schema)
        engine_a, engine_b = MetricEngine(toy_network), MetricEngine(restored)
        from repro.core.descriptors import GR, Descriptor

        gr = GR(
            Descriptor({"SEX": "M"}),
            Descriptor({"SEX": "F", "RACE": "Asian"}),
            Descriptor({"TYPE": "dates"}),
        )
        assert engine_a.evaluate(gr).support_count == engine_b.evaluate(gr).support_count

    def test_undirected_graph_gets_reciprocal_edges(self, small_schema):
        graph = nx.Graph()
        graph.add_node("x", A="a1", B="b1")
        graph.add_node("y", A="a2", B="b2")
        graph.add_edge("x", "y", W="w1")
        network = from_networkx(graph, small_schema)
        assert network.num_edges == 2

    def test_unknown_attributes_ignored(self, small_schema):
        graph = nx.DiGraph()
        graph.add_node("x", A="a1", irrelevant="junk")
        graph.add_node("y", B="b2")
        graph.add_edge("x", "y", W="w1", other=3)
        network = from_networkx(graph, small_schema)
        assert network.node_record(0) == {"A": "a1"}
