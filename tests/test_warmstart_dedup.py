"""Admission planner: warm-start dominance floors and single-flight dedup.

The planner's contract, on top of the serving layer's:

1. **Dominance soundness** — :func:`repro.engine.request.warmstart_dominates`
   admits exactly the provable direction: all non-threshold fields
   equal, seed thresholds at least as strict, and — with generality
   verification on — ``min_nhp`` *equal* (a laxer dependent score
   threshold can newly qualify a lower-scoring generality blocker,
   which would invalidate the seed's k-results-above-the-floor
   certificate; see the function's docstring for the derivation).
2. **Warm equals cold, GR for GR** — a warm-started sweep returns
   byte-identical results to fresh one-shot miners, across
   dominance-holding and dominance-violating grids (the latter must
   simply fall back to cold floors).
3. **Single-flight** — N identical concurrent jobs trigger exactly one
   planned mining execution; every attached future resolves to an
   equal (but private) result.  Cancelling a follower detaches it;
   cancelling the leader promotes a follower into the in-flight
   execution without re-mining.
"""

import asyncio
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import (
    CKEY_ABS_SUPPORT,
    CKEY_APPLY_GENERALITY,
    CKEY_FIELDS,
    CKEY_K,
    CKEY_MIN_SCORE,
    CKEY_PUSH_TOPK,
    CKEY_RANK_BY,
    GRMiner,
    MinerConfig,
)
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.engine import EngineHub, MineRequest
from repro.engine.engine import MiningEngine
from repro.engine.request import split_canonical_key, warmstart_dominates
from repro.parallel import ParallelGRMiner
from repro.serve import JobCancelled, JobState, Scheduler


def _make_network(seed: int, num_edges: int = 100, num_nodes: int = 20):
    schema = random_schema(
        num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
    )
    return random_attributed_network(
        schema, num_nodes=num_nodes, num_edges=num_edges,
        homophily_strength=0.5, seed=seed,
    )


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


def _fresh(network, request: MineRequest):
    kwargs = dict(
        k=request.k,
        min_support=request.min_support,
        min_score=request.min_nhp,
        rank_by=request.rank_by,
        push_topk=request.push_topk,
        **dict(request.options),
    )
    if request.workers is None:
        return GRMiner(network, **kwargs).mine()
    return ParallelGRMiner(network, workers=request.workers, **kwargs).mine()


def _key(network, request: MineRequest):
    return request.canonical_key(network.schema, network.num_edges)


class TestCanonicalKeyLayout:
    """The CKEY_* constants must keep pointing at the fields they name —
    the dominance check indexes canonical keys through them."""

    def test_constants_address_the_intended_fields(self):
        schema = _make_network(0).schema
        config = MinerConfig(min_support=7, min_score=0.25, k=9, rank_by="confidence")
        key = config.canonical_key(schema, num_edges=100)
        assert key[CKEY_ABS_SUPPORT] == 7
        assert key[CKEY_MIN_SCORE] == 0.25
        assert key[CKEY_K] == 9
        assert key[CKEY_RANK_BY] == "confidence"
        assert key[CKEY_PUSH_TOPK] is True
        base = MinerConfig(k=5).canonical_key(schema, 100)
        flipped = MinerConfig(k=5, apply_generality=False).canonical_key(schema, 100)
        diffs = [i for i, (a, b) in enumerate(zip(base, flipped)) if a != b]
        # apply_generality itself, plus verify_generality (masked to
        # None once generality is off).
        assert CKEY_APPLY_GENERALITY in diffs

    def test_fractional_support_resolves_before_comparison(self):
        network = _make_network(1)  # 100 edges
        absolute = MineRequest(k=5, min_support=5, min_nhp=0.3, workers=2)
        fractional = MineRequest(k=5, min_support=0.05, min_nhp=0.3, workers=2)
        assert _key(network, absolute) == _key(network, fractional)

    def test_split_canonical_key_round_trips_and_validates(self):
        """The sanctioned decoder for layers outside the layout owners
        (the ckey-layout lint rule forbids positional subscripts there)."""
        network = _make_network(0)
        for request in (
            MineRequest(k=5, min_support=2, min_nhp=0.3),
            MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2),
        ):
            full = _key(network, request)
            split = split_canonical_key(full)
            assert split is not None
            mode, config_key = split
            assert mode == ("serial" if request.workers is None else "sharded")
            assert (mode,) + tuple(config_key) == full
            assert len(config_key) == CKEY_FIELDS
        # Anything that is not a current-layout key decodes to None —
        # disk-cache keys may predate the layout.
        good = _key(network, MineRequest(workers=2))
        assert split_canonical_key(good[:-1]) is None  # truncated
        assert split_canonical_key(("pooled",) + good[1:]) is None  # bad mode
        assert split_canonical_key(list(good)) is None  # not a tuple
        assert split_canonical_key(None) is None


class TestDominance:
    NETWORK = _make_network(2)

    def _k(self, **kwargs):
        return _key(self.NETWORK, MineRequest.create(**kwargs))

    def test_identical_keys_never_dominate(self):
        key = self._k(k=5, min_support=2, min_nhp=0.3, workers=2)
        assert not warmstart_dominates(key, key)

    def test_support_monotone_with_generality_on(self):
        strict = self._k(k=5, min_support=4, min_nhp=0.3, workers=2)
        lax = self._k(k=5, min_support=1, min_nhp=0.3, workers=2)
        assert warmstart_dominates(strict, lax)
        assert not warmstart_dominates(lax, strict)  # wrong direction

    def test_score_relaxation_is_unsound_under_generality(self):
        """The derived trap: a laxer dependent min_nhp can newly qualify
        a lower-scoring generality blocker, so this pair must NOT warm
        start even though the thresholds are monotone."""
        strict = self._k(k=5, min_support=2, min_nhp=0.6, workers=2)
        lax = self._k(k=5, min_support=2, min_nhp=0.2, workers=2)
        assert not warmstart_dominates(strict, lax)

    def test_both_axes_relax_without_generality(self):
        strict = self._k(
            k=5, min_support=4, min_nhp=0.6, workers=2, apply_generality=False
        )
        lax = self._k(
            k=5, min_support=1, min_nhp=0.2, workers=2, apply_generality=False
        )
        assert warmstart_dominates(strict, lax)
        assert not warmstart_dominates(lax, strict)

    def test_invariant_fields_must_coincide(self):
        base = dict(min_support=4, min_nhp=0.3, workers=2)
        seed = self._k(k=5, **base)
        assert not warmstart_dominates(seed, self._k(k=6, **base))
        assert not warmstart_dominates(
            seed, self._k(k=5, min_support=1, min_nhp=0.3, workers=2,
                          rank_by="confidence")
        )
        assert not warmstart_dominates(
            seed, self._k(k=5, min_support=1, min_nhp=0.3, workers=2,
                          push_topk=False)
        )

    def test_serial_mode_is_ineligible(self):
        # Serial GRMiner(k) gets no threshold bus (and its index-based
        # generality check is the §5.5 heuristic): no warm start.
        strict = self._k(k=5, min_support=4, min_nhp=0.3)
        lax = self._k(k=5, min_support=1, min_nhp=0.3)
        assert not warmstart_dominates(strict, lax)
        sharded_lax = self._k(k=5, min_support=1, min_nhp=0.3, workers=2)
        assert not warmstart_dominates(strict, sharded_lax)

    def test_untopped_queries_are_ineligible(self):
        strict = self._k(k=None, min_support=4, min_nhp=0.3, workers=2)
        lax = self._k(k=None, min_support=1, min_nhp=0.3, workers=2)
        assert not warmstart_dominates(strict, lax)


class TestWarmStartEquivalence:
    """Acceptance: warm-started sweeps are GR-for-GR equal to fresh
    one-shot miners — dominance-holding and dominance-violating grids."""

    def _sweep(self, network, requests, warm_start: bool):
        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub, warm_start=warm_start) as scheduler:
                    jobs = scheduler.submit_sweep("n", requests)
                    results = [await job for job in jobs]
                    return (
                        [_signature(r) for r in results],
                        [job.warm_floor for job in jobs],
                        dict(scheduler._counters),
                    )

        return asyncio.run(scenario())

    def test_dominance_grid_matches_cold_and_fresh(self):
        network = _make_network(3)
        requests = [
            MineRequest(k=6, min_support=s, min_nhp=0.3, workers=2)
            for s in (4, 1, 2, 3)
        ]
        fresh = [_signature(_fresh(network, r)) for r in requests]
        warm_sigs, floors, counters = self._sweep(network, requests, warm_start=True)
        cold_sigs, cold_floors, cold_counters = self._sweep(
            network, requests, warm_start=False
        )
        assert warm_sigs == fresh
        assert cold_sigs == fresh
        assert counters["warm_seeds"] == 1
        assert all(floor is None for floor in cold_floors)
        assert cold_counters["warm_seeds"] == 0

    def test_violating_grid_falls_back_to_cold(self):
        network = _make_network(4)
        # Generality on + differing min_nhp: monotone thresholds, but
        # provably NOT warm-startable — the planner must run every
        # point cold and still return exact answers.
        requests = [
            MineRequest(k=6, min_support=2, min_nhp=nhp, workers=2)
            for nhp in (0.5, 0.2, 0.35)
        ]
        fresh = [_signature(_fresh(network, r)) for r in requests]
        sigs, floors, counters = self._sweep(network, requests, warm_start=True)
        assert sigs == fresh
        assert counters["warm_seeds"] == 0 and counters["warm_started"] == 0
        assert all(floor is None for floor in floors)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=10, max_value=13),
        supports=st.lists(
            st.integers(min_value=1, max_value=5), min_size=2, max_size=4,
            unique=True,
        ),
        nhp=st.sampled_from([0.2, 0.35, 0.5]),
        generality=st.booleans(),
        extra_nhps=st.lists(
            st.sampled_from([0.1, 0.25, 0.45]), min_size=0, max_size=2,
            unique=True,
        ),
    )
    def test_property_warm_equals_fresh(
        self, seed, supports, nhp, generality, extra_nhps
    ):
        """Mixed grids — dominance chains, violating pairs, off-axis
        points — always resolve to the fresh miners' answers."""
        network = _make_network(seed, num_edges=60, num_nodes=14)
        requests = [
            MineRequest.create(
                k=4, min_support=s, min_nhp=nhp, workers=2,
                apply_generality=generality,
            )
            for s in supports
        ] + [
            MineRequest.create(
                k=4, min_support=2, min_nhp=extra, workers=2,
                apply_generality=generality,
            )
            for extra in extra_nhps
        ]
        fresh = [_signature(_fresh(network, r)) for r in requests]
        sigs, _, _ = self._sweep(network, requests, warm_start=True)
        assert sigs == fresh


class TestWarmStartReducesWork:
    def test_seeded_floor_prunes_strictly_more(self):
        """The whole point: a dominated point mined under the seed's
        k-th-best floor examines strictly fewer RIGHT nodes than the
        same point mined cold (generality off, so the score axis may
        relax — the floor then towers over the dependent's own 0.0
        threshold)."""
        network = _make_network(5, num_edges=200, num_nodes=25)
        seed_request = MineRequest.create(
            k=3, min_support=3, min_nhp=0.5, workers=2, apply_generality=False
        )
        dependents = [
            MineRequest.create(
                k=3, min_support=s, min_nhp=0.0, workers=2, apply_generality=False
            )
            for s in (1, 2)
        ]
        requests = [seed_request] + dependents

        async def scenario(warm_start):
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub, warm_start=warm_start) as scheduler:
                    jobs = scheduler.submit_sweep("n", requests)
                    results = [await job for job in jobs]
                    return results, [job.warm_floor for job in jobs]

        warm_results, warm_floors = asyncio.run(scenario(True))
        cold_results, cold_floors = asyncio.run(scenario(False))
        assert [_signature(r) for r in warm_results] == [
            _signature(r) for r in cold_results
        ]
        assert warm_floors[0] is None  # the seed itself runs cold
        assert all(f is not None for f in warm_floors[1:]), (
            "dependents were not warm-started — seed returned "
            f"{len(warm_results[0])} GRs, floors {warm_floors}"
        )
        warm_examined = sum(r.stats.grs_examined for r in warm_results[1:])
        cold_examined = sum(r.stats.grs_examined for r in cold_results[1:])
        assert warm_examined < cold_examined
        assert all(
            r.params.get("warm_floor") is not None for r in warm_results[1:]
        )

    def test_batch_override_enables_on_default_off_scheduler(self):
        """The per-batch ``warm_start=True`` override must actually
        floor the dependents on a ``Scheduler(warm_start=False)`` — not
        just pay the seed-first serialization and then run cold."""
        network = _make_network(6)
        requests = [
            MineRequest.create(
                k=3, min_support=3, min_nhp=0.4, workers=2, apply_generality=False
            ),
            MineRequest.create(
                k=3, min_support=1, min_nhp=0.0, workers=2, apply_generality=False
            ),
        ]

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub, warm_start=False) as scheduler:
                    jobs = scheduler.submit_sweep("n", requests, warm_start=True)
                    await asyncio.gather(*jobs)
                    return [job.warm_floor for job in jobs]

        floors = asyncio.run(scenario())
        assert floors[0] is None and floors[1] is not None

    def test_floor_survives_via_engine_stats(self):
        network = _make_network(6)
        request = MineRequest.create(
            k=3, min_support=1, min_nhp=0.0, workers=2, apply_generality=False
        )
        seed = MineRequest.create(
            k=3, min_support=3, min_nhp=0.4, workers=2, apply_generality=False
        )

        async def scenario():
            with EngineHub(workers=2) as hub:
                hub.register("n", network)
                async with Scheduler(hub) as scheduler:
                    jobs = scheduler.submit_sweep("n", [seed, request])
                    await asyncio.gather(*jobs)
                    return hub.engine("n").stats.warm_starts

        assert asyncio.run(scenario()) >= 1


class TestSingleFlight:
    def _count_plans(self, monkeypatch, seen):
        original = MiningEngine.plan_query

        def counting(self, request, key, floor=None):
            seen.append(request)
            return original(self, request, key, floor=floor)

        monkeypatch.setattr(MiningEngine, "plan_query", counting)

    def test_n_identical_jobs_one_execution(self, monkeypatch):
        """Acceptance: N identical concurrent jobs -> exactly one
        planned GRMiner execution; every future resolves equal.  The
        cache is disabled, so without dedup each job would mine."""
        network = _make_network(7, num_edges=150)
        request = MineRequest(k=10, min_support=1, min_nhp=0.1, workers=2)
        blocker_request = MineRequest(k=15, min_support=1, min_nhp=0.0, workers=2)
        reference = _signature(_fresh(network, request))
        plans: list = []
        self._count_plans(monkeypatch, plans)

        async def scenario():
            with EngineHub(workers=2, cache_size=0) as hub:
                hub.register("n", network)
                hub.register("blocker", _make_network(8, num_edges=200))
                # One slot, occupied by a long higher-priority job: the
                # leader is planned but starved, guaranteeing the
                # followers attach while it is verifiably in flight.
                async with Scheduler(hub, max_inflight=1) as scheduler:
                    blocker = scheduler.submit(
                        "blocker", blocker_request, priority=10
                    )
                    jobs = [scheduler.submit("n", request) for _ in range(4)]
                    results = [await job for job in jobs]
                    await blocker
                    return (
                        [_signature(r) for r in results],
                        [job.deduped for job in jobs],
                        results,
                        dict(scheduler._counters),
                    )

        signatures, deduped, results, counters = asyncio.run(scenario())
        assert all(signature == reference for signature in signatures)
        planned_dups = [r for r in plans if r == request]
        assert len(planned_dups) == 1  # single-flight: one execution
        assert deduped == [False, True, True, True]
        assert counters["deduped"] == 3
        # Followers hold private snapshots: mutating one result must
        # not reach a sibling's.
        results[1].grs.clear()
        assert _signature(results[2]) == reference

    def test_cancel_follower_detaches_only(self):
        network = _make_network(9, num_edges=150)
        request = MineRequest(k=10, min_support=1, min_nhp=0.1, workers=2)
        reference = _signature(_fresh(network, request))

        async def scenario():
            with EngineHub(workers=2, cache_size=0) as hub:
                hub.register("n", network)
                hub.register("blocker", _make_network(8, num_edges=200))
                async with Scheduler(hub, max_inflight=1) as scheduler:
                    blocker = scheduler.submit(
                        "blocker", k=15, min_nhp=0.0, workers=2, priority=10
                    )
                    leader = scheduler.submit("n", request)
                    follower = scheduler.submit("n", request)
                    keeper = scheduler.submit("n", request)
                    # Let the admit loop attach the followers (the
                    # starved leader cannot resolve while the blocker
                    # owns the only slot, so attachment is guaranteed).
                    deadline = asyncio.get_running_loop().time() + 30
                    while not follower.deduped and not follower.done:
                        if asyncio.get_running_loop().time() > deadline:
                            raise AssertionError("follower never attached")
                        await asyncio.sleep(0.002)
                    follower.cancel("changed my mind")
                    with pytest.raises(JobCancelled, match="changed my mind"):
                        await follower
                    first = _signature(await leader)
                    second = _signature(await keeper)
                    await blocker
                    return first, second, follower.state, keeper.deduped

        first, second, state, keeper_deduped = asyncio.run(scenario())
        assert first == reference and second == reference
        assert state is JobState.CANCELLED
        assert keeper_deduped  # the surviving follower stayed attached

    def test_cancel_leader_promotes_follower(self, monkeypatch):
        """A cancelled leader's in-flight pooled execution transfers to
        a follower: no second mining pass, exact result, leader
        resolves CANCELLED."""
        network = _make_network(11, num_edges=150)
        request = MineRequest(k=10, min_support=1, min_nhp=0.1, workers=2)
        reference = _signature(_fresh(network, request))
        plans: list = []
        self._count_plans(monkeypatch, plans)

        async def scenario():
            with EngineHub(workers=2, cache_size=0) as hub:
                hub.register("n", network)
                hub.register("blocker", _make_network(8, num_edges=200))
                # One slot under a long high-priority job: the leader is
                # planned (bus checked out, tasks queued) but starved,
                # so the cancel deterministically lands while the
                # execution is promotable.
                async with Scheduler(hub, max_inflight=1) as scheduler:
                    blocker = scheduler.submit(
                        "blocker", k=15, min_nhp=0.0, workers=2, priority=10
                    )
                    leader = scheduler.submit("n", request)
                    deadline = asyncio.get_running_loop().time() + 30
                    while leader.state not in (JobState.READY, JobState.RUNNING):
                        if leader.done or (
                            asyncio.get_running_loop().time() > deadline
                        ):
                            break
                        await asyncio.sleep(0.002)
                    followers = [scheduler.submit("n", request) for _ in range(2)]
                    while not all(f.deduped or f.done for f in followers):
                        if asyncio.get_running_loop().time() > deadline:
                            break
                        await asyncio.sleep(0.002)
                    attached = [f.deduped for f in followers]
                    leader.cancel()
                    outcomes = []
                    for follower in followers:
                        try:
                            outcomes.append(_signature(await follower))
                        except JobCancelled:
                            outcomes.append("cancelled")
                    cancelled = False
                    try:
                        await leader
                    except JobCancelled:
                        cancelled = True
                    await blocker
                    buses = hub._buses
                    freed = buses is None or len(buses._free) == len(buses._all)
                    return attached, outcomes, cancelled, leader.state, freed

        attached, outcomes, cancelled, state, freed = asyncio.run(scenario())
        assert all(attached) and cancelled
        assert state is JobState.CANCELLED
        assert outcomes == [reference, reference]
        assert len([r for r in plans if r == request]) == 1  # no re-mine
        assert freed  # the promoted execution still recycled its bus

    def test_follower_priority_boosts_leader(self):
        async def scenario():
            with EngineHub(workers=2, cache_size=0) as hub:
                hub.register("n", _make_network(12))
                hub.register("blocker", _make_network(8, num_edges=200))
                async with Scheduler(hub, max_inflight=1) as scheduler:
                    blocker = scheduler.submit(
                        "blocker", k=15, min_nhp=0.0, workers=2, priority=10
                    )
                    request = MineRequest(k=5, min_support=1, min_nhp=0.2, workers=2)
                    leader = scheduler.submit("n", request, priority=0)
                    follower = scheduler.submit("n", request, priority=7)
                    deadline = asyncio.get_running_loop().time() + 30
                    while not follower.deduped and not follower.done:
                        if asyncio.get_running_loop().time() > deadline:
                            break
                        await asyncio.sleep(0.002)
                    boosted = None
                    if follower.deduped:
                        boosted = leader.effective_priority
                    await asyncio.gather(leader, follower, blocker)
                    settled = leader.effective_priority
                    return boosted, settled

        boosted, settled = asyncio.run(scenario())
        if boosted is not None:
            assert boosted == 7
        assert settled == 0  # resolved followers stop boosting

    def test_dedup_disabled_mines_each(self, monkeypatch):
        network = _make_network(13, num_edges=120)
        request = MineRequest(k=8, min_support=1, min_nhp=0.2, workers=2)
        plans: list = []
        self._count_plans(monkeypatch, plans)

        async def scenario():
            with EngineHub(workers=2, cache_size=0) as hub:
                hub.register("n", network)
                async with Scheduler(hub, dedup=False) as scheduler:
                    jobs = [scheduler.submit("n", request) for _ in range(3)]
                    results = [await job for job in jobs]
                    return [_signature(r) for r in results]

        signatures = asyncio.run(scenario())
        assert len(set(map(tuple, (map(str, s) for s in signatures)))) <= 1
        assert len([r for r in plans if r == request]) == 3
