"""The synthetic Pokec generator reproduces Table IIa's structure.

Tolerances are deliberately loose (± several points): the assertions pin
the *shape* — which patterns exist, roughly how strong — not the exact
sampled values (EXPERIMENTS.md records the precise measured numbers).
"""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.datasets.pokec import POKEC_HOMOPHILY_ATTRIBUTES, pokec_schema, synthetic_pokec


@pytest.fixture(scope="module")
def network():
    # Module-scoped: generation is the expensive part.
    return synthetic_pokec(num_sources=5000, num_edges=50_000, seed=1)


@pytest.fixture(scope="module")
def engine(network):
    return MetricEngine(network)


def _nhp(engine, l, r):
    return engine.evaluate(GR(Descriptor(l), Descriptor(r))).nhp


class TestSchema:
    def test_six_attributes_with_paper_domains(self):
        schema = pokec_schema()
        sizes = {a.name: a.domain_size for a in schema.node_attributes}
        assert sizes["Gender"] == 3
        assert sizes["Age"] == 10
        assert sizes["Education"] == 10
        assert sizes["Looking-For"] == 11
        assert sizes["Marital"] == 7

    def test_homophily_designation_matches_paper(self):
        schema = pokec_schema()
        assert set(schema.homophily_attribute_names) == set(POKEC_HOMOPHILY_ATTRIBUTES)

    def test_region_domain_configurable(self):
        assert pokec_schema(num_regions=10).node_attribute("Region").domain_size == 10
        with pytest.raises(ValueError):
            synthetic_pokec(num_regions=1)


class TestGeneration:
    def test_sizes(self, network):
        assert network.num_edges == 50_000
        assert network.num_nodes >= 5000

    def test_no_null_codes(self, network):
        for name in network.schema.node_attribute_names:
            assert (network.node_column(name) > 0).all()

    def test_deterministic_by_seed(self):
        a = synthetic_pokec(num_sources=200, num_edges=1000, seed=9)
        b = synthetic_pokec(num_sources=200, num_edges=1000, seed=9)
        assert list(a.src) == list(b.src)
        assert list(a.dst) == list(b.dst)
        assert list(a.node_column("Education")) == list(b.node_column("Education"))

    def test_different_seed_differs(self):
        a = synthetic_pokec(num_sources=200, num_edges=1000, seed=9)
        b = synthetic_pokec(num_sources=200, num_edges=1000, seed=10)
        assert list(a.dst) != list(b.dst)


class TestPlantedPatterns:
    def test_p1_chat_prefers_good_friend(self, engine):
        value = _nhp(engine, {"Looking-For": "Chat"}, {"Looking-For": "Good Friend"})
        assert value == pytest.approx(0.695, abs=0.05)

    def test_p2_basic_prefers_secondary(self, engine):
        value = _nhp(engine, {"Education": "Basic"}, {"Education": "Secondary"})
        assert value == pytest.approx(0.687, abs=0.05)

    def test_p3_preschool_prefers_basic(self, engine):
        value = _nhp(engine, {"Education": "Preschool"}, {"Education": "Basic"})
        assert value == pytest.approx(0.661, abs=0.07)

    def test_p4_hardly_any_prefers_basic(self, engine):
        value = _nhp(engine, {"Education": "Hardly Any"}, {"Education": "Basic"})
        assert value == pytest.approx(0.65, abs=0.07)

    def test_p5_sexual_partner_seekers_reach_women(self, engine):
        value = _nhp(engine, {"Looking-For": "Sexual Partner"}, {"Gender": "Female"})
        assert value == pytest.approx(0.647, abs=0.06)

    def test_p5_gender_asymmetry(self, engine):
        male = _nhp(
            engine,
            {"Gender": "Male", "Looking-For": "Sexual Partner"},
            {"Gender": "Female"},
        )
        female = _nhp(
            engine,
            {"Gender": "Female", "Looking-For": "Sexual Partner"},
            {"Gender": "Male"},
        )
        assert male == pytest.approx(0.681, abs=0.05)
        assert female == pytest.approx(0.488, abs=0.06)
        assert male > female + 0.1  # the Section VI-B "big difference"

    def test_p207_younger_partner_preference(self, engine):
        male = _nhp(engine, {"Gender": "Male", "Age": "25-34"}, {"Age": "18-24"})
        female = _nhp(engine, {"Gender": "Female", "Age": "25-34"}, {"Age": "18-24"})
        assert male == pytest.approx(0.508, abs=0.05)
        assert female == pytest.approx(0.328, abs=0.06)
        assert male > female

    def test_region_homophily_dominates_confidence(self, engine, network):
        """conf((R:x)->(R:x)) sits in the paper's 0.65-0.72 band for the
        large regions — these are Table IIa's conf-ranked winners."""
        region = network.schema.node_attribute("Region").values[0]
        metrics = engine.evaluate(
            GR(Descriptor({"Region": region}), Descriptor({"Region": region}))
        )
        assert metrics.confidence == pytest.approx(0.68, abs=0.05)

    def test_education_marginals_match_paper_probe(self, network):
        """Section VI-B: Secondary ≈ 19.54%, Training ≈ 1.9% of profiles."""
        from repro.analysis.hypothesis import HypothesisExplorer

        shares = HypothesisExplorer(network).value_distribution("Education")
        assert shares["Secondary"] == pytest.approx(0.1954, abs=0.04)
        assert shares["Training"] == pytest.approx(0.019, abs=0.02)
