"""E1: the exact ground truths of Examples 1 and 2 on the Fig. 1 network.

These numbers are quoted verbatim in the paper; they pin down the
semantics of supp, conf, β, the homophily effect and nhp.
"""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine


@pytest.fixture(scope="module")
def engine(request):
    from repro.datasets.toy import toy_dating_network

    return MetricEngine(toy_dating_network())


def _gr(l, r, w={"TYPE": "dates"}):
    return GR(Descriptor(l), Descriptor(r), Descriptor(w))


GR1 = _gr({"SEX": "M"}, {"SEX": "F", "RACE": "Asian"})
GR2 = _gr({"SEX": "M", "RACE": "Asian"}, {"SEX": "F", "RACE": "Asian"})
GR3 = _gr({"SEX": "F", "EDU": "Grad"}, {"SEX": "M", "EDU": "Grad"})
GR4 = _gr({"SEX": "F", "EDU": "Grad"}, {"SEX": "M", "EDU": "College"})


class TestGR1:
    """Example 1: men prefer Asian women — supp 7, conf 7/14."""

    def test_support_count(self, engine):
        assert engine.evaluate(GR1).support_count == 7

    def test_lw_count_is_male_out_edges(self, engine):
        assert engine.evaluate(GR1).lw_count == 14

    def test_confidence(self, engine):
        assert engine.evaluate(GR1).confidence == pytest.approx(7 / 14)

    def test_beta_empty_so_nhp_equals_conf(self, engine):
        m = engine.evaluate(GR1)
        assert m.beta == ()
        assert m.nhp == m.confidence


class TestGR2:
    """Example 1: Asian men are the exception — supp 0, conf 0."""

    def test_no_support(self, engine):
        m = engine.evaluate(GR2)
        assert m.support_count == 0
        assert m.confidence == 0.0
        assert m.nhp == 0.0


class TestGR3:
    """Example 2: Grad females prefer Grad males — supp 4, conf 4/6."""

    def test_counts(self, engine):
        m = engine.evaluate(GR3)
        assert m.support_count == 4
        assert m.lw_count == 6

    def test_confidence(self, engine):
        assert engine.evaluate(GR3).confidence == pytest.approx(4 / 6)

    def test_beta_empty_because_values_match(self, engine):
        # EDU appears on both sides with the *same* value: not in beta.
        assert engine.evaluate(GR3).beta == ()


class TestGR4:
    """Example 2 + Section III-B: the motivating nhp computation."""

    def test_counts(self, engine):
        m = engine.evaluate(GR4)
        assert m.support_count == 2
        assert m.lw_count == 6

    def test_confidence_is_low(self, engine):
        assert engine.evaluate(GR4).confidence == pytest.approx(2 / 6)

    def test_beta_is_edu(self, engine):
        assert engine.evaluate(GR4).beta == ("EDU",)

    def test_homophily_effect_support_is_gr3_like(self, engine):
        # supp(l -w-> l[beta]) = 4: the GR3 homophily effect.
        assert engine.evaluate(GR4).homophily_count == 4

    def test_nhp_is_one(self, engine):
        # nhp = 2 / (6 - 4) = 100%, the paper's headline computation.
        assert engine.evaluate(GR4).nhp == pytest.approx(1.0)

    def test_nhp_boosts_rank_over_confidence(self, engine):
        m3, m4 = engine.evaluate(GR3), engine.evaluate(GR4)
        assert m4.confidence < m3.confidence  # conf buries GR4 ...
        assert m4.nhp > m3.nhp  # ... nhp surfaces it


class TestEngineBasics:
    def test_rhs_support_count(self, engine):
        # Edges into (SEX:F, RACE:Asian) nodes: GR1's 7 plus any from females.
        count = engine.rhs_support_count(Descriptor({"SEX": "F", "RACE": "Asian"}))
        assert count >= 7

    def test_unknown_attribute_raises(self, engine):
        with pytest.raises(KeyError):
            engine.evaluate(_gr({"JOB": "x"}, {"SEX": "F"}, {}))

    def test_count_with_empty_descriptors(self, engine):
        assert engine.count(Descriptor(), Descriptor(), Descriptor()) == 30

    def test_shortcut_methods(self, engine):
        assert engine.support(GR1) == pytest.approx(7 / 30)
        assert engine.confidence(GR1) == pytest.approx(0.5)
        assert engine.nhp(GR4) == pytest.approx(1.0)
