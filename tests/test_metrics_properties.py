"""Property-based tests of the metric theorems (Theorems 1 and 2).

Random GRs on random networks must satisfy:

* Theorem 1: when supp > 0 the nhp denominator is positive and
  nhp ∈ [0, 1];
* Remark 1: β = ∅ ⇒ nhp = conf, and β ≠ ∅ ⇒ nhp ≥ conf;
* Theorem 2(1): adding any value never increases support;
* Theorem 2(2): with β ≠ ∅, adding an RHS value never increases nhp;
* Theorem 2(3): with β = ∅, adding a non-homophily (or
  homophily-not-in-LHS) RHS value never increases nhp.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.datasets.random_graphs import random_attributed_network, random_schema

# A pool of cached engines over varied random networks.
_ENGINES = {}


def _engine(seed: int) -> MetricEngine:
    if seed not in _ENGINES:
        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
        )
        network = random_attributed_network(
            schema,
            num_nodes=25,
            num_edges=150,
            homophily_strength=0.4,
            null_fraction=0.1,
            seed=seed,
        )
        _ENGINES[seed] = MetricEngine(network)
    return _ENGINES[seed]


def _random_gr(engine: MetricEngine, draw) -> GR:
    schema = engine.schema
    node_names = list(schema.node_attribute_names)

    def descriptor(names, kind):
        items = []
        for name in names:
            attr = schema.attribute(name)
            value_index = draw(st.integers(0, attr.domain_size))
            if value_index > 0:
                items.append((name, attr.values[value_index - 1]))
        return Descriptor(tuple(items))

    lhs = descriptor(node_names, "node")
    rhs = descriptor(node_names, "node")
    edge = descriptor(list(schema.edge_attribute_names), "edge")
    if not rhs:
        name = node_names[0]
        attr = schema.attribute(name)
        rhs = Descriptor(((name, attr.values[0]),))
    return GR(lhs, rhs, edge)


@st.composite
def gr_and_engine(draw):
    seed = draw(st.integers(0, 7))
    engine = _engine(seed)
    return engine, _random_gr(engine, draw)


class TestTheorem1:
    @given(gr_and_engine())
    @settings(max_examples=200, deadline=None)
    def test_nhp_in_unit_interval(self, case):
        engine, gr = case
        metrics = engine.evaluate(gr)
        if metrics.support_count > 0:
            assert metrics.lw_count - metrics.homophily_count > 0
            assert 0.0 <= metrics.nhp <= 1.0

    @given(gr_and_engine())
    @settings(max_examples=200, deadline=None)
    def test_remark1_beta_relationship(self, case):
        engine, gr = case
        metrics = engine.evaluate(gr)
        if metrics.beta == ():
            assert metrics.nhp == pytest.approx(metrics.confidence)
        elif metrics.support_count > 0:
            assert metrics.nhp >= metrics.confidence - 1e-12

    @given(gr_and_engine())
    @settings(max_examples=100, deadline=None)
    def test_support_consistency(self, case):
        engine, gr = case
        metrics = engine.evaluate(gr)
        assert 0 <= metrics.support_count <= metrics.lw_count <= metrics.num_edges
        assert 0 <= metrics.homophily_count <= metrics.lw_count


class TestTheorem2:
    @given(gr_and_engine(), st.integers(0, 2), st.integers(1, 3))
    @settings(max_examples=200, deadline=None)
    def test_adding_rhs_value_never_increases_support(self, case, attr_i, value_i):
        engine, gr = case
        schema = engine.schema
        name = schema.node_attribute_names[attr_i % len(schema.node_attribute_names)]
        attr = schema.attribute(name)
        if name in gr.rhs:
            return
        value = attr.values[(value_i - 1) % attr.domain_size]
        extended = GR(gr.lhs, gr.rhs.extend(name, value), gr.edge)
        assert (
            engine.evaluate(extended).support_count
            <= engine.evaluate(gr).support_count
        )

    @given(gr_and_engine(), st.integers(0, 2), st.integers(1, 3))
    @settings(max_examples=300, deadline=None)
    def test_nhp_antimonotone_in_safe_cases(self, case, attr_i, value_i):
        """Theorem 2(2) and 2(3): the cases where nhp cannot increase."""
        engine, gr = case
        schema = engine.schema
        name = schema.node_attribute_names[attr_i % len(schema.node_attribute_names)]
        attr = schema.attribute(name)
        if name in gr.rhs:
            return
        value = attr.values[(value_i - 1) % attr.domain_size]
        extended = GR(gr.lhs, gr.rhs.extend(name, value), gr.edge)

        base = engine.evaluate(gr)
        if base.support_count == 0:
            return
        beta_nonempty = base.beta != ()
        addition_is_safe = beta_nonempty or not (
            schema.is_homophily(name) and name in gr.lhs and gr.lhs[name] != value
        )
        if addition_is_safe:
            assert engine.evaluate(extended).nhp <= base.nhp + 1e-12


class TestRemark2:
    """The documented failure mode: adding an H^r_2 value CAN raise nhp."""

    def test_counterexample_exists_on_toy_network(self):
        from repro.datasets.toy import toy_dating_network

        engine = MetricEngine(toy_dating_network())
        # GR with beta = empty: nhp = conf = 2/6.
        base = GR(
            Descriptor({"EDU": "Grad", "SEX": "F"}),
            Descriptor({"RACE": "Latino"}),
            Descriptor({"TYPE": "dates"}),
        )
        # Adding EDU:College (homophily attribute present on the LHS
        # with a different value) flips beta to {EDU}; nhp RISES from
        # 1/3 to 1/2 — exactly why plain tree enumeration cannot prune.
        extended = GR(
            Descriptor({"EDU": "Grad", "SEX": "F"}),
            Descriptor({"RACE": "Latino", "EDU": "College"}),
            Descriptor({"TYPE": "dates"}),
        )
        base_m, ext_m = engine.evaluate(base), engine.evaluate(extended)
        assert base_m.nhp == pytest.approx(2 / 6)
        assert ext_m.nhp == pytest.approx(1 / 2)
        assert ext_m.nhp > base_m.nhp
