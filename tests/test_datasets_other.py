"""Random-graph and financial (Example 3) generators."""

import numpy as np
import pytest

from repro.analysis.homophily import attribute_assortativity
from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.datasets.financial import synthetic_financial
from repro.datasets.random_graphs import random_attributed_network, random_schema


class TestRandomSchema:
    def test_counts_and_flags(self):
        schema = random_schema(num_node_attrs=4, num_edge_attrs=2, num_homophily=2, seed=1)
        assert len(schema.node_attributes) == 4
        assert len(schema.edge_attributes) == 2
        assert schema.homophily_attribute_names == ("N0", "N1")

    def test_validation(self):
        with pytest.raises(ValueError):
            random_schema(num_node_attrs=0)
        with pytest.raises(ValueError):
            random_schema(num_node_attrs=1, num_homophily=2)


class TestRandomNetwork:
    def test_shape(self):
        network = random_attributed_network(num_nodes=40, num_edges=200, seed=1)
        assert network.num_nodes == 40
        assert network.num_edges == 200

    def test_null_injection(self):
        network = random_attributed_network(
            num_nodes=50, num_edges=100, null_fraction=0.3, seed=2
        )
        has_null = any(
            (network.node_column(a.name) == 0).any()
            for a in network.schema.node_attributes
        )
        assert has_null

    def test_homophily_knob_raises_assortativity(self):
        schema = random_schema(num_node_attrs=2, num_homophily=1, seed=5)
        weak = random_attributed_network(
            schema, num_nodes=200, num_edges=3000, homophily_strength=0.0, seed=5
        )
        strong = random_attributed_network(
            schema, num_nodes=200, num_edges=3000, homophily_strength=0.9, seed=5
        )
        assert attribute_assortativity(strong, "N0") > attribute_assortativity(
            weak, "N0"
        ) + 0.3

    def test_non_homophily_attribute_unaffected(self):
        schema = random_schema(num_node_attrs=2, num_homophily=1, seed=5)
        strong = random_attributed_network(
            schema, num_nodes=200, num_edges=3000, homophily_strength=0.9, seed=5
        )
        assert abs(attribute_assortativity(strong, "N1")) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            random_attributed_network(homophily_strength=1.5)
        with pytest.raises(ValueError):
            random_attributed_network(null_fraction=1.0)
        with pytest.raises(ValueError):
            random_attributed_network(num_nodes=1)

    def test_deterministic(self):
        a = random_attributed_network(num_nodes=30, num_edges=80, seed=11)
        b = random_attributed_network(num_nodes=30, num_edges=80, seed=11)
        assert list(a.dst) == list(b.dst)


class TestFinancialExample3:
    @pytest.fixture(scope="class")
    def network(self):
        return synthetic_financial(seed=4)

    def test_planted_bond_preference(self, network):
        """(JOB:Lawyer, PRODUCT:Stocks) -> (PRODUCT:Bonds): high nhp, low conf."""
        engine = MetricEngine(network)
        gr = GR(
            Descriptor({"JOB": "Lawyer", "PRODUCT": "Stocks"}),
            Descriptor({"PRODUCT": "Bonds"}),
        )
        m = engine.evaluate(gr)
        assert m.nhp == pytest.approx(0.72, abs=0.08)
        assert m.confidence < m.nhp - 0.2
        assert m.beta == ("PRODUCT",)

    def test_trivial_stocks_gr_is_homophily(self, network):
        gr = GR(
            Descriptor({"JOB": "Lawyer", "PRODUCT": "Stocks"}),
            Descriptor({"PRODUCT": "Stocks"}),
        )
        assert gr.is_trivial(network.schema)

    def test_miner_surfaces_the_bond_pattern(self, network):
        from repro.core.miner import GRMiner

        result = GRMiner(
            network, min_support=0.002, min_score=0.55, k=20
        ).mine()
        assert any(
            m.gr.lhs.get("PRODUCT") == "Stocks" and m.gr.rhs.get("PRODUCT") == "Bonds"
            for m in result
        )

    def test_bond_preference_validated(self):
        with pytest.raises(ValueError):
            synthetic_financial(bond_preference=0.0)
