"""Unit tests for the top-k collector and generality index."""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import GRMetrics
from repro.core.topk import GeneralityIndex, TopKCollector


def _metrics(support=5, lw=10, hom=0, edges=100):
    return GRMetrics(
        support_count=support, lw_count=lw, homophily_count=hom, num_edges=edges
    )


def _gr(name: str) -> GR:
    return GR(Descriptor({"A": name}), Descriptor({"B": name}))


class TestGeneralityIndex:
    def test_blocked_by_lhs_subset(self):
        index = GeneralityIndex()
        index.add((("A", 1),), (), (("B", 2),))
        assert index.is_blocked((("A", 1), ("C", 3)), (), (("B", 2),))

    def test_blocked_by_edge_subset(self):
        index = GeneralityIndex()
        index.add((("A", 1),), (), (("B", 2),))
        assert index.is_blocked((("A", 1),), (("W", 1),), (("B", 2),))

    def test_not_blocked_by_itself(self):
        index = GeneralityIndex()
        index.add((("A", 1),), (), (("B", 2),))
        assert not index.is_blocked((("A", 1),), (), (("B", 2),))

    def test_not_blocked_with_different_rhs(self):
        index = GeneralityIndex()
        index.add((("A", 1),), (), (("B", 2),))
        assert not index.is_blocked((("A", 1), ("C", 3)), (), (("B", 9),))

    def test_not_blocked_by_different_value(self):
        index = GeneralityIndex()
        index.add((("A", 1),), (), (("B", 2),))
        assert not index.is_blocked((("A", 2), ("C", 3)), (), (("B", 2),))

    def test_empty_lhs_entry_blocks_everything_with_that_rhs(self):
        index = GeneralityIndex()
        index.add((), (), (("B", 2),))
        assert index.is_blocked((("A", 1),), (), (("B", 2),))

    def test_len(self):
        index = GeneralityIndex()
        assert len(index) == 0
        index.add((("A", 1),), (), (("B", 2),))
        index.add((("A", 2),), (), (("B", 2),))
        assert len(index) == 2


class TestTopKCollector:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKCollector(k=0, min_score=0.0)

    def test_unbounded_collects_everything(self):
        collector = TopKCollector(k=None, min_score=0.0)
        for i in range(10):
            collector.offer(_gr(f"v{i}"), _metrics(), 0.5)
        assert len(collector) == 10

    def test_truncates_to_k(self):
        collector = TopKCollector(k=3, min_score=0.0)
        for i, score in enumerate([0.9, 0.5, 0.7, 0.8, 0.6]):
            collector.offer(_gr(f"v{i}"), _metrics(), score)
        scores = [entry.score for entry in collector.results()]
        assert scores == [0.9, 0.8, 0.7]

    def test_rank_ties_broken_by_support_then_name(self):
        collector = TopKCollector(k=None, min_score=0.0)
        collector.offer(_gr("zz"), _metrics(support=5), 0.5)
        collector.offer(_gr("aa"), _metrics(support=5), 0.5)
        collector.offer(_gr("mm"), _metrics(support=9), 0.5)
        names = [entry.gr.lhs["A"] for entry in collector.results()]
        assert names == ["mm", "aa", "zz"]

    def test_effective_threshold_upgrades_when_full(self):
        collector = TopKCollector(k=2, min_score=0.3)
        assert collector.effective_threshold == 0.3
        collector.offer(_gr("a"), _metrics(), 0.9)
        assert collector.effective_threshold == 0.3  # not full yet
        collector.offer(_gr("b"), _metrics(), 0.7)
        assert collector.effective_threshold == 0.7  # k-th best
        collector.offer(_gr("c"), _metrics(), 0.8)
        assert collector.effective_threshold == 0.8

    def test_effective_threshold_never_below_user_threshold(self):
        collector = TopKCollector(k=1, min_score=0.6)
        collector.offer(_gr("a"), _metrics(), 0.9)
        assert collector.effective_threshold == 0.9

    def test_would_admit(self):
        collector = TopKCollector(k=2, min_score=0.3)
        assert not collector.would_admit(0.2)
        assert collector.would_admit(0.4)
        collector.offer(_gr("a"), _metrics(), 0.9)
        collector.offer(_gr("b"), _metrics(), 0.8)
        assert not collector.would_admit(0.5)
        assert collector.would_admit(0.8)  # ties can still win on support

    def test_offer_below_kth_is_rejected(self):
        collector = TopKCollector(k=1, min_score=0.0)
        collector.offer(_gr("a"), _metrics(), 0.9)
        assert not collector.offer(_gr("b"), _metrics(), 0.5)
        assert len(collector) == 1

    def test_results_are_copies(self):
        collector = TopKCollector(k=None, min_score=0.0)
        collector.offer(_gr("a"), _metrics(), 0.9)
        results = collector.results()
        results.clear()
        assert len(collector) == 1


class TestMerge:
    """Recombining per-shard collections (the parallel reduce step)."""

    def _filled(self, names_scores):
        collector = TopKCollector(k=None, min_score=0.0)
        for name, score in names_scores:
            collector.offer(_gr(name), _metrics(), score)
        return collector

    def test_merge_equals_direct_collection(self):
        entries = [("a", 0.9), ("b", 0.7), ("c", 0.8), ("d", 0.6), ("e", 0.95)]
        direct = self._filled(entries)
        shard1 = self._filled(entries[:2])
        shard2 = self._filled(entries[2:])
        merged = TopKCollector.merge([shard1, shard2], k=None)
        assert [m.gr for m in merged.results()] == [m.gr for m in direct.results()]

    def test_merge_truncates_to_k(self):
        shard1 = self._filled([("a", 0.9), ("b", 0.2)])
        shard2 = self._filled([("c", 0.8), ("d", 0.5)])
        merged = TopKCollector.merge([shard1, shard2], k=2)
        assert [m.score for m in merged.results()] == [0.9, 0.8]

    def test_merge_is_order_invariant(self):
        shards = [
            self._filled([("a", 0.9), ("b", 0.7)]),
            self._filled([("c", 0.7), ("d", 0.6)]),
            self._filled([("e", 0.7)]),
        ]
        forward = TopKCollector.merge(shards, k=3).results()
        backward = TopKCollector.merge(list(reversed(shards)), k=3).results()
        assert [m.gr for m in forward] == [m.gr for m in backward]

    def test_merge_accepts_plain_entry_lists(self):
        shard = self._filled([("a", 0.9)])
        merged = TopKCollector.merge([shard.results(), []], k=None)
        assert len(merged) == 1

    def test_collector_is_iterable(self):
        collector = self._filled([("a", 0.9), ("b", 0.7)])
        assert [m.score for m in collector] == [0.9, 0.7]
