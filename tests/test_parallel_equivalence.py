"""Serial / parallel / brute-force equivalence of the sharded miner.

The parallel miner's contract is *exact* Definition 5 semantics for any
worker count: its merged result must equal the brute-force reference and
the exact serial configuration (``push_topk=False``) GR for GR, and must
be bit-for-bit deterministic across worker counts.  Serial GRMiner(k)'s
dynamic-threshold heuristic can drop below k results in the
blocker-in-pruned-subtree case (DESIGN.md §5.5) — where it doesn't, the
parallel result equals it too, which the dataset tests pin down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import BruteForceMiner
from repro.core.miner import GRMiner
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.parallel import ParallelGRMiner, ThresholdBus, plan_shards


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


_NETWORKS = {}


def _network(seed: int, null_fraction: float = 0.0):
    key = (seed, null_fraction)
    if key not in _NETWORKS:
        schema = random_schema(
            num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
        )
        _NETWORKS[key] = random_attributed_network(
            schema,
            num_nodes=20,
            num_edges=100,
            homophily_strength=0.5,
            null_fraction=null_fraction,
            seed=seed,
        )
    return _NETWORKS[key]


class TestShardPlanner:
    def test_branches_partition_exactly_once(self):
        miner = GRMiner(_network(0), k=5, min_support=2, min_score=0.3)
        plan = miner.plan_branches()
        shards = plan_shards(plan.branches, 3)
        flattened = [branch for shard in shards for branch in shard]
        assert sorted(flattened, key=lambda b: (b.token_index, b.value)) == sorted(
            plan.branches, key=lambda b: (b.token_index, b.value)
        )

    def test_deterministic_and_balanced(self):
        miner = GRMiner(_network(1), k=5, min_support=1, min_score=0.0)
        plan = miner.plan_branches()
        first = plan_shards(plan.branches, 4)
        second = plan_shards(plan.branches, 4)
        assert first == second
        loads = [sum(b.weight for b in shard) for shard in first]
        # LPT bound: no shard exceeds the ideal load by more than the
        # heaviest single branch.
        heaviest = max(b.weight for b in plan.branches)
        ideal = sum(b.weight for b in plan.branches) / len(first)
        assert max(loads) <= ideal + heaviest

    def test_single_shard_holds_everything(self):
        miner = GRMiner(_network(0), k=5, min_support=2, min_score=0.3)
        plan = miner.plan_branches()
        shards = plan_shards(plan.branches, 1)
        assert len(shards) == 1 and len(shards[0]) == len(plan.branches)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            plan_shards((), 0)


class TestThresholdBus:
    def test_publish_and_floor(self):
        bus = ThresholdBus(num_slots=3)
        try:
            assert bus.best_floor() == -np.inf
            bus.publish(0, 0.4)
            bus.publish(2, 0.7)
            bus.publish(2, 0.5)  # never lowers
            assert bus.best_floor() == 0.7
        finally:
            bus.release()

    def test_attach_sees_published_scores(self):
        bus = ThresholdBus(num_slots=2)
        try:
            bus.publish(1, 0.9)
            attached = ThresholdBus(handle=bus.handle())
            assert attached.best_floor() == 0.9
            attached.release()
        finally:
            bus.release()


class TestDatasetEquivalence:
    """Acceptance sweep: parallel == serial on the three dataset styles."""

    @pytest.fixture(scope="class")
    def datasets(self):
        from repro.datasets import synthetic_dblp, synthetic_pokec, toy_dating_network

        return {
            "toy": (toy_dating_network(), dict(min_support=2)),
            "pokec": (
                synthetic_pokec(num_sources=600, num_edges=6000, seed=20160516),
                dict(min_support=20),
            ),
            "dblp": (
                synthetic_dblp(num_authors=900, num_links=4000, seed=20160517),
                dict(min_support=20),
            ),
        }

    @pytest.mark.slow
    @pytest.mark.parametrize("rank_by", ["nhp", "confidence", "laplace", "gain"])
    @pytest.mark.parametrize("name", ["toy", "pokec", "dblp"])
    def test_workers4_equals_serial(self, datasets, name, rank_by):
        network, extra = datasets[name]
        threshold = {"nhp": 0.5, "confidence": 0.5, "laplace": 0.0, "gain": -1.0}
        params = dict(k=25, min_score=threshold[rank_by], rank_by=rank_by, **extra)
        # The exact serial configuration (existing equivalence tests pin
        # push_topk=False to the brute-force reference).
        serial_exact = GRMiner(network, push_topk=False, **params).mine()
        serial_heuristic = GRMiner(network, **params).mine()
        parallel = ParallelGRMiner(network, workers=4, **params).mine()
        assert _signature(parallel) == _signature(serial_exact)[:25]
        # GRMiner(k)'s dynamic-threshold heuristic may legitimately hold
        # fewer entries (DESIGN.md §5.5) but must never disagree on what
        # it does hold: an order-preserving subsequence of the parallel
        # result.  On these datasets it deviates at most by dropping.
        parallel_sig = _signature(parallel)
        positions = [parallel_sig.index(item) for item in _signature(serial_heuristic)]
        assert positions == sorted(positions)


class TestRandomizedEquivalence:
    """Property sweep over seeds × mining parameters (satellite 3)."""

    @pytest.mark.slow
    @given(
        seed=st.integers(0, 15),
        k=st.integers(1, 25),
        min_support=st.integers(1, 6),
        min_score=st.sampled_from([0.0, 0.3, 0.5, 0.8]),
        rank_by=st.sampled_from(["nhp", "confidence"]),
        dynamic=st.booleans(),
        null_fraction=st.sampled_from([0.0, 0.15]),
    )
    @settings(max_examples=12, deadline=None)
    def test_parallel_matches_bruteforce_and_exact_serial(
        self, seed, k, min_support, min_score, rank_by, dynamic, null_fraction
    ):
        network = _network(seed, null_fraction)
        params = dict(
            k=k, min_support=min_support, min_score=min_score, rank_by=rank_by
        )
        brute = BruteForceMiner(network, **params).mine()
        exact_serial = GRMiner(
            network, push_topk=False, dynamic_rhs_ordering=dynamic, **params
        ).mine()
        parallel = ParallelGRMiner(
            network, workers=2, dynamic_rhs_ordering=dynamic, **params
        ).mine()
        assert _signature(parallel) == _signature(brute)
        assert _signature(parallel) == _signature(exact_serial)

    @pytest.mark.slow
    @given(
        seed=st.integers(0, 15),
        k=st.integers(1, 25),
        push_topk=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_push_topk_variants_agree(self, seed, k, push_topk):
        """Both published variants shard to the same exact answer."""
        network = _network(seed)
        params = dict(k=k, min_support=2, min_score=0.3, push_topk=push_topk)
        brute = BruteForceMiner(network, k=k, min_support=2, min_score=0.3).mine()
        parallel = ParallelGRMiner(network, workers=2, **params).mine()
        assert _signature(parallel) == _signature(brute)

    @given(seed=st.integers(0, 15), k=st.integers(1, 20))
    @settings(max_examples=10, deadline=None)
    def test_serial_pushdown_is_subsequence_of_parallel(self, seed, k):
        """GRMiner(k)'s (possibly < k) verified list never contradicts
        the parallel result — it is an order-preserving subsequence."""
        network = _network(seed)
        params = dict(k=k, min_support=2, min_score=0.3)
        serial = GRMiner(network, **params).mine()
        parallel = ParallelGRMiner(network, workers=1, **params).mine()
        serial_sig, parallel_sig = _signature(serial), _signature(parallel)
        positions = []
        for item in serial_sig:
            assert item in parallel_sig
            positions.append(parallel_sig.index(item))
        assert positions == sorted(positions)


class TestWorkerCountDeterminism:
    """The answer must never depend on how the tree was sharded."""

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "params",
        [
            dict(k=10, min_support=2, min_score=0.3),
            dict(k=5, min_support=1, min_score=0.5, rank_by="confidence"),
            dict(k=15, min_support=2, min_score=0.0, push_topk=False),
            dict(k=10, min_support=2, min_score=0.3, allow_empty_lhs=True),
        ],
    )
    def test_workers_1_2_4_identical(self, params):
        network = _network(3)
        signatures = [
            _signature(ParallelGRMiner(network, workers=w, **params).mine())
            for w in (1, 2, 4)
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_shard_and_worker_metadata_recorded(self):
        result = ParallelGRMiner(
            _network(0), workers=2, k=5, min_support=2, min_score=0.3
        ).mine()
        assert result.params["workers"] == 2
        assert result.params["shards"] >= 1
        assert result.stats.grs_examined > 0


class TestEngineEquivalence:
    """Acceptance: a MiningEngine sweep answers exactly like fresh runs
    while performing one store export and one pool spawn in total."""

    _GRID = [
        dict(k=10, min_support=2, min_score=0.3),
        dict(k=5, min_support=1, min_score=0.5, rank_by="confidence"),
        dict(k=15, min_support=2, min_score=0.0, push_topk=False),
        dict(k=25, min_support=1, min_score=0.0),
        dict(k=3, min_support=3, min_score=0.4, dynamic_rhs_ordering=False),
    ]

    def test_sweep_matches_fresh_miners_with_one_setup(self):
        from repro.engine import MineRequest, MiningEngine

        network = _network(7)
        requests = [
            MineRequest.create(workers=2, **params) for params in self._GRID
        ]
        with MiningEngine(network, workers=2) as engine:
            results = engine.sweep(requests)
            assert engine.stats.exports == 1
            assert engine.stats.pool_spawns == 1
        for params, result in zip(self._GRID, results):
            fresh_parallel = ParallelGRMiner(network, workers=2, **params).mine()
            assert _signature(result) == _signature(fresh_parallel)
            # ... and therefore the exact serial Definition 5 reference.
            exact = dict(params)
            exact["push_topk"] = False
            fresh_serial = GRMiner(network, **exact).mine()
            k = params["k"]
            assert _signature(result) == _signature(fresh_serial)[:k]

    @pytest.mark.slow
    def test_engine_serial_mode_matches_fresh_serial_grminer(self):
        from repro.engine import MineRequest, MiningEngine

        network = _network(8)
        requests = [MineRequest.create(**params) for params in self._GRID]
        with MiningEngine(network) as engine:
            results = engine.sweep(requests)
            assert engine.stats.exports == 0  # serial mode never exports
        for params, result in zip(self._GRID, results):
            assert _signature(result) == _signature(GRMiner(network, **params).mine())

    @pytest.mark.slow
    def test_engine_answer_independent_of_fleet_size(self):
        from repro.engine import MineRequest, MiningEngine

        network = _network(3)
        request = MineRequest(k=10, min_support=2, min_nhp=0.3, workers=1)
        signatures = []
        for fleet in (1, 2, 4):
            with MiningEngine(network, workers=fleet) as engine:
                signatures.append(
                    _signature(engine.mine(request.with_workers(fleet)))
                )
        assert signatures[0] == signatures[1] == signatures[2]


class TestParallelEdgeCases:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelGRMiner(_network(0), workers=0, k=5)

    def test_mine_top_k_workers_keyword(self):
        from repro import mine_top_k

        network = _network(2)
        serial = mine_top_k(network, k=8, min_support=2, min_nhp=0.3, push_topk=False)
        parallel = mine_top_k(network, k=8, min_support=2, min_nhp=0.3, workers=2)
        assert _signature(parallel) == _signature(serial)[:8]

    def test_single_branch_network_runs_inline(self):
        # One node attribute with one frequent value ⇒ very few branches.
        schema = random_schema(
            num_node_attrs=1, num_edge_attrs=0, max_domain=2, num_homophily=1, seed=9
        )
        network = random_attributed_network(schema, num_nodes=5, num_edges=12, seed=9)
        serial = GRMiner(network, k=3, min_support=1, min_score=0.0, push_topk=False).mine()
        parallel = ParallelGRMiner(network, workers=4, k=3, min_support=1, min_score=0.0).mine()
        assert _signature(parallel) == _signature(serial)[:3]

    def test_empty_lhs_root_branch_is_sharded(self):
        network = _network(4)
        params = dict(k=10, min_support=2, min_score=0.2, allow_empty_lhs=True)
        brute = BruteForceMiner(network, allow_empty_lhs=True, k=10, min_support=2, min_score=0.2).mine()
        parallel = ParallelGRMiner(network, workers=3, **params).mine()
        assert _signature(parallel) == _signature(brute)
