"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import NULL, Attribute, Schema, SchemaError


class TestAttribute:
    def test_domain_size_counts_non_null_values(self):
        attr = Attribute("EDU", ("HS", "College", "Grad"))
        assert attr.domain_size == 3

    def test_codes_are_one_based(self):
        attr = Attribute("EDU", ("HS", "College", "Grad"))
        assert attr.code("HS") == 1
        assert attr.code("Grad") == 3

    def test_label_roundtrip(self):
        attr = Attribute("EDU", ("HS", "College", "Grad"))
        for label in attr.values:
            assert attr.label(attr.code(label)) == label

    def test_null_code_renders_placeholder(self):
        attr = Attribute("X", ("v",))
        assert attr.label(NULL) == "<null>"

    def test_unknown_label_raises_with_known_values(self):
        attr = Attribute("EDU", ("HS",))
        with pytest.raises(SchemaError, match="HS"):
            attr.code("PhD")

    def test_out_of_range_code_raises(self):
        attr = Attribute("EDU", ("HS",))
        with pytest.raises(SchemaError):
            attr.label(2)
        with pytest.raises(SchemaError):
            attr.label(-1)

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Attribute("X", ("a", "a"))

    def test_empty_values_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("X", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ("a",))

    def test_codes_iterates_non_null_domain(self):
        attr = Attribute("X", ("a", "b"))
        assert list(attr.codes()) == [1, 2]

    def test_homophily_flag_defaults_false(self):
        assert not Attribute("X", ("a",)).homophily
        assert Attribute("X", ("a",), homophily=True).homophily


class TestSchema:
    def test_attribute_lookup_by_kind(self, small_schema):
        assert small_schema.node_attribute("A").name == "A"
        assert small_schema.edge_attribute("W").name == "W"

    def test_attribute_lookup_any_kind(self, small_schema):
        assert small_schema.attribute("B").name == "B"
        assert small_schema.attribute("W").name == "W"

    def test_unknown_attribute_raises(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.node_attribute("Z")
        with pytest.raises(SchemaError):
            small_schema.edge_attribute("A")

    def test_homophily_names(self, small_schema):
        assert small_schema.homophily_attribute_names == ("A",)
        assert small_schema.non_homophily_attribute_names == ("B",)

    def test_is_homophily_false_for_edge_attribute(self, small_schema):
        assert not small_schema.is_homophily("W")

    def test_contains(self, small_schema):
        assert "A" in small_schema
        assert "W" in small_schema
        assert "Z" not in small_schema

    def test_iteration_order_nodes_then_edges(self, small_schema):
        assert [a.name for a in small_schema] == ["A", "B", "W"]

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Attribute("A", ("x",)), Attribute("A", ("y",))])

    def test_node_edge_name_overlap_rejected(self):
        with pytest.raises(SchemaError, match="both"):
            Schema([Attribute("A", ("x",))], [Attribute("A", ("y",))])

    def test_homophilous_edge_attribute_rejected(self):
        with pytest.raises(SchemaError, match="homophil"):
            Schema([Attribute("A", ("x",))], [Attribute("W", ("y",), homophily=True)])

    def test_schema_needs_node_attributes(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_encode_node_missing_attribute_is_null(self, small_schema):
        assert small_schema.encode_node({"A": "a2"}) == (2, NULL)

    def test_encode_node_unknown_attribute_raises(self, small_schema):
        with pytest.raises(SchemaError, match="unknown"):
            small_schema.encode_node({"Q": "x"})

    def test_encode_decode_roundtrip(self, small_schema):
        record = {"A": "a1", "B": "b3"}
        assert small_schema.decode_node(small_schema.encode_node(record)) == record

    def test_decode_omits_nulls(self, small_schema):
        assert small_schema.decode_node((0, 2)) == {"B": "b2"}

    def test_encode_edge(self, small_schema):
        assert small_schema.encode_edge({"W": "w2"}) == (2,)
        assert small_schema.encode_edge({}) == (NULL,)

    def test_equality_and_hash(self, small_schema):
        clone = Schema(
            [
                Attribute("A", ("a1", "a2"), homophily=True),
                Attribute("B", ("b1", "b2", "b3")),
            ],
            [Attribute("W", ("w1", "w2"))],
        )
        assert clone == small_schema
        assert hash(clone) == hash(small_schema)

    def test_inequality_on_homophily_flag(self, small_schema):
        other = small_schema.with_homophily(["B"])
        assert other != small_schema

    def test_with_homophily_replaces_designation(self, small_schema):
        derived = small_schema.with_homophily(["B"])
        assert derived.homophily_attribute_names == ("B",)
        assert not derived.node_attribute("A").homophily

    def test_with_homophily_unknown_name_raises(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.with_homophily(["W"])

    def test_restrict_node_attributes(self, small_schema):
        restricted = small_schema.restrict_node_attributes(["B"])
        assert restricted.node_attribute_names == ("B",)
        assert restricted.edge_attribute_names == ("W",)

    def test_restrict_to_nothing_raises(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.restrict_node_attributes([])

    def test_restrict_unknown_raises(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.restrict_node_attributes(["Z"])
