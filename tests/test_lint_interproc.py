"""The PR-10 interprocedural rules: coordinator-only-transitive,
lock-order, pickle-taint, no-shm-across-transport.

The headline case: fixtures the per-file rules *provably* miss — each
asserts the old rule stays clean on the very tree the new rule flags,
so the value of the whole-program analysis is pinned by a test, not a
claim.  Every rule also has a compliant twin (no false positive) and a
pragma case (suppression still works on analysis-produced findings).
"""

from repro.lint import run_lint


def lint_files(tmp_path, files, select=None):
    for rel, code in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")
    return run_lint([tmp_path], select=select)


def rules_fired(report):
    return {f.rule for f in report.findings}


# ---------------------------------------------------------------------------
# coordinator-only-transitive

_TRANSITIVE_MARKED = {
    "serve/app.py": (
        "from repro.engine.layer import do_work\n"
        "async def handler():\n"
        "    return do_work()\n"
    ),
    "engine/layer.py": (
        "def coordinator_only(fn):\n"
        "    return fn\n"
        "def do_work():\n"
        "    return _internal()\n"
        "@coordinator_only\n"
        "def _internal():\n"
        "    return 1\n"
    ),
}


class TestCoordinatorOnlyTransitive:
    def test_old_per_file_rule_misses_the_indirect_chain(self, tmp_path):
        """The acceptance fixture: the marked call site is in
        ``repro/engine/`` where the per-file coordinator-only rule never
        looks, so only the transitive rule can see the loop reach it."""
        report = lint_files(
            tmp_path, _TRANSITIVE_MARKED, select=["coordinator-only"]
        )
        assert report.ok  # old rule: provably clean

    def test_transitive_rule_fires_with_full_chain(self, tmp_path):
        report = lint_files(
            tmp_path,
            _TRANSITIVE_MARKED,
            select=["coordinator-only-transitive"],
        )
        assert rules_fired(report) == {"coordinator-only-transitive"}
        message = report.findings[0].message
        assert "handler" in message and "_internal" in message
        assert "->" in message  # the chain is printed hop by hop
        assert "repro/serve/app.py" in message

    def test_fires_on_transitive_blocking_primitive(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "serve/app.py": (
                    "from repro.engine.helpers import crunch\n"
                    "async def handler():\n"
                    "    return crunch()\n"
                ),
                "engine/helpers.py": (
                    "import time\n"
                    "def crunch():\n"
                    "    time.sleep(1)\n"
                ),
            },
            select=["coordinator-only-transitive"],
        )
        assert rules_fired(report) == {"coordinator-only-transitive"}
        assert "time.sleep" in report.findings[0].message
        # ...and the per-file blocking rule cannot see it
        old = lint_files(tmp_path, {}, select=["no-blocking-in-async"])
        assert old.ok

    def test_quiet_when_routed_through_run_coord(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "serve/app.py": (
                    "from repro.engine.layer import do_work\n"
                    "class S:\n"
                    "    async def handler(self):\n"
                    "        return await self._run_coord(do_work)\n"
                    "    def _run_coord(self, fn):\n"
                    "        return fn\n"
                ),
                "engine/layer.py": _TRANSITIVE_MARKED["engine/layer.py"],
            },
            select=["coordinator-only-transitive"],
        )
        assert report.ok

    def test_pragma_suppresses_at_the_final_call_site(self, tmp_path):
        files = dict(_TRANSITIVE_MARKED)
        files["engine/layer.py"] = files["engine/layer.py"].replace(
            "    return _internal()",
            "    return _internal()  # repro-lint: "
            "disable=coordinator-only-transitive -- fixture justification",
        )
        report = lint_files(
            tmp_path, files, select=["coordinator-only-transitive"]
        )
        assert report.ok
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# lock-order


class TestLockOrder:
    def test_fires_on_opposite_nesting_orders(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/locks.py": (
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self.a = threading.Lock()\n"
                    "        self.b = threading.Lock()\n"
                    "    def one(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                    "    def two(self):\n"
                    "        with self.b:\n"
                    "            with self.a:\n"
                    "                pass\n"
                ),
            },
            select=["lock-order"],
        )
        assert rules_fired(report) == {"lock-order"}
        assert "S.a" in report.findings[0].message
        assert "S.b" in report.findings[0].message

    def test_fires_on_interprocedural_cycle(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/locks.py": (
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self.a = threading.Lock()\n"
                    "        self.b = threading.Lock()\n"
                    "    def one(self):\n"
                    "        with self.a:\n"
                    "            self.grab_b()\n"
                    "    def grab_b(self):\n"
                    "        with self.b:\n"
                    "            pass\n"
                    "    def two(self):\n"
                    "        with self.b:\n"
                    "            self.grab_a()\n"
                    "    def grab_a(self):\n"
                    "        with self.a:\n"
                    "            pass\n"
                ),
            },
            select=["lock-order"],
        )
        assert rules_fired(report) == {"lock-order"}

    def test_plain_lock_self_nesting_fires_rlock_does_not(self, tmp_path):
        code = (
            "import threading\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self.a = threading.{KIND}()\n"
            "    def f(self):\n"
            "        with self.a:\n"
            "            self.g()\n"
            "    def g(self):\n"
            "        with self.a:\n"
            "            pass\n"
        )
        fires = lint_files(
            tmp_path / "lock",
            {"engine/locks.py": code.format(KIND="Lock")},
            select=["lock-order"],
        )
        assert rules_fired(fires) == {"lock-order"}
        assert "re-acquir" in fires.findings[0].message
        clean = lint_files(
            tmp_path / "rlock",
            {"engine/locks.py": code.format(KIND="RLock")},
            select=["lock-order"],
        )
        assert clean.ok

    def test_quiet_on_consistent_order(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/locks.py": (
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self.a = threading.Lock()\n"
                    "        self.b = threading.Lock()\n"
                    "    def one(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                    "    def two(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                ),
            },
            select=["lock-order"],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# pickle-taint


class TestPickleTaint:
    def test_old_rule_misses_lambda_bound_to_a_variable(self, tmp_path):
        files = {
            "engine/x.py": (
                "def f(pool):\n"
                "    cb = lambda: 1\n"
                "    pool.submit(cb)\n"
            ),
        }
        old = lint_files(tmp_path, files, select=["pickle-boundary"])
        assert old.ok  # the per-file rule only sees literal lambdas
        new = lint_files(tmp_path, files, select=["pickle-taint"])
        assert rules_fired(new) == {"pickle-taint"}

    def test_fires_on_lease_stored_on_self_and_submitted_later(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "class Engine:\n"
                    "    def open(self, store):\n"
                    "        self._lease = store.lease_shared()\n"
                    "    def go(self, pool):\n"
                    "        pool.submit(self._lease)\n"
                ),
            },
            select=["pickle-taint"],
        )
        assert rules_fired(report) == {"pickle-taint"}
        assert "lease" in report.findings[0].message

    def test_fires_on_taint_through_a_return_value(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "import threading\n"
                    "def make():\n"
                    "    return threading.Lock()\n"
                    "def f(pool):\n"
                    "    pool.submit(make())\n"
                ),
            },
            select=["pickle-taint"],
        )
        assert rules_fired(report) == {"pickle-taint"}

    def test_fires_through_a_helper_parameter(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "def send(pool, item):\n"
                    "    pool.submit(item)\n"
                    "def f(pool):\n"
                    "    bad = lambda: 2\n"
                    "    send(pool, bad)\n"
                ),
            },
            select=["pickle-taint"],
        )
        assert rules_fired(report) == {"pickle-taint"}
        assert "send" in report.findings[0].message

    def test_handle_access_sanitizes(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "def f(pool, store):\n"
                    "    lease = store.lease_shared()\n"
                    "    pool.submit(lease.handle)\n"
                ),
            },
            select=["pickle-taint"],
        )
        assert report.ok

    def test_callback_kwargs_are_exempt(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "def f(pool, task):\n"
                    "    cb = lambda r: r\n"
                    "    pool.submit(task, callback=cb)\n"
                ),
            },
            select=["pickle-taint"],
        )
        assert report.ok


# ---------------------------------------------------------------------------
# no-shm-across-transport


class TestNoShmAcrossTransport:
    def test_fires_on_handle_into_transport_send(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "serve/wire.py": (
                    "def f(transport, store):\n"
                    "    lease = store.lease_shared()\n"
                    "    transport.send(lease.handle)\n"
                ),
            },
            select=["no-shm-across-transport"],
        )
        assert rules_fired(report) == {"no-shm-across-transport"}
        assert "shared-memory" in report.findings[0].message

    def test_fires_on_handle_via_remote_dispatch(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "serve/wire.py": (
                    "def f(remote_worker, handle_src):\n"
                    "    h = handle_src.handle()\n"
                    "    remote_worker.dispatch(h)\n"
                ),
            },
            select=["no-shm-across-transport"],
        )
        assert rules_fired(report) == {"no-shm-across-transport"}

    def test_local_pool_submit_is_not_a_transport(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "engine/x.py": (
                    "def f(pool, store):\n"
                    "    lease = store.lease_shared()\n"
                    "    pool.submit(lease.handle)\n"
                ),
            },
            select=["no-shm-across-transport"],
        )
        assert report.ok

    def test_untainted_payloads_cross_transports_freely(self, tmp_path):
        report = lint_files(
            tmp_path,
            {
                "serve/wire.py": (
                    "def f(transport, payload):\n"
                    "    transport.send(payload)\n"
                ),
            },
            select=["no-shm-across-transport"],
        )
        assert report.ok
