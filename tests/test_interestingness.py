"""Section VII alternative metrics and the post-processing miner."""

import math

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.interestingness import (
    AlternativeMetricMiner,
    AlternativeMetrics,
    conviction,
    evaluate_alternatives,
    gain,
    laplace,
    lift,
    piatetsky_shapiro,
)
from repro.core.metrics import GRMetrics, MetricEngine


class TestMetricFunctions:
    def test_laplace_eqn10(self):
        # (supp*|E| + 1) / (supp_lw*|E| + k) with counts 5 and 10, k=2.
        assert laplace(0.05, 0.10, 100, k=2) == pytest.approx(6 / 12)

    def test_laplace_k_validated(self):
        with pytest.raises(ValueError):
            laplace(0.1, 0.2, 100, k=1)

    def test_gain_eqn11(self):
        assert gain(0.05, 0.10, theta=0.5) == pytest.approx(0.0)
        assert gain(0.08, 0.10, theta=0.5) == pytest.approx(0.03)

    def test_gain_theta_validated(self):
        with pytest.raises(ValueError):
            gain(0.1, 0.2, theta=1.5)

    def test_piatetsky_shapiro_eqn12(self):
        # Zero when RHS independent of LHS.
        assert piatetsky_shapiro(0.06, 0.2, 0.3) == pytest.approx(0.0)
        assert piatetsky_shapiro(0.10, 0.2, 0.3) == pytest.approx(0.04)

    def test_conviction_eqn13(self):
        # conf = 0.5, supp_r = 0.4 -> (1-0.4)/(1-0.5) = 1.2.
        assert conviction(0.5, 0.4) == pytest.approx(1.2)

    def test_conviction_infinite_at_full_confidence(self):
        assert math.isinf(conviction(1.0, 0.4))

    def test_lift_eqn14(self):
        assert lift(0.6, 0.3) == pytest.approx(2.0)
        assert lift(0.3, 0.3) == pytest.approx(1.0)

    def test_lift_zero_base_rate(self):
        assert lift(0.5, 0.0) == 0.0


class TestAlternativeMetrics:
    def test_compute_from_base_metrics(self):
        base = GRMetrics(support_count=10, lw_count=20, homophily_count=0, num_edges=100)
        alt = AlternativeMetrics.compute(base, r_count=30)
        assert alt.supp_r == pytest.approx(0.3)
        assert alt.laplace == pytest.approx(11 / 22)
        assert alt.gain == pytest.approx((10 - 0.5 * 20) / 100)
        assert alt.piatetsky_shapiro == pytest.approx(0.1 - 0.2 * 0.3)
        assert alt.conviction == pytest.approx((1 - 0.3) / (1 - 0.5))
        assert alt.lift == pytest.approx(0.5 / 0.3)

    def test_value_accessor(self):
        base = GRMetrics(support_count=10, lw_count=20, homophily_count=0, num_edges=100)
        alt = AlternativeMetrics.compute(base, r_count=30)
        assert alt.value("lift") == alt.lift
        with pytest.raises(ValueError):
            alt.value("nonsense")


class TestEvaluateAlternatives:
    def test_on_toy_gr1(self, toy_network):
        gr1 = GR(
            Descriptor({"SEX": "M"}),
            Descriptor({"SEX": "F", "RACE": "Asian"}),
            Descriptor({"TYPE": "dates"}),
        )
        alt = evaluate_alternatives(toy_network, gr1)
        engine = MetricEngine(toy_network)
        r_count = engine.rhs_support_count(gr1.rhs)
        assert alt.supp_r == pytest.approx(r_count / 30)
        # lift > 1: men reach Asian women above base rate.
        assert alt.lift > 1.0


class TestAlternativeMetricMiner:
    @pytest.mark.parametrize("metric", ["lift", "conviction", "piatetsky_shapiro"])
    def test_scores_match_direct_evaluation(self, toy_network, metric):
        result = AlternativeMetricMiner(
            toy_network, metric=metric, min_support=2, min_score=0.0, k=10
        ).mine()
        assert result
        for mined in result:
            direct = evaluate_alternatives(toy_network, mined.gr)
            assert mined.score == pytest.approx(direct.value(metric))

    def test_ranking_is_descending(self, toy_network):
        result = AlternativeMetricMiner(
            toy_network, metric="lift", min_support=2, k=None
        ).mine()
        scores = [m.score for m in result]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_respected(self, toy_network):
        result = AlternativeMetricMiner(
            toy_network, metric="lift", min_support=2, min_score=1.5, k=None
        ).mine()
        assert all(m.score >= 1.5 for m in result)

    def test_generality_applied(self, toy_network):
        result = AlternativeMetricMiner(
            toy_network, metric="lift", min_support=2, min_score=1.0, k=None
        ).mine()
        identities = {(m.gr.lhs, m.gr.edge, m.gr.rhs) for m in result}
        for m in result:
            for g in m.gr.generalizations():
                assert (g.lhs, g.edge, g.rhs) not in identities

    def test_generality_can_be_disabled(self, toy_network):
        with_g = AlternativeMetricMiner(
            toy_network, metric="lift", min_support=2, min_score=1.0, k=None
        ).mine()
        without_g = AlternativeMetricMiner(
            toy_network,
            metric="lift",
            min_support=2,
            min_score=1.0,
            k=None,
            apply_generality=False,
        ).mine()
        assert len(without_g) >= len(with_g)

    def test_unknown_metric_rejected(self, toy_network):
        with pytest.raises(ValueError):
            AlternativeMetricMiner(toy_network, metric="magic")

    def test_lift_reranks_skewed_rhs_down(self, toy_network):
        """The paper's D1 observation: lift discounts popular RHS values.

        A GR pointing at a dominant value can top the conf ranking while
        its lift stays near 1."""
        from repro.core.baselines import ConfidenceMiner

        conf_result = ConfidenceMiner(
            toy_network, min_support=3, min_score=0.0, k=None, include_trivial=False
        ).mine()
        lift_result = AlternativeMetricMiner(
            toy_network, metric="lift", min_support=3, min_score=0.0, k=None
        ).mine()
        conf_order = [str(m.gr) for m in conf_result]
        lift_order = [str(m.gr) for m in lift_result]
        assert conf_order != lift_order
