"""EngineHub: many mutable networks, one fleet, tiered caching.

The hub's contract extends the engine's three legs:

1. **Sharing** — any number of registered networks are served through
   exactly one worker-pool spawn and one bus pool, with at most one
   live shared-memory lease per resident network (LRU-evicted under the
   memory budget).
2. **Exactness under mutation** — every hub answer equals a fresh
   one-shot miner over the network's *current* edge set, including
   after ``append_edges`` deltas.
3. **Invalidation precision** — a delta purges exactly the mutated
   network's old-fingerprint cache entries (memory and disk tier);
   untouched networks keep their hits and leases.
4. **Persistence** — with a disk cache, a restarted process answers a
   previously mined query without mining at all.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.core.miner import GRMiner
from repro.datasets.random_graphs import random_attributed_network, random_schema
from repro.engine import (
    DiskResultCache,
    EngineHub,
    MineRequest,
    ResultCache,
    TieredResultCache,
)
from repro.parallel import ParallelGRMiner


def _signature(result):
    return [(str(m.gr), round(m.score, 9), m.metrics.support_count) for m in result]


def _make_network(seed: int, num_edges: int = 100):
    schema = random_schema(
        num_node_attrs=3, num_edge_attrs=1, max_domain=3, num_homophily=2, seed=seed
    )
    return random_attributed_network(
        schema, num_nodes=20, num_edges=num_edges, homophily_strength=0.5, seed=seed
    )


def _fresh(network, request: MineRequest):
    kwargs = dict(
        k=request.k,
        min_support=request.min_support,
        min_score=request.min_nhp,
        rank_by=request.rank_by,
        push_topk=request.push_topk,
        **dict(request.options),
    )
    if request.workers is None:
        return GRMiner(network, **kwargs).mine()
    return ParallelGRMiner(network, workers=request.workers, **kwargs).mine()


def _delta(network, count: int, seed: int = 0):
    """A valid random edge batch for ``network``."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, network.num_nodes, count)
    dst = rng.integers(0, network.num_nodes, count)
    edge_codes = {
        name: rng.integers(
            1, network.schema.edge_attribute(name).domain_size + 1, count
        )
        for name in network.schema.edge_attribute_names
    }
    return src, dst, edge_codes


class TestHubRegistry:
    def test_register_and_lookup(self):
        with EngineHub(workers=1) as hub:
            hub.register("a", _make_network(1))
            assert "a" in hub and hub.names() == ["a"] and len(hub) == 1
            assert hub.network("a").num_edges == 100
            with pytest.raises(ValueError, match="already registered"):
                hub.register("a", _make_network(2))
            with pytest.raises(KeyError, match="no network"):
                hub.mine("missing", k=3)

    def test_closed_hub_refuses_everything(self):
        hub = EngineHub(workers=1)
        hub.register("a", _make_network(1))
        hub.close()
        hub.close()  # idempotent
        assert hub.closed
        with pytest.raises(RuntimeError):
            hub.mine("a", k=3)
        with pytest.raises(RuntimeError):
            hub.register("b", _make_network(2))


class TestHubEquivalence:
    """Acceptance: hub answers equal fresh one-shot miners, with one
    pool spawn total and one live lease per resident network."""

    def test_interleaved_two_network_traffic(self):
        nets = {"a": _make_network(1), "b": _make_network(2)}
        requests = [
            MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=5, min_support=1, min_nhp=0.5, rank_by="confidence",
                        workers=2),
            MineRequest(k=6, min_support=2, min_nhp=0.4),  # serial mode
        ]
        with EngineHub(workers=2) as hub:
            for name, network in nets.items():
                hub.register(name, network)
            # Alternate networks per query — the worst case for any
            # per-store caching in the workers.
            for request in requests:
                for name in ("a", "b", "a"):
                    result = hub.mine(name, request)
                    assert _signature(result) == _signature(
                        _fresh(nets[name], request)
                    ), f"hub diverged on {name}: {request.describe()}"
            assert hub.pool_spawns == 1
            assert hub.stats("a").pool_spawns == 0  # fleet is hub-owned
            # One live lease per resident network, nothing orphaned.
            assert sorted(hub.resident_networks()) == ["a", "b"]
            assert len(hub._leases) == 2
        assert hub.resident_networks() == []

    def test_sweep_through_hub_matches_engine_semantics(self):
        network = _make_network(3)
        requests = [
            MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2),
            MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2),  # dup
            MineRequest(k=4, min_support=2, min_nhp=0.5),
        ]
        with EngineHub(workers=2) as hub:
            hub.register("n", network)
            results = hub.sweep("n", requests)
            stats = hub.stats("n")
            assert stats.cache_misses == 2 and stats.cache_hits == 1
        for request, result in zip(requests, results):
            assert _signature(result) == _signature(_fresh(network, request))


class TestDeltaInvalidation:
    """Satellite: append_edges invalidates exactly the stale entries."""

    def test_hub_equals_fresh_miner_after_delta(self):
        network = _make_network(4)
        request = MineRequest(k=10, min_support=2, min_nhp=0.3, workers=2)
        serial = MineRequest(k=10, min_support=2, min_nhp=0.3)
        with EngineHub(workers=2) as hub:
            hub.register("n", network)
            before = hub.mine("n", request)
            assert _signature(before) == _signature(_fresh(network, request))
            old_fp = hub.engine("n").fingerprint

            new_fp = hub.append_edges("n", *_delta(network, 25, seed=7))
            assert new_fp != old_fp
            assert hub.engine("n").fingerprint == new_fp

            # Sharded and serial modes both see the mutated edge set.
            after = hub.mine("n", request)
            assert _signature(after) == _signature(_fresh(network, request))
            after_serial = hub.mine("n", serial)
            assert _signature(after_serial) == _signature(_fresh(network, serial))
            # Still one fleet; the store was re-exported exactly once.
            assert hub.pool_spawns == 1
            assert hub.stats("n").exports == 2
            assert hub.stats("n").invalidations == 1

    def test_old_fingerprint_entries_are_purged(self):
        network = _make_network(5)
        with EngineHub(workers=1, cache_size=32) as hub:
            hub.register("n", network)
            hub.mine("n", k=5, min_support=2, min_nhp=0.3)
            hub.mine("n", k=3, min_support=1, min_nhp=0.5)
            old_fp = hub.engine("n").fingerprint
            assert len(hub.cache) == 2
            hub.append_edges("n", *_delta(network, 10, seed=1))
            assert len(hub.cache) == 0  # dead keys do not pollute the LRU
            assert hub.stats("n").purged_entries == 2
            # A post-delta repeat really re-mines (no stale hit).
            hub.mine("n", k=5, min_support=2, min_nhp=0.3)
            assert hub.stats("n").cache_hits == 0
            assert old_fp != hub.engine("n").fingerprint

    def test_untouched_network_keeps_its_cache_and_lease(self):
        nets = {"a": _make_network(6), "b": _make_network(7)}
        request = MineRequest(k=8, min_support=2, min_nhp=0.3, workers=2)
        with EngineHub(workers=2) as hub:
            for name, network in nets.items():
                hub.register(name, network)
            hub.mine("a", request)
            hub.mine("b", request)
            lease_b = hub._leases["b"]
            hub.append_edges("a", *_delta(nets["a"], 15, seed=2))
            # b's lease survived the delta to a...
            assert hub._leases["b"] is lease_b and not lease_b.closed
            assert "a" not in hub._leases  # a's stale lease retired
            # ...and so did b's cache entry.
            again = hub.mine("b", request)
            assert hub.stats("b").cache_hits == 1
            assert again.params["cached"] is True
            assert hub.stats("b").invalidations == 0

    def test_delta_to_empty_batch_is_a_noop(self):
        network = _make_network(6)
        with EngineHub(workers=1) as hub:
            hub.register("n", network)
            hub.mine("n", k=5, min_support=2, min_nhp=0.3)
            fp = hub.engine("n").fingerprint
            new_fp = hub.append_edges("n", [], [], {
                name: [] for name in network.schema.edge_attribute_names
            })
            assert new_fp == fp
            assert hub.stats("n").invalidations == 0
            hub.mine("n", k=5, min_support=2, min_nhp=0.3)
            assert hub.stats("n").cache_hits == 1


class TestLeaseBudget:
    def test_lru_eviction_under_memory_budget(self):
        nets = {"a": _make_network(1), "b": _make_network(2)}
        request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        # A budget of one byte forces single-residency (the in-flight
        # network's lease is exempt, so serving still works).
        with EngineHub(workers=2, lease_budget_bytes=1) as hub:
            for name, network in nets.items():
                hub.register(name, network)
            hub.mine("a", request)
            assert hub.resident_networks() == ["a"]
            result = hub.mine("b", request)
            assert _signature(result) == _signature(_fresh(nets["b"], request))
            assert hub.resident_networks() == ["b"]
            assert hub.lease_evictions == 1
            # An evicted lease does not evict results: a's repeat query
            # is a cache hit and touches no shared memory at all.
            repeat = hub.mine("a", request)
            assert hub.stats("a").cache_hits == 1
            assert hub.resident_networks() == ["b"]
            # A *new* pooled query for a re-exports and evicts b in turn.
            fresh_request = MineRequest(k=4, min_support=2, min_nhp=0.4, workers=2)
            again = hub.mine("a", fresh_request)
            assert _signature(again) == _signature(_fresh(nets["a"], fresh_request))
            assert hub.resident_networks() == ["a"]
            assert hub.stats("a").exports == 2
            assert hub.lease_evictions == 2
        assert hub.resident_networks() == []

    def test_unbudgeted_hub_keeps_all_leases(self):
        request = MineRequest(k=5, min_support=2, min_nhp=0.3, workers=2)
        with EngineHub(workers=2) as hub:
            for seed, name in enumerate(("a", "b", "c"), start=1):
                hub.register(name, _make_network(seed))
                hub.mine(name, request)
            assert sorted(hub.resident_networks()) == ["a", "b", "c"]
            assert hub.lease_evictions == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            EngineHub(workers=1, lease_budget_bytes=0)


class TestDiskCache:
    def test_restarted_process_serves_from_disk_without_mining(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: kill the hub, start a new one on the same disk
        cache, repeat a query — zero mining calls."""
        path = tmp_path / "results.sqlite"
        network = _make_network(8)
        request = MineRequest(k=10, min_support=2, min_nhp=0.3)
        with EngineHub(workers=1, disk_cache=path) as hub:
            hub.register("n", network)
            reference = _signature(hub.mine("n", request))

        # "Restart": a brand-new hub (fresh process state) on the file.
        def _no_mining(*args, **kwargs):
            raise AssertionError("query must be served from the disk cache")

        monkeypatch.setattr(GRMiner, "mine", _no_mining)
        monkeypatch.setattr(GRMiner, "plan_branches", _no_mining)
        with EngineHub(workers=1, disk_cache=path) as hub:
            hub.register("n", _make_network(8))  # same content, same fingerprint
            warm = hub.mine("n", request)
            stats = hub.stats("n")
            assert stats.cache_hits == 1 and stats.cache_misses == 0
            assert hub.pool_spawns == 0  # not even the fleet was needed
        assert _signature(warm) == reference

    def test_disk_hits_promote_to_memory(self, tmp_path):
        disk = DiskResultCache(tmp_path / "cache.sqlite")
        memory = ResultCache(maxsize=4)
        tiered = TieredResultCache(memory, disk)
        key = ("fp", ("serial", 1))
        disk.put(key, {"payload": 1})
        assert len(memory) == 0
        assert tiered.get(key) == {"payload": 1}
        assert len(memory) == 1  # promoted
        disk.clear()
        assert tiered.get(key) == {"payload": 1}  # now served by memory

    def test_corrupt_file_degrades_to_miss_and_recreates(self, tmp_path):
        path = tmp_path / "corrupt.sqlite"
        path.write_bytes(b"this is not a sqlite database at all")
        cache = DiskResultCache(path)
        assert cache.get(("fp", "key")) is None
        cache.put(("fp", "key"), 42)
        assert cache.get(("fp", "key")) == 42  # fully functional again
        cache.close()

    def test_unopenable_path_raises_instead_of_silently_disabling(self, tmp_path):
        # A typo'd --disk-cache must not silently lose persistence.
        import sqlite3

        with pytest.raises((sqlite3.Error, OSError)):
            DiskResultCache(tmp_path / "no" / "such" / "dir" / "cache.sqlite")

    def test_corrupt_row_is_dropped_not_raised(self, tmp_path):
        path = tmp_path / "rows.sqlite"
        cache = DiskResultCache(path)
        key = ("fp", "key")
        cache.put(key, 42)
        fingerprint, ckey = cache._split(key)
        cache._conn.execute(
            "UPDATE results SET value = ? WHERE fingerprint = ? AND ckey = ?",
            (b"\x80garbage", fingerprint, ckey),
        )
        cache._conn.commit()
        assert cache.get(key) is None
        assert key not in cache  # the poisoned row was deleted
        cache.close()

    def test_purge_fingerprint_reaches_the_disk_tier(self, tmp_path):
        cache = DiskResultCache(tmp_path / "purge.sqlite")
        cache.put(("old", "k1"), 1)
        cache.put(("old", "k2"), 2)
        cache.put(("new", "k1"), 3)
        assert cache.purge_fingerprint("old") == 2
        assert len(cache) == 1 and cache.get(("new", "k1")) == 3
        cache.close()

    def test_snapshot_semantics_on_both_tiers(self, tmp_path):
        tiered = TieredResultCache(
            ResultCache(maxsize=4), DiskResultCache(tmp_path / "snap.sqlite")
        )
        value = {"grs": [1, 2, 3]}
        tiered.put(("fp", "k"), value)
        value["grs"].clear()  # post-put mutation must not reach the cache
        first = tiered.get(("fp", "k"))
        assert first == {"grs": [1, 2, 3]}
        first["grs"].clear()  # nor must mutating a returned hit
        assert tiered.get(("fp", "k")) == {"grs": [1, 2, 3]}
        tiered.close()


class TestDiskCacheEviction:
    """Satellite: the sqlite tier no longer grows unboundedly."""

    def test_max_bytes_evicts_lru_by_last_used(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_module

        clock = [1000.0]
        monkeypatch.setattr(cache_module, "_now", lambda: clock[0])
        # Each pickled payload is ~size bytes; cap fits roughly two.
        payload = b"x" * 100
        cache = DiskResultCache(tmp_path / "cap.sqlite", max_bytes=250)
        for name in ("k1", "k2", "k3"):
            clock[0] += 1
            cache.put(("fp", name), payload)
        assert len(cache) == 2  # k1 (oldest) already evicted
        assert cache.get(("fp", "k1")) is None
        clock[0] += 1
        assert cache.get(("fp", "k2")) is not None  # refreshes last_used
        clock[0] += 1
        cache.put(("fp", "k4"), payload)
        # k3 became the LRU once k2 was refreshed, so k3 went, k2 stayed.
        assert cache.get(("fp", "k3")) is None
        assert cache.get(("fp", "k2")) is not None
        assert cache.get(("fp", "k4")) is not None
        assert cache.evictions == 2
        assert cache.total_bytes() <= 250
        cache.close()

    def test_oversized_single_value_is_stored_not_thrashed(self, tmp_path):
        cache = DiskResultCache(tmp_path / "big.sqlite", max_bytes=10)
        cache.put(("fp", "huge"), b"y" * 1000)
        assert cache.get(("fp", "huge")) is not None  # kept despite the cap
        cache.put(("fp", "huge2"), b"z" * 1000)
        assert len(cache) == 1  # but it is the first to go for the next one
        cache.close()

    def test_ttl_expires_unused_entries(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_module

        clock = [0.0]
        monkeypatch.setattr(cache_module, "_now", lambda: clock[0])
        cache = DiskResultCache(tmp_path / "ttl.sqlite", ttl_seconds=10.0)
        cache.put(("fp", "stale"), 1)
        cache.put(("fp", "kept"), 2)
        clock[0] = 8.0
        assert cache.get(("fp", "kept")) == 2  # refreshed inside the window
        clock[0] = 15.0  # "stale" is 15s old, "kept" only 7s
        assert cache.get(("fp", "stale")) is None  # lazy expiry on access
        assert cache.get(("fp", "kept")) == 2
        assert cache.expirations == 1
        # Bulk expiry on put removes stale rows without touching them.
        clock[0] = 40.0
        cache.put(("fp", "new"), 3)
        assert len(cache) == 1 and cache.get(("fp", "new")) == 3
        cache.close()

    def test_ttl_aware_introspection(self, tmp_path, monkeypatch):
        """Regression: ``__contains__`` and ``__len__`` reported
        TTL-expired rows that ``get`` would refuse to serve, so
        ``key in cache`` disagreed with ``cache.get(key)``."""
        import repro.engine.cache as cache_module

        clock = [0.0]
        monkeypatch.setattr(cache_module, "_now", lambda: clock[0])
        cache = DiskResultCache(tmp_path / "intro.sqlite", ttl_seconds=10.0)
        cache.put(("fp", "k"), 1)
        assert ("fp", "k") in cache and len(cache) == 1
        clock[0] = 11.0
        assert ("fp", "k") not in cache  # agrees with get()
        assert len(cache) == 0
        # Introspection is non-mutating: the row is still on disk for
        # the lazy expiry on access to account for.
        assert cache.expirations == 0
        assert cache.get(("fp", "k")) is None
        assert cache.expirations == 1
        cache.close()

    def test_tiered_contains_is_ttl_aware(self, tmp_path, monkeypatch):
        import repro.engine.cache as cache_module

        clock = [0.0]
        monkeypatch.setattr(cache_module, "_now", lambda: clock[0])
        disk = DiskResultCache(tmp_path / "tiered.sqlite", ttl_seconds=10.0)
        # A zero-capacity memory tier forces every probe to the disk
        # tier, whose TTL view is the one under test.
        tiered = TieredResultCache(ResultCache(0), disk)
        tiered.put(("fp", "k"), 1)
        assert ("fp", "k") in tiered
        clock[0] = 11.0
        assert ("fp", "k") not in tiered
        assert tiered.get(("fp", "k")) is None
        tiered.close()

    def test_pre_eviction_files_are_migrated_in_place(self, tmp_path):
        import pickle
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE results (fingerprint TEXT NOT NULL,"
            " ckey BLOB NOT NULL, value BLOB NOT NULL,"
            " PRIMARY KEY (fingerprint, ckey))"
        )
        key = ("fp", "legacy")
        conn.execute(
            "INSERT INTO results VALUES (?, ?, ?)",
            ("fp", pickle.dumps(key, protocol=4), pickle.dumps(42, protocol=4)),
        )
        conn.commit()
        conn.close()
        cache = DiskResultCache(path, max_bytes=10_000, ttl_seconds=3600)
        assert cache.get(key) == 42  # legacy row readable and evictable
        assert cache.total_bytes() > 0  # size backfilled from LENGTH(value)
        cache.put(("fp", "new"), 43)
        assert cache.get(("fp", "new")) == 43
        cache.close()

    def test_bounds_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DiskResultCache(tmp_path / "x.sqlite", max_bytes=0)
        with pytest.raises(ValueError):
            DiskResultCache(tmp_path / "y.sqlite", ttl_seconds=0)

    def test_hub_wires_disk_bounds_through(self, tmp_path):
        with EngineHub(
            workers=1,
            disk_cache=tmp_path / "hub.sqlite",
            disk_cache_max_bytes=50_000,
            disk_cache_ttl_seconds=3600,
        ) as hub:
            hub.register("n", _make_network(9))
            hub.mine("n", k=5, min_support=2, min_nhp=0.3)
            disk = hub.cache.disk
            assert disk.max_bytes == 50_000 and disk.ttl_seconds == 3600
            assert len(disk) == 1


class TestWorkerStoreRotation:
    """Per-task store attach: one worker serving many segment names."""

    def test_worker_attachment_table_is_bounded(self):
        from repro.parallel.worker import StoreAttachment, WorkerState, _task_attachment
        from repro.data.store import CompactStore

        state = WorkerState(refresh_every=64, max_attachments=2)
        leases = []
        try:
            for seed in (1, 2, 3):
                store = CompactStore(_make_network(seed, num_edges=40))
                lease = store.lease_shared()
                leases.append(lease)
                attachment = _task_attachment(state, lease.handle)
                assert isinstance(attachment, StoreAttachment)
                assert attachment.store.num_edges == 40
            assert len(state.attachments) == 2  # LRU-bounded
            # Re-touching a live attachment is served from the table.
            again = _task_attachment(state, leases[-1].handle)
            assert again is state.attachments[leases[-1].name]
        finally:
            state.attachments.clear()
            for lease in leases:
                lease.close()

    def test_store_less_state_rejects_handleless_tasks(self):
        from repro.parallel.worker import WorkerState, _task_attachment

        with pytest.raises(RuntimeError, match="without a default store"):
            _task_attachment(WorkerState(refresh_every=64), None)
