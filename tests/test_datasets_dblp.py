"""The synthetic DBLP generator reproduces Table IIb's structure."""

import pytest

from repro.core.descriptors import GR, Descriptor
from repro.core.metrics import MetricEngine
from repro.datasets.dblp import dblp_schema, synthetic_dblp


@pytest.fixture(scope="module")
def network():
    return synthetic_dblp(seed=2)


@pytest.fixture(scope="module")
def engine(network):
    return MetricEngine(network)


def _metrics(engine, l, r, w=None):
    return engine.evaluate(GR(Descriptor(l), Descriptor(r), Descriptor(w or {})))


class TestSchema:
    def test_attributes_match_paper(self):
        schema = dblp_schema()
        assert set(schema.node_attribute("Area").values) == {"DB", "DM", "AI", "IR"}
        assert set(schema.node_attribute("Productivity").values) == {
            "Poor",
            "Fair",
            "Good",
            "Excellent",
        }
        assert set(schema.edge_attribute("Strength").values) == {
            "occasional",
            "moderate",
            "often",
        }

    def test_area_homophilous_productivity_not(self):
        schema = dblp_schema()
        assert schema.is_homophily("Area")
        assert not schema.is_homophily("Productivity")


class TestGeneration:
    def test_paper_scale(self, network):
        assert network.num_edges == 66_832  # 2 * 33,416 links
        assert 20_000 <= network.num_nodes <= 35_000  # ~28,702 authors

    def test_edges_are_mirrored(self, network):
        n = network.num_edges // 2
        assert list(network.src[:n]) == list(network.dst[n:])
        assert list(network.dst[:n]) == list(network.src[n:])

    def test_mirrored_edges_share_strength(self, network):
        n = network.num_edges // 2
        strength = network.edge_column("Strength")
        assert list(strength[:n]) == list(strength[n:])

    def test_poor_author_share_matches_paper(self, network):
        """Section VI-C: 91.18% of authors have Poor productivity."""
        poor = network.schema.node_attribute("Productivity").code("Poor")
        share = (network.node_column("Productivity") == poor).mean()
        assert share == pytest.approx(0.9118, abs=0.03)

    def test_dm_is_smallest_area(self, network):
        import numpy as np

        areas = network.node_column("Area")
        counts = np.bincount(areas, minlength=5)[1:]
        dm = network.schema.node_attribute("Area").code("DM")
        assert counts[dm - 1] == counts.min()

    def test_deterministic_by_seed(self):
        a = synthetic_dblp(num_authors=500, num_links=800, seed=3)
        b = synthetic_dblp(num_authors=500, num_links=800, seed=3)
        assert list(a.src) == list(b.src)
        assert list(a.edge_column("Strength")) == list(b.edge_column("Strength"))


class TestPlantedPatterns:
    def test_within_area_confidence_band(self, engine):
        """Table IIb conf column: same-area GRs at ≈ 0.72–0.89."""
        for area, target in [("DB", 0.887), ("AI", 0.888), ("IR", 0.759), ("DM", 0.723)]:
            conf = _metrics(engine, {"Area": area}, {"Area": area}).confidence
            assert conf == pytest.approx(target, abs=0.06), area

    def test_d1_ai_to_poor(self, engine):
        m = _metrics(engine, {"Area": "AI"}, {"Productivity": "Poor"})
        assert m.nhp == pytest.approx(0.743, abs=0.05)
        assert m.nhp == m.confidence  # beta is empty: Productivity non-homophily

    def test_d2_db_often_to_dm(self, engine):
        m = _metrics(engine, {"Area": "DB"}, {"Area": "DM"}, {"Strength": "often"})
        assert m.nhp == pytest.approx(0.715, abs=0.09)
        assert m.confidence < 0.15  # buried by the conf ranking ...
        assert m.nhp > 0.5  # ... surfaced by nhp
        assert m.support_count >= 67  # above the paper's absolute minSupp

    def test_d3_poor_to_poor(self, engine):
        m = _metrics(engine, {"Productivity": "Poor"}, {"Productivity": "Poor"})
        assert m.nhp == pytest.approx(0.706, abs=0.07)

    def test_d4_excellent_to_db(self, engine):
        m = _metrics(engine, {"Productivity": "Excellent"}, {"Area": "DB"})
        assert m.nhp == pytest.approx(0.681, abs=0.08)

    def test_d5_ir_to_poor(self, engine):
        m = _metrics(engine, {"Area": "IR"}, {"Productivity": "Poor"})
        assert m.nhp == pytest.approx(0.681, abs=0.05)

    def test_d16_ai_good_to_dm(self, engine):
        m = _metrics(
            engine, {"Area": "AI", "Productivity": "Good"}, {"Area": "DM"}
        )
        assert m.nhp == pytest.approx(0.552, abs=0.09)
        assert m.confidence < 0.2

    def test_d2_nhp_exceeds_d2_conf_by_an_order(self, engine):
        """The headline Table IIb contrast: nhp ≈ 10x conf for D2."""
        m = _metrics(engine, {"Area": "DB"}, {"Area": "DM"}, {"Strength": "often"})
        assert m.nhp > 5 * m.confidence
