"""Unit tests for the single-table materialization (BL1's storage model)."""

from repro.data.edgetable import EdgeTable, lhs_column, rhs_column, split_column


class TestColumnNames:
    def test_lhs_rhs_suffixes(self):
        assert lhs_column("EDU") == "EDU^l"
        assert rhs_column("EDU") == "EDU^r"

    def test_split_roundtrip(self):
        assert split_column("EDU^l") == ("EDU", "L")
        assert split_column("EDU^r") == ("EDU", "R")
        assert split_column("W") == ("W", "W")


class TestMaterialization:
    def test_column_set(self, small_network):
        table = EdgeTable(small_network)
        assert set(table.column_names) == {"A^l", "A^r", "B^l", "B^r", "W"}

    def test_row_count_is_edge_count(self, small_network):
        table = EdgeTable(small_network)
        assert table.num_rows == small_network.num_edges

    def test_lhs_columns_replicate_source_attributes(self, small_network):
        table = EdgeTable(small_network)
        assert list(table.column("A^l")) == list(small_network.source_values("A"))
        assert list(table.column("B^l")) == list(small_network.source_values("B"))

    def test_rhs_columns_replicate_destination_attributes(self, small_network):
        table = EdgeTable(small_network)
        assert list(table.column("A^r")) == list(small_network.dest_values("A"))

    def test_edge_columns_passthrough(self, small_network):
        table = EdgeTable(small_network)
        assert list(table.column("W")) == list(small_network.edge_column("W"))

    def test_domain_sizes(self, small_network):
        table = EdgeTable(small_network)
        assert table.domain_sizes["A^l"] == 2
        assert table.domain_sizes["B^r"] == 3
        assert table.domain_sizes["W"] == 2

    def test_size_cells_matches_paper_formula(self, small_network):
        table = EdgeTable(small_network)
        assert table.size_cells() == small_network.num_edges * (2 * 2 + 1)
