"""Multi-process GR mining: shard the SFDF tree, trade thresholds, merge.

The paper's GRMiner walks the enumeration tree serially; this package
exploits the tree's embarrassingly parallel first level.  See
:class:`ParallelGRMiner` for the one-shot orchestration,
:mod:`repro.parallel.planner` for degree-weighted shard packing,
:mod:`repro.parallel.bus` for the best-effort dynamic-threshold
exchange, :mod:`repro.parallel.pool` for the long-lived worker-fleet
and bus lifecycle used by :class:`repro.engine.MiningEngine`, and
:mod:`repro.parallel.worker` for per-shard execution and the
cross-shard generality verification that keeps the merged result
exactly equal to the serial miner's Definition 5 semantics.
"""

from .bus import SharedThresholdCollector, ThresholdBus
from .miner import (
    ParallelGRMiner,
    check_worker_count,
    execute_shards_inline,
    merge_shard_results,
)
from .planner import plan_shards
from .pool import BusPool, PersistentWorkerPool, default_start_method
from .worker import CrossShardGeneralityVerifier, ShardResult, ShardTask, run_shard

__all__ = [
    "BusPool",
    "CrossShardGeneralityVerifier",
    "ParallelGRMiner",
    "PersistentWorkerPool",
    "SharedThresholdCollector",
    "ShardResult",
    "ShardTask",
    "ThresholdBus",
    "check_worker_count",
    "default_start_method",
    "execute_shards_inline",
    "merge_shard_results",
    "plan_shards",
    "run_shard",
]
