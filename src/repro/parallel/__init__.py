"""Multi-process GR mining: shard the SFDF tree, trade thresholds, merge.

The paper's GRMiner walks the enumeration tree serially; this package
exploits the tree's embarrassingly parallel first level.  See
:class:`ParallelGRMiner` for the orchestration,
:mod:`repro.parallel.planner` for degree-weighted shard packing,
:mod:`repro.parallel.bus` for the best-effort dynamic-threshold
exchange, and :mod:`repro.parallel.worker` for per-shard execution and
the cross-shard generality verification that keeps the merged result
exactly equal to the serial miner's Definition 5 semantics.
"""

from .bus import SharedThresholdCollector, ThresholdBus
from .miner import ParallelGRMiner
from .planner import plan_shards
from .worker import CrossShardGeneralityVerifier, ShardResult, ShardTask, run_shard

__all__ = [
    "CrossShardGeneralityVerifier",
    "ParallelGRMiner",
    "SharedThresholdCollector",
    "ShardResult",
    "ShardTask",
    "ThresholdBus",
    "plan_shards",
    "run_shard",
]
