"""Degree-weighted shard planning for the parallel miner.

The unit of distribution is a first-level branch of the SFDF tree
(:class:`~repro.core.miner.BranchSpec`).  Branch costs are highly skewed
— a branch's work is roughly proportional to its edge-subset size, i.e.
the summed out-degree of the sources matching its root assignment — so
round-robin assignment would routinely leave one worker holding the one
hot branch.  :func:`plan_shards` instead runs the classic LPT greedy
(longest processing time first): branches sorted by descending weight,
each placed on the currently least-loaded shard, which is within 4/3 of
the optimal makespan and fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..core.miner import BranchSpec

__all__ = ["plan_shards"]


def plan_shards(
    branches: Sequence[BranchSpec], num_shards: int
) -> list[tuple[BranchSpec, ...]]:
    """Partition branches into at most ``num_shards`` balanced shards.

    Deterministic: branches are ordered by (weight desc, token index,
    value) before the greedy pass, and ties on load go to the
    lowest-numbered shard.  Returns only non-empty shards, each with its
    branches restored to enumeration order (root first, then τ order) so
    a worker's traversal matches the serial miner's within its slice.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    shards: list[list[BranchSpec]] = [[] for _ in range(num_shards)]
    heap: list[tuple[int, int]] = [(0, i) for i in range(num_shards)]
    ordered = sorted(
        branches, key=lambda b: (-b.weight, b.kind != "root", b.token_index, b.value)
    )
    for branch in ordered:
        load, index = heapq.heappop(heap)
        shards[index].append(branch)
        heapq.heappush(heap, (load + max(1, branch.weight), index))
    for shard in shards:
        shard.sort(key=lambda b: (b.kind != "root", b.token_index, b.value))
    return [tuple(shard) for shard in shards if shard]
