"""ParallelGRMiner — sharded top-k GR mining over a process pool.

The SFDF enumeration tree's first-level LEFT branches partition the GR
space (every LHS has a unique latest-in-τ assignment), so Algorithm 1
parallelizes by branch with *no* shared mutable state on the hot path:

1. **Plan** — the coordinator runs :meth:`GRMiner.plan_branches` and
   packs the branches into degree-weight-balanced shards (LPT).
2. **Share** — the compact store and network columns are exported once
   into POSIX shared memory under a guaranteed-unlink
   :class:`~repro.data.store.SharedStoreLease`; workers attach zero-copy
   read-only views.
3. **Mine** — each worker replays the serial recursion over its
   branches.  Candidate validity (thresholds, triviality, Definition
   5(2) generality) is decided per-shard from first principles (see
   :mod:`repro.parallel.worker`), and local k-th best scores are traded
   over a :class:`~repro.parallel.bus.ThresholdBus` so every worker's
   dynamic ``minNhp`` keeps rising as the fleet fills up.
4. **Merge** — per-shard top-k lists are folded through
   :meth:`TopKCollector.merge`; the total rank order makes the outcome
   byte-identical for any worker count, including ``workers=1``.

The result carries *exact* Definition 5 semantics: it equals serial
``GRMiner(..., push_topk=False)`` truncated to k, and the brute-force
reference miner, GR for GR.  (Serial ``GRMiner(k)`` agrees too except in
the rare blocker-in-pruned-subtree case of DESIGN.md §5.5, where the
parallel result is the more faithful one.)

This class is the one-shot face of the machinery: every ``mine()``
builds and tears down its own lease and pool.  A stream of queries over
the same network should go through :class:`repro.engine.MiningEngine`,
which keeps both alive and routes each query through the same
:func:`execute_shards` / :func:`merge_shard_results` path used here —
that shared path is what keeps the two layers answer-identical.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Sequence

from ..core.miner import GRMiner, MinerConfig
from ..core.results import MiningResult, MiningStats
from ..core.topk import TopKCollector
from ..data.network import SocialNetwork
from .bus import ThresholdBus
from .planner import plan_shards
from .pool import PersistentWorkerPool, default_start_method
from .worker import ShardResult, ShardTask, make_worker_state, run_shard

__all__ = [
    "ParallelGRMiner",
    "check_worker_count",
    "execute_shards_inline",
    "merge_shard_results",
    "warn_if_overprovisioned",
]


def check_worker_count(workers: int | None) -> int:
    """Resolve and validate a worker-count request.

    ``None`` means ``os.cpu_count()``.  A request above the machine's
    CPU count is allowed — shards then time-slice — but it is almost
    never what the caller wants, so it warns instead of crashing
    (mirrors the CLI ``--workers`` passthrough contract).
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        return cpus
    if workers < 1:
        raise ValueError("workers must be a positive process count")
    if workers > cpus:
        warnings.warn(
            f"workers={workers} exceeds os.cpu_count()={cpus}; the extra "
            "processes will time-slice rather than run concurrently",
            stacklevel=3,
        )
    return workers


def warn_if_overprovisioned(workers: int, num_branches: int) -> None:
    """Warn when a query cannot occupy the workers it asked for.

    Shard count is capped by the first-level branch count, so surplus
    workers would simply idle; one shared message keeps the one-shot
    miner and the engine diagnostics identical.
    """
    if 0 < num_branches < workers:
        warnings.warn(
            f"workers={workers} exceeds the {num_branches} first-level "
            f"branches planned for this query; only {num_branches} "
            "shards can run",
            stacklevel=3,
        )


def merge_shard_results(
    shard_results: Sequence[ShardResult],
    config: MinerConfig,
    planner_pruned: int,
) -> tuple[list, MiningStats]:
    """Fold per-shard collections into the globally ranked result.

    The deterministic reduce step shared by :class:`ParallelGRMiner` and
    the engine: because the rank key is a total order, the merge is
    independent of shard count and gather order.
    """
    merged = TopKCollector.merge(
        (result.entries for result in shard_results),
        k=config.k,
        min_score=float(config.min_score),
    )
    totals = MiningStats(pruned_by_support=planner_pruned)
    for result in shard_results:
        totals.lw_nodes += result.stats.lw_nodes
        totals.grs_examined += result.stats.grs_examined
        totals.candidates += result.stats.candidates
        totals.pruned_by_support += result.stats.pruned_by_support
        totals.pruned_by_nhp += result.stats.pruned_by_nhp
        totals.pruned_by_generality += result.stats.pruned_by_generality
    return merged.results(), totals


def execute_shards_inline(
    serial: GRMiner, tasks: Sequence[ShardTask]
) -> list[ShardResult]:
    """Run shard tasks sequentially in this process (no pool, no bus).

    Uses the caller's serial miner as the executor so its store-derived
    caches are reused; exact semantics are identical to the pooled path
    because :func:`run_shard` applies the same per-shard verification.
    """
    state = make_worker_state(serial.network, serial.store)
    state.default.miner = serial
    return [run_shard(task, state=state) for task in tasks]


class ParallelGRMiner:
    """Mine top-k GRs with sharded worker processes.

    Accepts every :class:`~repro.core.miner.GRMiner` keyword argument,
    plus:

    Parameters
    ----------
    workers:
        Process count; ``None`` uses ``os.cpu_count()``.  ``workers=1``
        (or a single planned shard) runs in-process through the same
        shard machinery — handy for debugging and for the determinism
        guarantee that the answer never depends on the worker count.
        Requests above the CPU count or the planned branch count warn
        (and proceed) rather than crash.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest on Linux) and ``spawn`` elsewhere.
    threshold_refresh:
        How many threshold consultations a worker serves from its cached
        bus floor before re-reading the bus (the exchange is best-effort;
        staleness only costs pruning opportunity, never correctness).
    """

    def __init__(
        self,
        network: SocialNetwork,
        workers: int | None = None,
        start_method: str | None = None,
        threshold_refresh: int = 64,
        store=None,
        **miner_kwargs,
    ) -> None:
        self.network = network
        self.workers = check_worker_count(workers)
        self.start_method = start_method or default_start_method()
        self.threshold_refresh = threshold_refresh
        self._config = MinerConfig(**miner_kwargs)
        # The coordinator's serial miner: validates parameters eagerly,
        # owns the compact store that gets exported, and does the branch
        # planning.  Also the in-process executor on the workers=1 path.
        self._serial = GRMiner(network, store=store, config=self._config)

    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Plan, shard, mine and merge; returns the ranked result."""
        start = time.perf_counter()
        plan = self._serial.plan_branches()
        warn_if_overprovisioned(self.workers, len(plan.branches))
        shards = plan_shards(plan.branches, self.workers)
        if len(shards) <= 1 or self.workers == 1:
            tasks = [
                ShardTask(shard_id=i, branches=branches, config=self._config)
                for i, branches in enumerate(shards)
            ]
            shard_results = execute_shards_inline(self._serial, tasks)
        else:
            shard_results = self._mine_pool(shards)

        entries, stats = merge_shard_results(
            shard_results, self._config, plan.pruned_by_support
        )
        stats.runtime_seconds = time.perf_counter() - start
        params = self._serial._params()
        params.update(
            workers=self.workers,
            shards=len(shards),
            start_method=self.start_method,
        )
        return MiningResult(grs=entries, stats=stats, params=params)

    # ------------------------------------------------------------------
    def _mine_pool(self, shards: Sequence[tuple]) -> list[ShardResult]:
        """Fan the shards out over a freshly spawned, one-query pool."""
        bus: ThresholdBus | None = None
        if self._config.push_topk and self._config.k is not None:
            bus = ThresholdBus(num_slots=len(shards))
        try:
            with self._serial.store.lease_shared() as lease:
                tasks = [
                    ShardTask(
                        shard_id=i,
                        branches=branches,
                        config=self._config,
                        bus_handle=bus.handle() if bus is not None else None,
                    )
                    for i, branches in enumerate(shards)
                ]
                with PersistentWorkerPool(
                    lease.handle,
                    processes=len(shards),
                    start_method=self.start_method,
                    threshold_refresh=self.threshold_refresh,
                ) as pool:
                    return pool.run_query(tasks)
        finally:
            if bus is not None:
                bus.release()
