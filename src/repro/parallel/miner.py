"""ParallelGRMiner — sharded top-k GR mining over a process pool.

The SFDF enumeration tree's first-level LEFT branches partition the GR
space (every LHS has a unique latest-in-τ assignment), so Algorithm 1
parallelizes by branch with *no* shared mutable state on the hot path:

1. **Plan** — the coordinator runs :meth:`GRMiner.plan_branches` and
   packs the branches into degree-weight-balanced shards (LPT).
2. **Share** — the compact store and network columns are exported once
   into POSIX shared memory; workers attach zero-copy read-only views.
3. **Mine** — each worker replays the serial recursion over its
   branches.  Candidate validity (thresholds, triviality, Definition
   5(2) generality) is decided per-shard from first principles (see
   :mod:`repro.parallel.worker`), and local k-th best scores are traded
   over a :class:`~repro.parallel.bus.ThresholdBus` so every worker's
   dynamic ``minNhp`` keeps rising as the fleet fills up.
4. **Merge** — per-shard top-k lists are folded through
   :meth:`TopKCollector.merge`; the total rank order makes the outcome
   byte-identical for any worker count, including ``workers=1``.

The result carries *exact* Definition 5 semantics: it equals serial
``GRMiner(..., push_topk=False)`` truncated to k, and the brute-force
reference miner, GR for GR.  (Serial ``GRMiner(k)`` agrees too except in
the rare blocker-in-pruned-subtree case of DESIGN.md §5.5, where the
parallel result is the more faithful one.)
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Sequence

from ..core.miner import GRMiner
from ..core.results import MiningResult, MiningStats
from ..core.topk import TopKCollector
from ..data.network import SocialNetwork
from .bus import ThresholdBus
from .planner import plan_shards
from .worker import ShardResult, ShardTask, initialize_worker, make_worker_state, run_shard

__all__ = ["ParallelGRMiner"]


def _default_start_method() -> str:
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class ParallelGRMiner:
    """Mine top-k GRs with sharded worker processes.

    Accepts every :class:`~repro.core.miner.GRMiner` keyword argument,
    plus:

    Parameters
    ----------
    workers:
        Process count; ``None`` uses ``os.cpu_count()``.  ``workers=1``
        (or a single planned shard) runs in-process through the same
        shard machinery — handy for debugging and for the determinism
        guarantee that the answer never depends on the worker count.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest on Linux) and ``spawn`` elsewhere.
    threshold_refresh:
        How many threshold consultations a worker serves from its cached
        bus floor before re-reading the bus (the exchange is best-effort;
        staleness only costs pruning opportunity, never correctness).
    """

    def __init__(
        self,
        network: SocialNetwork,
        workers: int | None = None,
        start_method: str | None = None,
        threshold_refresh: int = 64,
        **miner_kwargs,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive process count")
        self.network = network
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.start_method = start_method or _default_start_method()
        self.threshold_refresh = threshold_refresh
        self._miner_kwargs = dict(miner_kwargs)
        # The coordinator's serial miner: validates parameters eagerly,
        # owns the compact store that gets exported, and does the branch
        # planning.  Also the in-process executor on the workers=1 path.
        self._serial = GRMiner(network, **miner_kwargs)

    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Plan, shard, mine and merge; returns the ranked result."""
        start = time.perf_counter()
        plan = self._serial.plan_branches()
        shards = plan_shards(plan.branches, self.workers)
        if len(shards) <= 1 or self.workers == 1:
            shard_results = self._mine_inline(shards)
        else:
            shard_results = self._mine_pool(shards)

        merged = TopKCollector.merge(
            (result.entries for result in shard_results),
            k=self._serial.k,
            min_score=self._serial.min_score,
        )
        stats = self._merge_stats(shard_results, plan.pruned_by_support)
        stats.runtime_seconds = time.perf_counter() - start
        params = self._serial._params()
        params.update(
            workers=self.workers,
            shards=len(shards),
            start_method=self.start_method,
        )
        return MiningResult(grs=merged.results(), stats=stats, params=params)

    # ------------------------------------------------------------------
    def _mine_inline(self, shards: Sequence[tuple]) -> list[ShardResult]:
        """Run every shard sequentially in this process (no pool)."""
        state = make_worker_state(
            self.network, self._serial.store, self._miner_kwargs
        )
        state.miner = self._serial
        return [
            run_shard(ShardTask(shard_id=i, branches=branches), state=state)
            for i, branches in enumerate(shards)
        ]

    def _mine_pool(self, shards: Sequence[tuple]) -> list[ShardResult]:
        """Fan the shards out over a process pool."""
        ctx = mp.get_context(self.start_method)
        tasks = [
            ShardTask(shard_id=i, branches=branches)
            for i, branches in enumerate(shards)
        ]
        export = self._serial.store.export_shared()
        bus: ThresholdBus | None = None
        if self._serial.push_topk and self._serial.k is not None:
            bus = ThresholdBus(num_slots=len(shards))
        try:
            with ctx.Pool(
                processes=len(shards),
                initializer=initialize_worker,
                initargs=(
                    export.handle,
                    bus.handle() if bus is not None else None,
                    self._miner_kwargs,
                    self.threshold_refresh,
                ),
            ) as pool:
                return pool.map(run_shard, tasks, chunksize=1)
        finally:
            if bus is not None:
                bus.release()
            export.release()

    @staticmethod
    def _merge_stats(
        shard_results: Sequence[ShardResult], planner_pruned: int
    ) -> MiningStats:
        totals = MiningStats(pruned_by_support=planner_pruned)
        for result in shard_results:
            totals.lw_nodes += result.stats.lw_nodes
            totals.grs_examined += result.stats.grs_examined
            totals.candidates += result.stats.candidates
            totals.pruned_by_support += result.stats.pruned_by_support
            totals.pruned_by_nhp += result.stats.pruned_by_nhp
            totals.pruned_by_generality += result.stats.pruned_by_generality
        return totals
