"""Best-effort score-threshold exchange between mining workers.

GRMiner(k)'s dynamic ``minNhp`` upgrade (Algorithm 1 line 28) is what
makes top-k pushdown fast — but a worker that only sees its own shard
only knows its *local* k-th best score.  The :class:`ThresholdBus` is a
tiny lock-free shared-memory array with one float64 slot per shard: a
worker publishes its local k-th best whenever its collector is full, and
siblings fold the bus maximum into their pruning threshold.

Soundness: a published value ``t`` certifies that its shard already
holds k verified results scoring ≥ t, so *any* GR scoring strictly below
``t`` is outside the global top-k and every subtree bounded below ``t``
can be cut (Theorem 3 applies unchanged — the threshold's origin is
irrelevant to the pruning argument).  Races are benign: slots only ever
increase, and a stale read merely prunes less.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..core.descriptors import GR
from ..core.metrics import GRMetrics
from ..core.topk import TopKCollector
from ..obs.metrics import REGISTRY

__all__ = ["ThresholdBus", "SharedThresholdCollector"]

_FLOOR_UPGRADES = REGISTRY.counter(
    "repro_bus_floor_upgrades_total",
    "ThresholdBus slot raises (per-process: publishes made inside mining "
    "workers land in the worker's own registry).",
)
_SEEDS = REGISTRY.counter(
    "repro_bus_seeds_total",
    "Warm-start floors seeded into a bus's reserved slot.",
)

#: Picklable bus address: (shared-memory name, slot count).
BusHandle = tuple[str, int]


class ThresholdBus:
    """One float64 slot per shard, monotonically raised, max-reduced."""

    def __init__(self, num_slots: int | None = None, *, handle: BusHandle | None = None):
        if (num_slots is None) == (handle is None):
            raise ValueError("pass exactly one of num_slots or handle")
        if handle is not None:
            name, num_slots = handle
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        else:
            if num_slots < 1:
                raise ValueError("num_slots must be positive")
            self._shm = shared_memory.SharedMemory(create=True, size=8 * num_slots)
            self._owner = True
        self.num_slots = int(num_slots)
        self._scores = np.ndarray((self.num_slots,), dtype=np.float64, buffer=self._shm.buf)
        if self._owner:
            self._scores[:] = -np.inf

    def handle(self) -> BusHandle:
        return (self._shm.name, self.num_slots)

    def publish(self, slot: int, score: float) -> None:
        """Raise ``slot`` to ``score`` (never lowers; no lock needed —
        each slot has a single writer and float64 stores are atomic on
        the platforms we target)."""
        if score > self._scores[slot]:
            self._scores[slot] = score
            _FLOOR_UPGRADES.inc()

    def best_floor(self) -> float:
        """The highest published local k-th best (−inf when none yet)."""
        return float(self._scores.max())

    def seed(self, score: float) -> None:
        """Publish a warm-start floor into the *last* slot.

        The single-writer-per-slot discipline holds only if no shard is
        assigned that slot — callers reserving a seed slot must size the
        bus one slot beyond the shard count (:class:`~repro.parallel.pool.BusPool`
        does).  Soundness is the caller's: the score must certify ≥ k
        results of *this* query scoring at least it (see
        :func:`repro.engine.request.warmstart_dominates`); workers then
        fold it into their pruning exactly as they would a sibling's
        published k-th best.
        """
        _SEEDS.inc()
        self.publish(self.num_slots - 1, float(score))

    def reset(self) -> None:
        """Clear every slot back to −inf, readying the bus for reuse.

        A long-lived engine serves consecutive queries over the same
        pool; a k-th-best score published for query N is meaningless for
        query N+1 (different thresholds, different ranking) and would
        wrongly tighten its dynamic minNhp — prune *correct* results.
        Only call between queries, never while one is in flight.
        """
        self._scores[:] = -np.inf

    def release(self) -> None:
        """Close (and, for the creating side, unlink) the segment."""
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except FileNotFoundError:
            pass


class SharedThresholdCollector(TopKCollector):
    """A :class:`TopKCollector` that trades thresholds over a bus.

    Publishing happens after every successful insert while full; the bus
    maximum is folded into :attr:`effective_threshold` (pruning) and
    :meth:`would_admit` (early rejection).  Bus reads are refreshed only
    every ``refresh_every`` consultations — threshold exchange is
    best-effort, and a stale floor is merely conservative.
    """

    def __init__(
        self,
        k: int,
        min_score: float,
        bus: ThresholdBus,
        slot: int,
        refresh_every: int = 64,
    ) -> None:
        super().__init__(k=k, min_score=min_score)
        self._bus = bus
        self._slot = slot
        self._refresh_every = max(1, refresh_every)
        self._floor = float("-inf")
        self._consultations = 0

    def _current_floor(self) -> float:
        # The counter starts at 0 and is post-incremented, so the bus is
        # re-read on consultations 0, n, 2n, … — including the first one,
        # for every n ≥ 1.
        if self._consultations % self._refresh_every == 0:
            published = self._bus.best_floor()
            if published > self._floor:
                self._floor = published
        self._consultations += 1
        return self._floor

    @property
    def effective_threshold(self) -> float:
        local = TopKCollector.effective_threshold.fget(self)
        return max(local, self._current_floor())

    def would_admit(self, score: float) -> bool:
        # A floor t certifies ≥ k results scoring ≥ t somewhere in the
        # fleet; strictly-below-t candidates cannot reach the top-k.
        # Equal-to-t candidates may still win on tie-breaks, so only a
        # strict comparison is sound.
        if score < self._current_floor():
            return False
        return super().would_admit(score)

    def offer(self, gr: GR, metrics: GRMetrics, score: float) -> bool:
        kept = super().offer(gr, metrics, score)
        if kept and self.k is not None and len(self._entries) >= self.k:
            self._bus.publish(self._slot, self._entries[-1].score)
        return kept
