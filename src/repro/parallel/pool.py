"""Worker-fleet lifecycle: a store-armed process pool that outlives queries.

PR 1's flow was build-use-discard: every ``ParallelGRMiner.mine()``
exported the store, spawned a pool, ran one query and tore everything
down.  This module separates the *expensive, per-store* setup (export +
spawn) from the *cheap, per-query* work (sharding + task dispatch) so a
long-lived :class:`~repro.engine.MiningEngine` pays the former once:

* :class:`PersistentWorkerPool` — a ``multiprocessing`` pool whose
  initializer attaches a shared store export and nothing else.  Tasks
  are self-describing (:class:`~repro.parallel.worker.ShardTask` carries
  the query config and bus address), so the same fleet serves any number
  of queries, interleaved or sequential.  Context-manager semantics:
  graceful ``close()`` + join on clean exit, ``terminate()`` when an
  exception unwinds.
* :class:`BusPool` — a free list of :class:`ThresholdBus` segments,
  ``reset()`` on every checkout so a k-th-best score published during
  query N can never tighten query N+1's dynamic minNhp.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Callable, Sequence

from ..data.store import SharedStoreHandle
from ..obs.metrics import REGISTRY
from ..serve.markers import coordinator_only
from .bus import ThresholdBus
from .worker import ShardResult, ShardTask, initialize_worker, run_shard

__all__ = ["BusPool", "PersistentWorkerPool", "default_start_method"]

_TASKS_DISPATCHED = REGISTRY.counter(
    "repro_pool_tasks_dispatched_total",
    "Shard tasks submitted to the worker fleet.",
)
_TASKS_COMPLETED = REGISTRY.counter(
    "repro_pool_tasks_completed_total",
    "Shard tasks settled, by outcome.",
    labels=("outcome",),
)
_TASKS_OK = _TASKS_COMPLETED.labels(outcome="ok")
_TASKS_ERROR = _TASKS_COMPLETED.labels(outcome="error")
_TASKS_INFLIGHT = REGISTRY.gauge(
    "repro_pool_tasks_inflight",
    "Shard tasks submitted but not yet settled.",
)


def default_start_method() -> str:
    """``fork`` where available (cheapest on Linux), else ``spawn``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class PersistentWorkerPool:
    """A process pool attached once to a shared store, serving many queries.

    Parameters
    ----------
    store_handle:
        Picklable descriptor of the exported store
        (:attr:`SharedStoreLease.handle`).  The caller owns the segment
        and must keep its lease open for the pool's lifetime.  ``None``
        spawns a *store-agnostic* fleet: every task must then carry its
        own ``store_handle``, which workers attach (and LRU-cache) on
        demand — the multi-network mode used by
        :class:`repro.engine.EngineHub`.
    processes:
        Fleet size.  A query may use fewer workers (its planner simply
        emits fewer shards) but never more.
    start_method:
        ``multiprocessing`` start method; defaults to
        :func:`default_start_method`.
    threshold_refresh:
        Bus re-read cadence forwarded to every worker (see
        :class:`~repro.parallel.bus.SharedThresholdCollector`).
    """

    def __init__(
        self,
        store_handle: SharedStoreHandle | None,
        processes: int,
        start_method: str | None = None,
        threshold_refresh: int = 64,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be a positive process count")
        self.processes = processes
        self.start_method = start_method or default_start_method()
        self.threshold_refresh = threshold_refresh
        ctx = mp.get_context(self.start_method)
        self._pool = ctx.Pool(
            processes=processes,
            initializer=initialize_worker,
            initargs=(store_handle, threshold_refresh),
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Shard tasks submitted but not yet settled.

        Settled means the result (or error) arrived back from the fleet,
        whether or not anyone has ``get()``'d it.  A nonzero count at
        ``close()`` time means someone is still waiting on the pool —
        tearing it down then would leave that waiter blocked forever,
        which is why the engine and hub fail fast instead.
        """
        with self._inflight_lock:
            return self._inflight

    def _settle(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def submit(
        self,
        task: ShardTask,
        callback: Callable | None = None,
        error_callback: Callable | None = None,
    ):
        """Dispatch one shard task; returns its ``AsyncResult``.

        Submission order is execution order — the engine interleaves
        tasks from concurrent queries by submitting them round-robin.
        The optional callbacks fire on the pool's result-handler thread
        the moment the shard settles (before any ``get()``), which is
        the non-blocking completion hook the ``repro.serve`` scheduler
        builds its slot accounting on.  Callbacks must be quick and must
        not raise.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        with self._inflight_lock:
            self._inflight += 1
        _TASKS_DISPATCHED.inc()
        _TASKS_INFLIGHT.inc()

        def _done(result):
            self._settle()
            _TASKS_INFLIGHT.dec()
            _TASKS_OK.inc()
            if callback is not None:
                callback(result)

        def _err(exc):
            self._settle()
            _TASKS_INFLIGHT.dec()
            _TASKS_ERROR.inc()
            if error_callback is not None:
                error_callback(exc)

        return self._pool.apply_async(
            run_shard, (task,), callback=_done, error_callback=_err
        )

    def run_query(self, tasks: Sequence[ShardTask]) -> list[ShardResult]:
        """Dispatch one query's tasks and gather its shard results."""
        pending = [self.submit(task) for task in tasks]
        return [handle.get() for handle in pending]

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Graceful shutdown: finish outstanding tasks, then join."""
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def terminate(self) -> None:
        """Hard shutdown: kill workers without draining the task queue."""
        if not self._closed:
            self._closed = True
            self._pool.terminate()
            self._pool.join()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"PersistentWorkerPool(processes={self.processes}, "
            f"start_method={self.start_method!r}, {state})"
        )


class BusPool:
    """Free list of threshold buses, reset between checkouts.

    One bus per *in-flight* query: sequential queries reuse a single
    segment, a batched sweep checks out as many as it overlaps.  Workers
    cache their attachments by segment name, so reuse also keeps the
    per-worker attachment table bounded.

    Buses are allocated with ``num_slots + 1`` slots: slots
    ``0..num_slots-1`` belong to shards (single writer each), the extra
    last slot is reserved for a *warm-start seed* published by the
    coordinator before any shard is dispatched
    (:meth:`ThresholdBus.seed`), so seeding never races a worker.
    """

    def __init__(self, num_slots: int) -> None:
        self.num_slots = num_slots
        self._free: list[ThresholdBus] = []
        self._all: list[ThresholdBus] = []
        self._closed = False

    @coordinator_only
    def acquire(self, floor: float | None = None) -> ThresholdBus:
        """Check out a clean bus (all slots at −inf), optionally seeded.

        ``floor`` is a warm-start threshold published into the reserved
        seed slot before the bus is handed out; every shard of the query
        then starts pruning from it instead of from −inf.  The caller
        guarantees soundness (see :meth:`ThresholdBus.seed`).
        """
        if self._closed:
            raise RuntimeError("bus pool is closed")
        if self._free:
            bus = self._free.pop()
        else:
            bus = ThresholdBus(num_slots=self.num_slots + 1)
            self._all.append(bus)
        bus.reset()
        if floor is not None and floor == floor:  # NaN-safe
            bus.seed(floor)
        return bus

    @coordinator_only
    def release(self, bus: ThresholdBus) -> None:
        """Return a bus once its query has been fully gathered."""
        if not self._closed:
            self._free.append(bus)

    def close(self) -> None:
        """Unlink every segment ever created (idempotent)."""
        self._closed = True
        for bus in self._all:
            bus.release()
        self._all.clear()
        self._free.clear()

    def __enter__(self) -> "BusPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
