"""Per-process execution of enumeration-tree shards.

A worker process is initialized once (:func:`initialize_worker`): it
attaches the shared-memory store export and lazily builds one
:class:`~repro.core.miner.GRMiner` over the attached read-only data.
Each :class:`ShardTask` is *self-describing* — it carries the query's
:class:`~repro.core.miner.MinerConfig` and (optionally) the address of
the threshold bus to trade k-th-best scores over — so one long-lived
worker serves an arbitrary stream of differently parameterized queries:
the miner skeleton is re-armed (:meth:`GRMiner.rearm`) whenever a task's
config differs from the previous one, while the attached store, the
per-edge column gathers and the first-level partitions persist for the
process lifetime.  Each task replays the serial miner's recursion over
its slice of first-level branches via the branch-entry API, and ships
back a :class:`ShardResult` of mined entries plus effort counters.

Cross-shard generality
----------------------
The serial miner's generality index is a *global* structure: a blocker
(a more general GR passing condition (1)) may be enumerated in a
different first-level branch than the GRs it blocks — e.g. the blocker
``(Region:R) → r`` lives in the Region branch while the blocked
``(Age:a, Region:R) → r`` lives in the Age branch.  A worker-local index
therefore cannot enforce Definition 5(2) alone.  Instead of shipping
index updates between processes (which would serialize the walk), the
worker verifies each would-be top-k candidate against
:class:`CrossShardGeneralityVerifier`: every proper LHS∧edge
sub-selection is evaluated *directly on the data* (memoized), which
decides blocked-ness from first principles, independent of what any
shard happened to enumerate.  This makes each shard's collector hold
exactly the Definition-5-valid candidates of its slice — the property
the deterministic merge relies on — and as a side effect gives the
parallel miner *exact* Definition 5 semantics even where serial
GRMiner(k)'s dynamic threshold can drop below k results (DESIGN.md
§5.5's blocker-in-pruned-subtree case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.miner import BranchSpec, GRMiner, MinerConfig
from ..core.results import MinedGR, MiningStats
from ..core.enumeration import static_tau
from ..core.topk import GeneralityIndex, TopKCollector
from ..data.store import SharedStoreHandle, attach_shared_store
from .bus import BusHandle, SharedThresholdCollector, ThresholdBus

__all__ = [
    "CrossShardGeneralityVerifier",
    "ShardResult",
    "ShardTask",
    "initialize_worker",
    "make_worker_state",
    "run_shard",
]


@dataclass(frozen=True)
class ShardTask:
    """One worker assignment: a query config plus a slice of branches.

    ``shard_id`` doubles as the worker's slot on the task's threshold
    bus.  ``bus_handle`` addresses the bus segment for *this query* —
    concurrent queries interleaved over one pool each bring their own
    bus, which is how query N's dynamic thresholds stay out of query
    N+1's pruning.
    """

    shard_id: int
    branches: tuple[BranchSpec, ...]
    config: MinerConfig
    bus_handle: BusHandle | None = None


@dataclass
class ShardResult:
    """What a shard sends back to the coordinator."""

    shard_id: int
    entries: list[MinedGR]
    stats: MiningStats


@dataclass
class WorkerState:
    """Everything a worker keeps between tasks."""

    network: object
    store: object
    refresh_every: int
    shm: object = None  # keeps the attached segment alive
    miner: GRMiner | None = field(default=None)
    #: Attached threshold buses keyed by segment name.  An engine reuses
    #: a small free-list of buses across its queries, so this stays
    #: bounded by the engine's concurrent-query high-water mark.
    buses: dict[str, ThresholdBus] = field(default_factory=dict)


#: Process-global state, populated by the pool initializer.
_STATE: list[WorkerState] = []


def make_worker_state(
    network,
    store,
    refresh_every: int = 64,
    shm=None,
) -> WorkerState:
    """Build a state object (also used in-process for ``workers=1``)."""
    return WorkerState(
        network=network,
        store=store,
        refresh_every=refresh_every,
        shm=shm,
    )


def initialize_worker(
    store_handle: SharedStoreHandle,
    refresh_every: int,
) -> None:
    """Pool initializer: attach shared data once per worker process.

    Deliberately query-agnostic — no miner parameters, no bus — so the
    pool outlives any individual query (the engine spawns it once and
    feeds it many).
    """
    network, store, shm = attach_shared_store(store_handle)
    _STATE.clear()
    _STATE.append(make_worker_state(network, store, refresh_every, shm=shm))


class CrossShardGeneralityVerifier:
    """Definition 5(2) decided by direct evaluation (see module docs).

    Called with a candidate's code maps; returns True when some strictly
    more general GR with the same RHS qualifies under condition (1).
    Qualification checks mirror the serial miner's verification pass:
    non-trivial (unless trivial GRs are admitted), non-empty LHS (unless
    admitted), supp ≥ minSupp, score ≥ the user threshold.  Verdicts are
    memoized per (LHS, edge, RHS) selection — generalization sets of
    neighbouring candidates overlap heavily, so the cache hit rate is
    high within a shard.  The memo is valid only for the config the
    verifier was built with; :func:`run_shard` installs a fresh verifier
    per task.
    """

    def __init__(self, miner: GRMiner) -> None:
        self._miner = miner
        self._memo: dict[tuple, bool] = {}

    def __call__(
        self,
        l_map: dict[str, int],
        w_map: dict[str, int],
        r_map: dict[str, int],
    ) -> bool:
        miner = self._miner
        l_key = tuple(sorted(l_map.items()))
        w_key = tuple(sorted(w_map.items()))
        r_key = tuple(sorted(r_map.items()))
        for l_sel, w_sel in GeneralityIndex._lw_subselections(l_key, w_key):
            if not l_sel and not miner.allow_empty_lhs:
                continue
            if self._qualifies(l_sel, w_sel, r_key):
                return True
        return False

    def _qualifies(self, l_sel: tuple, w_sel: tuple, r_key: tuple) -> bool:
        key = (l_sel, w_sel, r_key)
        cached = self._memo.get(key)
        if cached is None:
            miner = self._miner
            metrics, trivial = miner.evaluate_codes(
                dict(l_sel), dict(w_sel), dict(r_key)
            )
            cached = miner.blocker_qualifies(metrics, trivial)
            self._memo[key] = cached
        return cached


def _shard_miner(state: WorkerState, config: MinerConfig) -> GRMiner:
    """The worker's miner skeleton, re-armed when the query changes."""
    if state.miner is None:
        state.miner = GRMiner(state.network, store=state.store, config=config)
    elif state.miner.config != config:
        state.miner.rearm(config)
    return state.miner


def _task_bus(state: WorkerState, handle: BusHandle | None) -> ThresholdBus | None:
    if handle is None:
        return None
    name = handle[0]
    bus = state.buses.get(name)
    if bus is None:
        bus = state.buses[name] = ThresholdBus(handle=handle)
    return bus


def run_shard(task: ShardTask, state: WorkerState | None = None) -> ShardResult:
    """Mine one shard's branches and return its verified entries."""
    if state is None:
        if not _STATE:
            raise RuntimeError("worker not initialized — call initialize_worker first")
        state = _STATE[0]
    miner = _shard_miner(state, task.config)
    bus = _task_bus(state, task.bus_handle)
    if bus is not None and miner.push_topk and miner.k is not None:
        collector: TopKCollector = SharedThresholdCollector(
            k=miner.k,
            min_score=miner.min_score,
            bus=bus,
            slot=task.shard_id,
            refresh_every=state.refresh_every,
        )
    else:
        collector = TopKCollector(
            k=miner.k if miner.push_topk else None, min_score=miner.min_score
        )
    miner._begin(collector)
    miner._candidate_verifier = (
        CrossShardGeneralityVerifier(miner) if miner.apply_generality else None
    )
    tau = static_tau(miner.schema, miner.node_attributes)
    for branch in task.branches:
        miner.mine_branch(tau, branch)
    return ShardResult(
        shard_id=task.shard_id,
        entries=miner._collector.results(),
        stats=miner._stats,
    )
