"""Per-process execution of enumeration-tree shards.

A worker process is initialized once (:func:`initialize_worker`): it
attaches the shared-memory store export and lazily builds one
:class:`~repro.core.miner.GRMiner` over the attached read-only data.
Each :class:`ShardTask` is *self-describing* — it carries the query's
:class:`~repro.core.miner.MinerConfig` and (optionally) the address of
the threshold bus to trade k-th-best scores over — so one long-lived
worker serves an arbitrary stream of differently parameterized queries:
the miner skeleton is re-armed (:meth:`GRMiner.rearm`) whenever a task's
config differs from the previous one, while the attached store, the
per-edge column gathers and the first-level partitions persist for the
process lifetime.  Each task replays the serial miner's recursion over
its slice of first-level branches via the branch-entry API, and ships
back a :class:`ShardResult` of mined entries plus effort counters.

Cross-shard generality
----------------------
The serial miner's generality index is a *global* structure: a blocker
(a more general GR passing condition (1)) may be enumerated in a
different first-level branch than the GRs it blocks — e.g. the blocker
``(Region:R) → r`` lives in the Region branch while the blocked
``(Age:a, Region:R) → r`` lives in the Age branch.  A worker-local index
therefore cannot enforce Definition 5(2) alone.  Instead of shipping
index updates between processes (which would serialize the walk), the
worker verifies each would-be top-k candidate against
:class:`CrossShardGeneralityVerifier`: every proper LHS∧edge
sub-selection is evaluated *directly on the data* (memoized), which
decides blocked-ness from first principles, independent of what any
shard happened to enumerate.  This makes each shard's collector hold
exactly the Definition-5-valid candidates of its slice — the property
the deterministic merge relies on — and as a side effect gives the
parallel miner *exact* Definition 5 semantics even where serial
GRMiner(k)'s dynamic threshold can drop below k results (DESIGN.md
§5.5's blocker-in-pruned-subtree case).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..core.miner import BranchSpec, GRMiner, MinerConfig
from ..core.results import MinedGR, MiningStats
from ..core.enumeration import static_tau
from ..core.topk import GeneralityIndex, TopKCollector
from ..data.store import SharedStoreHandle, attach_shared_store
from .bus import BusHandle, SharedThresholdCollector, ThresholdBus

__all__ = [
    "CrossShardGeneralityVerifier",
    "ShardResult",
    "ShardTask",
    "StoreAttachment",
    "initialize_worker",
    "make_worker_state",
    "run_shard",
]


@dataclass(frozen=True)
class ShardTask:
    """One worker assignment: a query config plus a slice of branches.

    ``shard_id`` doubles as the worker's slot on the task's threshold
    bus.  ``bus_handle`` addresses the bus segment for *this query* —
    concurrent queries interleaved over one pool each bring their own
    bus, which is how query N's dynamic thresholds stay out of query
    N+1's pruning.  ``store_handle`` addresses the shared store the task
    mines over: ``None`` uses the store the pool was initialized with
    (the single-network engine and the one-shot miner), while a handle
    makes the worker attach that export on demand — the mechanism that
    lets one fleet serve many networks (:class:`repro.engine.EngineHub`)
    and re-exported post-delta stores.
    """

    shard_id: int
    branches: tuple[BranchSpec, ...]
    config: MinerConfig
    bus_handle: BusHandle | None = None
    store_handle: SharedStoreHandle | None = None


@dataclass
class ShardResult:
    """What a shard sends back to the coordinator."""

    shard_id: int
    entries: list[MinedGR]
    stats: MiningStats


@dataclass
class StoreAttachment:
    """One attached store (default or per-task) plus its armed miner."""

    network: object
    store: object
    shm: object = None  # keeps the attached segment alive
    miner: GRMiner | None = None


@dataclass
class WorkerState:
    """Everything a worker keeps between tasks."""

    refresh_every: int
    #: The store the pool was initialized with (``None`` for a
    #: store-agnostic fleet, e.g. an EngineHub's, where every task
    #: carries its own handle).
    default: StoreAttachment | None = None
    #: Segment name of the default attachment — tasks addressing it by
    #: handle are served from ``default`` instead of re-attaching.
    default_name: str | None = None
    #: Per-task store attachments keyed by segment name, LRU-bounded by
    #: ``max_attachments`` (a hub evicts leases under a memory budget
    #: and re-exports post-delta stores, so stale names do turn over).
    attachments: "OrderedDict[str, StoreAttachment]" = field(
        default_factory=OrderedDict
    )
    max_attachments: int = 8
    #: Attached threshold buses keyed by segment name.  An engine reuses
    #: a small free-list of buses across its queries, so this stays
    #: bounded by the engine's concurrent-query high-water mark.
    buses: dict[str, ThresholdBus] = field(default_factory=dict)


#: Process-global state, populated by the pool initializer.
_STATE: list[WorkerState] = []


def make_worker_state(
    network,
    store,
    refresh_every: int = 64,
    shm=None,
    default_name: str | None = None,
) -> WorkerState:
    """Build a state object (also used in-process for ``workers=1``)."""
    default = None
    if store is not None:
        default = StoreAttachment(network=network, store=store, shm=shm)
    return WorkerState(
        refresh_every=refresh_every,
        default=default,
        default_name=default_name,
    )


def initialize_worker(
    store_handle: SharedStoreHandle | None,
    refresh_every: int,
) -> None:
    """Pool initializer: attach shared data once per worker process.

    Deliberately query-agnostic — no miner parameters, no bus — so the
    pool outlives any individual query (the engine spawns it once and
    feeds it many).  ``store_handle=None`` starts a store-agnostic
    worker for a multi-network fleet; tasks then carry their own store
    handles.  A vanished default segment (unlinked after a store delta
    while the pool respawned a crashed worker) is tolerated for the same
    reason — such a worker can still serve every handle-carrying task.
    """
    state = make_worker_state(None, None, refresh_every)
    if store_handle is not None:
        try:
            network, store, shm = attach_shared_store(store_handle)
        except FileNotFoundError:
            pass
        else:
            state.default = StoreAttachment(network=network, store=store, shm=shm)
            state.default_name = store_handle.shm_name
    _STATE.clear()
    _STATE.append(state)


class CrossShardGeneralityVerifier:
    """Definition 5(2) decided by direct evaluation (see module docs).

    Called with a candidate's code maps; returns True when some strictly
    more general GR with the same RHS qualifies under condition (1).
    Qualification checks mirror the serial miner's verification pass:
    non-trivial (unless trivial GRs are admitted), non-empty LHS (unless
    admitted), supp ≥ minSupp, score ≥ the user threshold.  Verdicts are
    memoized per (LHS, edge, RHS) selection — generalization sets of
    neighbouring candidates overlap heavily, so the cache hit rate is
    high within a shard.  The memo is valid only for the config the
    verifier was built with; :func:`run_shard` installs a fresh verifier
    per task.
    """

    def __init__(self, miner: GRMiner) -> None:
        self._miner = miner
        self._memo: dict[tuple, bool] = {}

    def __call__(
        self,
        l_map: dict[str, int],
        w_map: dict[str, int],
        r_map: dict[str, int],
    ) -> bool:
        miner = self._miner
        l_key = tuple(sorted(l_map.items()))
        w_key = tuple(sorted(w_map.items()))
        r_key = tuple(sorted(r_map.items()))
        for l_sel, w_sel in GeneralityIndex._lw_subselections(l_key, w_key):
            if not l_sel and not miner.allow_empty_lhs:
                continue
            if self._qualifies(l_sel, w_sel, r_key):
                return True
        return False

    def _qualifies(self, l_sel: tuple, w_sel: tuple, r_key: tuple) -> bool:
        key = (l_sel, w_sel, r_key)
        cached = self._memo.get(key)
        if cached is None:
            miner = self._miner
            metrics, trivial = miner.evaluate_codes(
                dict(l_sel), dict(w_sel), dict(r_key)
            )
            cached = miner.blocker_qualifies(metrics, trivial)
            self._memo[key] = cached
        return cached


def _task_attachment(
    state: WorkerState, handle: SharedStoreHandle | None
) -> StoreAttachment:
    """Resolve a task's store: the pool default, or an attach-by-name.

    Attachments are cached per segment name and LRU-bounded: one
    long-lived worker serving a hub's rotating population of leases
    (evictions, post-delta re-exports) must not accumulate mappings
    forever.  Eviction drops the armed miner with the views before
    closing the segment.
    """
    if handle is None:
        if state.default is None:
            raise RuntimeError(
                "task carries no store handle and the pool was initialized "
                "without a default store"
            )
        return state.default
    if state.default_name is not None and handle.shm_name == state.default_name:
        return state.default
    attachment = state.attachments.get(handle.shm_name)
    if attachment is None:
        network, store, shm = attach_shared_store(handle)
        attachment = StoreAttachment(network=network, store=store, shm=shm)
        state.attachments[handle.shm_name] = attachment
        while len(state.attachments) > state.max_attachments:
            _, stale = state.attachments.popitem(last=False)
            stale.miner = None
            stale.network = None
            stale.store = None
            try:
                if stale.shm is not None:
                    stale.shm.close()
            except BufferError:
                # A straggling view still maps the buffer; the mmap is
                # reclaimed when it is garbage-collected instead.
                pass
    else:
        state.attachments.move_to_end(handle.shm_name)
    return attachment


def _shard_miner(attachment: StoreAttachment, config: MinerConfig) -> GRMiner:
    """The attachment's miner skeleton, re-armed when the query changes."""
    if attachment.miner is None:
        attachment.miner = GRMiner(
            attachment.network, store=attachment.store, config=config
        )
    elif attachment.miner.config != config:
        attachment.miner.rearm(config)
    return attachment.miner


def _task_bus(state: WorkerState, handle: BusHandle | None) -> ThresholdBus | None:
    if handle is None:
        return None
    name = handle[0]
    bus = state.buses.get(name)
    if bus is None:
        bus = state.buses[name] = ThresholdBus(handle=handle)
    return bus


def run_shard(task: ShardTask, state: WorkerState | None = None) -> ShardResult:
    """Mine one shard's branches and return its verified entries.

    An explicitly passed ``state`` (the in-process ``workers=1`` path)
    always executes on its own default store — its caller built the
    task; a pool worker resolves the task's ``store_handle`` instead.
    """
    if state is None:
        if not _STATE:
            raise RuntimeError("worker not initialized — call initialize_worker first")
        state = _STATE[0]
        attachment = _task_attachment(state, task.store_handle)
    else:
        attachment = _task_attachment(state, None)
    miner = _shard_miner(attachment, task.config)
    bus = _task_bus(state, task.bus_handle)
    if bus is not None and miner.push_topk and miner.k is not None:
        collector: TopKCollector = SharedThresholdCollector(
            k=miner.k,
            min_score=miner.min_score,
            bus=bus,
            slot=task.shard_id,
            refresh_every=state.refresh_every,
        )
    else:
        collector = TopKCollector(
            k=miner.k if miner.push_topk else None, min_score=miner.min_score
        )
    miner._begin(collector)
    miner._candidate_verifier = (
        CrossShardGeneralityVerifier(miner) if miner.apply_generality else None
    )
    tau = static_tau(miner.schema, miner.node_attributes)
    for branch in task.branches:
        miner.mine_branch(tau, branch)
    return ShardResult(
        shard_id=task.shard_id,
        entries=miner._collector.results(),
        stats=miner._stats,
    )
