"""CSV persistence and networkx interop for social networks.

On-disk format (directory based):

* ``schema.json`` — attribute names, value labels and homophily flags;
* ``nodes.csv``   — ``id`` column plus one column per node attribute
  (empty cell = null);
* ``edges.csv``   — ``src``/``dst`` columns (external node ids) plus one
  column per edge attribute.

The networkx adapters map node/edge attribute dicts to and from the
columnar representation, so existing graph pipelines can feed GRMiner.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import networkx as nx

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema

__all__ = [
    "save_network",
    "load_network",
    "schema_to_dict",
    "schema_from_dict",
    "to_networkx",
    "from_networkx",
]


# ----------------------------------------------------------------------
# Schema JSON
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> dict:
    """JSON-serializable schema description."""
    return {
        "node_attributes": [
            {"name": a.name, "values": list(a.values), "homophily": a.homophily}
            for a in schema.node_attributes
        ],
        "edge_attributes": [
            {"name": a.name, "values": list(a.values)} for a in schema.edge_attributes
        ],
    }


def schema_from_dict(data: dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    return Schema(
        node_attributes=[
            Attribute(a["name"], tuple(a["values"]), homophily=bool(a.get("homophily")))
            for a in data["node_attributes"]
        ],
        edge_attributes=[
            Attribute(a["name"], tuple(a["values"]))
            for a in data.get("edge_attributes", [])
        ],
    )


# ----------------------------------------------------------------------
# CSV directory format
# ----------------------------------------------------------------------
def save_network(network: SocialNetwork, directory: str | Path) -> Path:
    """Write ``schema.json``, ``nodes.csv`` and ``edges.csv``; returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "schema.json").write_text(
        json.dumps(schema_to_dict(network.schema), indent=2)
    )

    node_attrs = network.schema.node_attribute_names
    with open(directory / "nodes.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("id",) + node_attrs)
        for index, node_id in enumerate(network.node_ids):
            record = network.node_record(index)
            writer.writerow([node_id] + [record.get(name, "") for name in node_attrs])

    edge_attrs = network.schema.edge_attribute_names
    with open(directory / "edges.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("src", "dst") + edge_attrs)
        for index in range(network.num_edges):
            record = network.edge_record(index)
            writer.writerow(
                [network.node_ids[network.src[index]], network.node_ids[network.dst[index]]]
                + [record.get(name, "") for name in edge_attrs]
            )
    return directory


def load_network(directory: str | Path) -> SocialNetwork:
    """Load a network saved by :func:`save_network`."""
    directory = Path(directory)
    schema = schema_from_dict(json.loads((directory / "schema.json").read_text()))

    nodes: dict[str, dict[str, str]] = {}
    with open(directory / "nodes.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            node_id = row.pop("id")
            nodes[node_id] = {name: value for name, value in row.items() if value}

    edges: list[tuple[str, str, dict[str, str]]] = []
    with open(directory / "edges.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            src, dst = row.pop("src"), row.pop("dst")
            edges.append((src, dst, {name: value for name, value in row.items() if value}))

    return SocialNetwork.from_records(schema, nodes, edges)


# ----------------------------------------------------------------------
# networkx interop
# ----------------------------------------------------------------------
def to_networkx(network: SocialNetwork) -> nx.MultiDiGraph:
    """Convert to a ``networkx.MultiDiGraph`` with label attributes."""
    graph = nx.MultiDiGraph()
    for index, node_id in enumerate(network.node_ids):
        graph.add_node(node_id, **network.node_record(index))
    for index in range(network.num_edges):
        graph.add_edge(
            network.node_ids[network.src[index]],
            network.node_ids[network.dst[index]],
            **network.edge_record(index),
        )
    return graph


def from_networkx(graph: nx.Graph, schema: Schema) -> SocialNetwork:
    """Convert any networkx graph to a :class:`SocialNetwork`.

    Node/edge attribute dicts must use the schema's labels; attributes
    absent from a node or edge become nulls.  Undirected graphs are
    expanded to reciprocal directed edges (the paper's convention).
    """
    node_names = set(schema.node_attribute_names)
    edge_names = set(schema.edge_attribute_names)
    nodes = {
        node: {k: str(v) for k, v in data.items() if k in node_names}
        for node, data in graph.nodes(data=True)
    }
    edges = [
        (u, v, {k: str(val) for k, val in data.items() if k in edge_names})
        for u, v, data in graph.edges(data=True)
    ]
    network = SocialNetwork.from_records(schema, nodes, edges)
    if not graph.is_directed():
        network = network.with_reciprocal_edges()
    return network
