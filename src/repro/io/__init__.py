"""Persistence and interop (CSV directories, networkx graphs)."""

from .loaders import (
    from_networkx,
    load_network,
    save_network,
    schema_from_dict,
    schema_to_dict,
    to_networkx,
)

__all__ = [
    "from_networkx",
    "load_network",
    "save_network",
    "schema_from_dict",
    "schema_to_dict",
    "to_networkx",
]
