"""Attributed directed social network container.

A :class:`SocialNetwork` is the pair ``G = (V, E)`` of Section III: a set
of nodes and directed edges, where every node carries a code vector over
the schema's node attributes and every edge carries a code vector over
the edge attributes.  Attribute values are stored column-wise as numpy
arrays so the miners can gather and partition them without materializing
the per-edge joined table the paper warns about (Section IV intro).

Construction paths:

* :meth:`SocialNetwork.from_arrays` — columnar codes, zero-copy.
* :meth:`SocialNetwork.from_records` — label dictionaries, for tests,
  examples and loaders.

Undirected inputs are handled by :meth:`SocialNetwork.with_reciprocal_edges`
following the paper's convention that "an undirected edge can be
represented by a pair of directed edges in the opposite directions".
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from .schema import NULL, Schema, SchemaError

__all__ = ["SocialNetwork", "NetworkError"]


class NetworkError(ValueError):
    """Raised for structurally invalid networks or out-of-range references."""


class SocialNetwork:
    """Directed multidimensional graph with attributes on nodes and edges.

    Parameters
    ----------
    schema:
        Attribute specification.
    node_codes:
        Mapping from node attribute name to an int array of length ``|V|``.
    src, dst:
        Edge endpoint arrays of length ``|E|`` (node indices).
    edge_codes:
        Mapping from edge attribute name to an int array of length ``|E|``.
    node_ids:
        Optional external identifiers, one per node (defaults to ``0..|V|-1``).
    """

    def __init__(
        self,
        schema: Schema,
        node_codes: Mapping[str, np.ndarray],
        src: np.ndarray,
        dst: np.ndarray,
        edge_codes: Mapping[str, np.ndarray] | None = None,
        node_ids: Sequence[Hashable] | None = None,
    ) -> None:
        self.schema = schema
        self._node_codes = {
            name: np.ascontiguousarray(np.asarray(col, dtype=np.int64))
            for name, col in node_codes.items()
        }
        self.src = np.ascontiguousarray(np.asarray(src, dtype=np.int64))
        self.dst = np.ascontiguousarray(np.asarray(dst, dtype=np.int64))
        self._edge_codes = {
            name: np.ascontiguousarray(np.asarray(col, dtype=np.int64))
            for name, col in (edge_codes or {}).items()
        }
        self._validate()
        if node_ids is None:
            self.node_ids: tuple[Hashable, ...] = tuple(range(self.num_nodes))
        else:
            self.node_ids = tuple(node_ids)
            if len(self.node_ids) != self.num_nodes:
                raise NetworkError(
                    f"{len(self.node_ids)} node ids for {self.num_nodes} nodes"
                )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        expected_node = set(self.schema.node_attribute_names)
        got_node = set(self._node_codes)
        if expected_node != got_node:
            raise NetworkError(
                f"node attribute columns {sorted(got_node)} do not match "
                f"schema {sorted(expected_node)}"
            )
        expected_edge = set(self.schema.edge_attribute_names)
        got_edge = set(self._edge_codes)
        if expected_edge != got_edge:
            raise NetworkError(
                f"edge attribute columns {sorted(got_edge)} do not match "
                f"schema {sorted(expected_edge)}"
            )

        lengths = {col.shape[0] for col in self._node_codes.values()}
        if len(lengths) != 1:
            raise NetworkError(f"node attribute columns have mixed lengths: {lengths}")
        self._num_nodes = lengths.pop()

        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise NetworkError("src and dst must be 1-D arrays of equal length")
        self._num_edges = int(self.src.shape[0])
        for name, col in self._edge_codes.items():
            if col.shape[0] != self._num_edges:
                raise NetworkError(
                    f"edge attribute {name!r} has {col.shape[0]} entries "
                    f"for {self._num_edges} edges"
                )

        if self._num_edges:
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0 or hi >= self._num_nodes:
                raise NetworkError(
                    f"edge endpoints out of range [0, {self._num_nodes})"
                )

        for name, col in self._node_codes.items():
            attr = self.schema.node_attribute(name)
            self._check_codes(name, col, attr.domain_size)
        for name, col in self._edge_codes.items():
            attr = self.schema.edge_attribute(name)
            self._check_codes(name, col, attr.domain_size)

    @staticmethod
    def _check_codes(name: str, col: np.ndarray, domain_size: int) -> None:
        if col.size and (col.min() < NULL or col.max() > domain_size):
            raise NetworkError(
                f"attribute {name!r} has codes outside [0, {domain_size}]"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        schema: Schema,
        node_codes: Mapping[str, np.ndarray],
        src: np.ndarray,
        dst: np.ndarray,
        edge_codes: Mapping[str, np.ndarray] | None = None,
        node_ids: Sequence[Hashable] | None = None,
    ) -> "SocialNetwork":
        """Construct from columnar code arrays (alias of the constructor)."""
        return cls(schema, node_codes, src, dst, edge_codes, node_ids)

    @classmethod
    def from_records(
        cls,
        schema: Schema,
        nodes: Mapping[Hashable, Mapping[str, str]] | Iterable[tuple[Hashable, Mapping[str, str]]],
        edges: Iterable[tuple[Hashable, Hashable] | tuple[Hashable, Hashable, Mapping[str, str]]],
    ) -> "SocialNetwork":
        """Construct from label records.

        Parameters
        ----------
        nodes:
            Mapping (or iterable of pairs) from an external node id to its
            ``{attribute: label}`` dict.  Missing attributes become null.
        edges:
            Iterable of ``(u, v)`` or ``(u, v, {attribute: label})`` with
            ``u``/``v`` external node ids.
        """
        items = list(nodes.items()) if isinstance(nodes, Mapping) else list(nodes)
        if not items:
            raise NetworkError("a network needs at least one node")
        node_ids = [node_id for node_id, _ in items]
        if len(set(node_ids)) != len(node_ids):
            raise NetworkError("duplicate node ids")
        index_of = {node_id: i for i, (node_id, _) in enumerate(items)}

        encoded = [schema.encode_node(record) for _, record in items]
        node_codes = {
            attr.name: np.array([vec[j] for vec in encoded], dtype=np.int64)
            for j, attr in enumerate(schema.node_attributes)
        }

        src_list: list[int] = []
        dst_list: list[int] = []
        edge_records: list[tuple[int, ...]] = []
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                attrs: Mapping[str, str] = {}
            elif len(edge) == 3:
                u, v, attrs = edge
            else:
                raise NetworkError(f"bad edge record: {edge!r}")
            try:
                src_list.append(index_of[u])
                dst_list.append(index_of[v])
            except KeyError as exc:
                raise NetworkError(f"edge endpoint {exc.args[0]!r} is not a node") from None
            edge_records.append(schema.encode_edge(attrs))

        edge_codes = {
            attr.name: np.array([vec[j] for vec in edge_records], dtype=np.int64)
            for j, attr in enumerate(schema.edge_attributes)
        }
        return cls(
            schema,
            node_codes,
            np.array(src_list, dtype=np.int64),
            np.array(dst_list, dtype=np.int64),
            edge_codes,
            node_ids=node_ids,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def node_column(self, name: str) -> np.ndarray:
        """Code column (length ``|V|``) of a node attribute."""
        try:
            return self._node_codes[name]
        except KeyError:
            raise SchemaError(f"unknown node attribute {name!r}") from None

    def edge_column(self, name: str) -> np.ndarray:
        """Code column (length ``|E|``) of an edge attribute."""
        try:
            return self._edge_codes[name]
        except KeyError:
            raise SchemaError(f"unknown edge attribute {name!r}") from None

    def source_values(self, name: str) -> np.ndarray:
        """Per-edge codes of node attribute ``name`` at the edge *source*."""
        return self.node_column(name)[self.src]

    def dest_values(self, name: str) -> np.ndarray:
        """Per-edge codes of node attribute ``name`` at the edge *destination*."""
        return self.node_column(name)[self.dst]

    def node_record(self, index: int) -> dict[str, str]:
        """Decode node ``index`` to an ``{attribute: label}`` dict."""
        return self.schema.decode_node(
            [self._node_codes[a.name][index] for a in self.schema.node_attributes]
        )

    def edge_record(self, index: int) -> dict[str, str]:
        """Decode the attribute labels of edge ``index``."""
        return self.schema.decode_edge(
            [self._edge_codes[a.name][index] for a in self.schema.edge_attributes]
        )

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.bincount(self.src, minlength=self.num_nodes)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node."""
        return np.bincount(self.dst, minlength=self.num_nodes)

    # ------------------------------------------------------------------
    # Mutation (append-edge deltas)
    # ------------------------------------------------------------------
    def append_edges(
        self,
        src: np.ndarray | Sequence[int],
        dst: np.ndarray | Sequence[int],
        edge_codes: Mapping[str, np.ndarray] | None = None,
        on_duplicate: str = "allow",
    ) -> int:
        """Append new edges between *existing* nodes, in place.

        The delta is validated in full before any mutation, so a bad
        batch leaves the network untouched.  Only edges can be appended
        — the node set, node attributes and schema are immutable (new
        nodes would invalidate every node-indexed structure).  Derived
        structures (a :class:`~repro.data.store.CompactStore`, miner
        caches) do not see the change until explicitly rebuilt — see
        :meth:`CompactStore.apply_delta`.

        Duplicate and self-loop semantics
        ---------------------------------
        The network is a directed *multigraph*: two edges with the same
        ``(src, dst, edge codes)`` are distinct edge instances, and each
        contributes one unit to every count the miners take (``supp``,
        ``supp(l∧w)``, homophily counts) — the paper's measures are over
        edge instances, not node pairs, so repeated interactions
        *intentionally* weigh more.  ``on_duplicate`` controls whether a
        batch may create such multi-edges:

        * ``"allow"`` (default) — append everything; duplicates of
          existing rows or within the batch become parallel edges.
        * ``"reject"`` — raise :class:`NetworkError` (before any
          mutation) if an appended edge matches an existing edge row or
          another edge of the same batch on ``(src, dst)`` and every
          edge-attribute code.

        Self-loops (``src == dst``) are legal under either policy: a
        node may relate to its own group, and the store's LArray/RArray
        both carry the node.  ``"reject"`` only rejects *duplicate*
        self-loops, like any other row.

        Returns the number of edges appended.
        """
        if on_duplicate not in ("allow", "reject"):
            raise ValueError(
                f"on_duplicate must be 'allow' or 'reject'; got {on_duplicate!r}"
            )
        new_src = np.ascontiguousarray(np.asarray(src, dtype=np.int64))
        new_dst = np.ascontiguousarray(np.asarray(dst, dtype=np.int64))
        if new_src.shape != new_dst.shape or new_src.ndim != 1:
            raise NetworkError("src and dst must be 1-D arrays of equal length")
        count = int(new_src.shape[0])
        if count == 0:
            return 0
        lo = min(int(new_src.min()), int(new_dst.min()))
        hi = max(int(new_src.max()), int(new_dst.max()))
        if lo < 0 or hi >= self._num_nodes:
            raise NetworkError(
                f"appended edge endpoints out of range [0, {self._num_nodes})"
            )
        expected = set(self.schema.edge_attribute_names)
        got = set(edge_codes or {})
        if expected != got:
            raise NetworkError(
                f"appended edge attribute columns {sorted(got)} do not match "
                f"schema {sorted(expected)}"
            )
        new_edge_codes: dict[str, np.ndarray] = {}
        for name in expected:
            col = np.ascontiguousarray(np.asarray(edge_codes[name], dtype=np.int64))
            if col.shape != (count,):
                raise NetworkError(
                    f"appended edge attribute {name!r} has {col.shape[0]} entries "
                    f"for {count} edges"
                )
            attr = self.schema.edge_attribute(name)
            self._check_codes(name, col, attr.domain_size)
            new_edge_codes[name] = col

        if on_duplicate == "reject":
            names = sorted(expected)
            existing = set(
                zip(
                    self.src.tolist(),
                    self.dst.tolist(),
                    *(self._edge_codes[n].tolist() for n in names),
                )
            )
            seen: set[tuple] = set()
            duplicates: list[tuple] = []
            for i in range(count):
                row = (
                    int(new_src[i]),
                    int(new_dst[i]),
                    *(int(new_edge_codes[n][i]) for n in names),
                )
                if row in existing or row in seen:
                    duplicates.append(row)
                seen.add(row)
            if duplicates:
                shown = ", ".join(map(repr, duplicates[:5]))
                more = "" if len(duplicates) <= 5 else f" (+{len(duplicates) - 5} more)"
                identity = ", ".join(["src", "dst", *names])
                raise NetworkError(
                    f"append_edges(on_duplicate='reject'): {len(duplicates)} "
                    f"edge(s) duplicate an existing edge or another edge in "
                    f"the batch on ({identity}): {shown}{more}"
                )

        self.src = np.concatenate([self.src, new_src])
        self.dst = np.concatenate([self.dst, new_dst])
        for name, col in new_edge_codes.items():
            self._edge_codes[name] = np.concatenate([self._edge_codes[name], col])
        self._num_edges += count
        return count

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_reciprocal_edges(self) -> "SocialNetwork":
        """Return a copy with every edge accompanied by its reverse.

        This is the paper's representation of undirected relationships.
        Edge attributes are copied onto the reversed edges.
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        edge_codes = {
            name: np.concatenate([col, col]) for name, col in self._edge_codes.items()
        }
        return SocialNetwork(
            self.schema, self._node_codes, src, dst, edge_codes, node_ids=self.node_ids
        )

    def restrict_node_attributes(self, names: Iterable[str]) -> "SocialNetwork":
        """Project onto a subset of node attributes (Fig. 4d experiments)."""
        sub_schema = self.schema.restrict_node_attributes(names)
        node_codes = {name: self._node_codes[name] for name in sub_schema.node_attribute_names}
        return SocialNetwork(
            sub_schema, node_codes, self.src, self.dst, self._edge_codes, self.node_ids
        )

    def with_homophily(self, homophily_names: Iterable[str]) -> "SocialNetwork":
        """Return a copy whose schema flags exactly ``homophily_names``."""
        return SocialNetwork(
            self.schema.with_homophily(homophily_names),
            self._node_codes,
            self.src,
            self.dst,
            self._edge_codes,
            self.node_ids,
        )

    def __repr__(self) -> str:
        return (
            f"SocialNetwork(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"node_attrs={list(self.schema.node_attribute_names)}, "
            f"edge_attrs={list(self.schema.edge_attribute_names)})"
        )
