"""Data substrate: schemas, networks, and the two storage models."""

from .edgetable import EdgeTable, lhs_column, rhs_column, split_column
from .network import NetworkError, SocialNetwork
from .schema import NULL, Attribute, Schema, SchemaError
from .store import (
    CompactStore,
    SharedStoreExport,
    SharedStoreHandle,
    attach_shared_store,
)

__all__ = [
    "Attribute",
    "CompactStore",
    "SharedStoreExport",
    "SharedStoreHandle",
    "attach_shared_store",
    "EdgeTable",
    "NetworkError",
    "NULL",
    "Schema",
    "SchemaError",
    "SocialNetwork",
    "lhs_column",
    "rhs_column",
    "split_column",
]
