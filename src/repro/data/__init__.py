"""Data substrate: schemas, networks, and the two storage models."""

from .edgetable import EdgeTable, lhs_column, rhs_column, split_column
from .network import NetworkError, SocialNetwork
from .schema import NULL, Attribute, Schema, SchemaError
from .store import CompactStore

__all__ = [
    "Attribute",
    "CompactStore",
    "EdgeTable",
    "NetworkError",
    "NULL",
    "Schema",
    "SchemaError",
    "SocialNetwork",
    "lhs_column",
    "rhs_column",
    "split_column",
]
