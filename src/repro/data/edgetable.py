"""Single-table materialization of a social network (the BL1 layout).

The paper's Section IV intro describes the storage model frequent-set
miners need: "collecting all information in one table ... replicating the
node information for every edge adjacent to the node", of size
``|E| * (2*#AttrV + #AttrE)``.  BL1 (Section VI-D) mines this table with
the BUC algorithm.

:class:`EdgeTable` materializes that joined table.  Columns are named with
the paper's superscript convention: node attribute ``A`` appears as
``A^l`` (value at the edge source) and ``A^r`` (value at the edge
destination); edge attributes keep their name.
"""

from __future__ import annotations

import numpy as np

from .network import SocialNetwork

__all__ = ["EdgeTable", "lhs_column", "rhs_column", "split_column"]

_LHS_SUFFIX = "^l"
_RHS_SUFFIX = "^r"


def lhs_column(attr_name: str) -> str:
    """Column name of node attribute ``attr_name`` at the edge source."""
    return attr_name + _LHS_SUFFIX


def rhs_column(attr_name: str) -> str:
    """Column name of node attribute ``attr_name`` at the edge destination."""
    return attr_name + _RHS_SUFFIX


def split_column(column: str) -> tuple[str, str]:
    """Split a column name into ``(attribute, role)``.

    ``role`` is ``"L"`` for source columns, ``"R"`` for destination
    columns and ``"W"`` for edge-attribute columns.
    """
    if column.endswith(_LHS_SUFFIX):
        return column[: -len(_LHS_SUFFIX)], "L"
    if column.endswith(_RHS_SUFFIX):
        return column[: -len(_RHS_SUFFIX)], "R"
    return column, "W"


class EdgeTable:
    """Joined per-edge table with replicated endpoint attributes."""

    def __init__(self, network: SocialNetwork) -> None:
        self.network = network
        schema = network.schema
        self.columns: dict[str, np.ndarray] = {}
        self.domain_sizes: dict[str, int] = {}
        for attr in schema.node_attributes:
            self.columns[lhs_column(attr.name)] = network.source_values(attr.name)
            self.columns[rhs_column(attr.name)] = network.dest_values(attr.name)
            self.domain_sizes[lhs_column(attr.name)] = attr.domain_size
            self.domain_sizes[rhs_column(attr.name)] = attr.domain_size
        for attr in schema.edge_attributes:
            self.columns[attr.name] = network.edge_column(attr.name)
            self.domain_sizes[attr.name] = attr.domain_size

    @property
    def num_rows(self) -> int:
        return self.network.num_edges

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def size_cells(self) -> int:
        """Total cells, ``|E| * (2*#AttrV + #AttrE)``."""
        return self.num_rows * len(self.columns)

    def __repr__(self) -> str:
        return f"EdgeTable(rows={self.num_rows}, columns={len(self.columns)})"
