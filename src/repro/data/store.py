"""Compact data model: LArray, EArray and RArray (Section IV-A, Fig. 2).

The paper avoids the single joined edge table (size
``|E| * (2*#AttrV + #AttrE)``) by storing node and edge information
separately:

* **LArray** — one record per node with out-degree > 0: its node attribute
  codes, its out-degree ``Out`` and the index ``Ind`` of its first
  outgoing edge in EArray.
* **EArray** — one record per edge, grouped by source node: the edge
  attribute codes and a pointer ``Ptr`` to the destination's row in
  RArray.
* **RArray** — one record per node with in-degree > 0: its node attribute
  codes.

The compact size is ``|V|*(#AttrV+2) + |E|*(#AttrE+1) + |V|*#AttrV``
cells, which eliminates the ``|E| * 2 * #AttrV`` bottleneck term.

:class:`CompactStore` materializes this layout from a
:class:`~repro.data.network.SocialNetwork` and exposes the per-edge
gather operations the miners need (source codes, destination codes, edge
codes — all resolved through the pointer structure, never via a joined
table).

For multi-process mining, :meth:`CompactStore.export_shared` packs the
store's arrays *and* the backing network's code columns into one
POSIX shared-memory segment.  The returned :class:`SharedStoreHandle` is
a small picklable descriptor; :func:`attach_shared_store` reconstructs a
read-only network + store in a worker as zero-copy views over the
segment — the data is written once by the parent, never serialized per
worker.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..obs.metrics import REGISTRY
from ..serve.markers import coordinator_only
from .network import SocialNetwork
from .schema import Schema

_STORE_ATTACHES = REGISTRY.counter(
    "repro_store_attaches_total",
    "Shared-store attaches (per-process: worker attaches land in the "
    "worker's own registry).",
)

__all__ = [
    "CompactStore",
    "SharedStoreExport",
    "SharedStoreHandle",
    "SharedStoreLease",
    "StoreDelta",
    "attach_shared_store",
]


@dataclass(frozen=True)
class StoreDelta:
    """Structured description of one append-edge rebuild.

    Produced by :meth:`CompactStore.apply_delta`: the store compares the
    backing network's edge count against the count it was last built
    from, so the *tail* rows ``[num_edges_before, num_edges_after)`` of
    the network arrays are exactly the appended edges.

    ``touched_partitions`` is the delta's footprint on the SFDF tree's
    first level: the set of ``(node attribute name, source code)``
    pairs matched by at least one new edge's source — i.e. every
    first-level LEFT branch whose edge subset grew.  A first-level
    branch *not* in this set kept its edge subset bit-for-bit (a GR's
    l∧w edge set can only change when some new edge matches its full
    LHS, which in particular matches the branch assignment), which is
    the invariant the engine's incremental re-mining leans on.  GRs
    with an *empty* LHS select over all edges, so the root branch is
    touched by every non-empty delta.

    ``untracked`` marks a delta the store could not account for (the
    network shrank or was swapped out from under it — something other
    than :meth:`SocialNetwork.append_edges` mutated it).  Consumers
    must treat an untracked delta as "anything may have changed" and
    fall back to full invalidation.
    """

    num_edges_before: int
    num_edges_after: int
    #: Source / destination node ids of the appended edges (network
    #: row order; empty for an untracked delta).
    new_src: np.ndarray = None
    new_dst: np.ndarray = None
    #: ``(node attribute name, source code)`` pairs whose first-level
    #: branch gained at least one edge.
    touched_partitions: frozenset = frozenset()
    untracked: bool = False

    @property
    def num_new_edges(self) -> int:
        return self.num_edges_after - self.num_edges_before

    def touched_sources(self) -> frozenset:
        """Node ids appearing as a source of some appended edge."""
        if self.new_src is None:
            return frozenset()
        return frozenset(int(v) for v in self.new_src)

    def touched_destinations(self) -> frozenset:
        """Node ids appearing as a destination of some appended edge."""
        if self.new_dst is None:
            return frozenset()
        return frozenset(int(v) for v in self.new_dst)


class CompactStore:
    """LArray / EArray / RArray materialization of a social network.

    Parameters
    ----------
    network:
        The network to index.  The store keeps its own edge ordering:
        edges are re-grouped by source node (the EArray layout), and all
        edge indices exposed by this class refer to that ordering.
    """

    def __init__(self, network: SocialNetwork) -> None:
        self.network = network
        self._rebuild()

    def _rebuild(self) -> None:
        """(Re-)derive every array from the backing network's columns."""
        network = self.network
        schema = network.schema
        src, dst = network.src, network.dst
        num_nodes, num_edges = network.num_nodes, network.num_edges

        out_deg = np.bincount(src, minlength=num_nodes)
        in_deg = np.bincount(dst, minlength=num_nodes)

        # ---- LArray: nodes with positive out-degree --------------------
        self.l_nodes = np.flatnonzero(out_deg > 0)
        l_row_of_node = np.full(num_nodes, -1, dtype=np.int64)
        l_row_of_node[self.l_nodes] = np.arange(self.l_nodes.size)
        self.l_attrs = {
            name: network.node_column(name)[self.l_nodes]
            for name in schema.node_attribute_names
        }
        self.l_out = out_deg[self.l_nodes].astype(np.int64)
        self.l_ind = np.zeros(self.l_nodes.size, dtype=np.int64)
        if self.l_nodes.size:
            np.cumsum(self.l_out[:-1], out=self.l_ind[1:])

        # ---- RArray: nodes with positive in-degree ---------------------
        self.r_nodes = np.flatnonzero(in_deg > 0)
        r_row_of_node = np.full(num_nodes, -1, dtype=np.int64)
        r_row_of_node[self.r_nodes] = np.arange(self.r_nodes.size)
        self.r_attrs = {
            name: network.node_column(name)[self.r_nodes]
            for name in schema.node_attribute_names
        }

        # ---- EArray: edges grouped by source node ----------------------
        # Stable counting-sort style grouping on the source id keeps the
        # original relative order of a node's out-edges.
        order = np.argsort(src, kind="stable")
        self.edge_order = order
        self.e_src_row = l_row_of_node[src[order]]
        self.e_ptr = r_row_of_node[dst[order]]
        self.e_attrs = {
            name: network.edge_column(name)[order]
            for name in schema.edge_attribute_names
        }
        self._num_edges = num_edges
        self._fingerprint: str | None = None

    @coordinator_only
    def apply_delta(self) -> StoreDelta:
        """Re-derive the store after the backing network appended edges.

        The node columns are untouched by an append-edge delta; this
        rebuilds the edge-derived state — the EArray grouping, the
        degree-dependent LArray/RArray rows and the pointer structure —
        and resets the memoized :meth:`fingerprint` so the store's cache
        identity changes with its content.  Callers holding store-derived
        caches (per-edge column gathers, first-level partitions, shared
        exports) must rebuild them: the engine layer's
        ``refresh_store()`` does exactly that.

        Returns a :class:`StoreDelta` describing what changed: the
        appended tail rows plus their first-level partition footprint
        (the input of the engine's incremental re-mining differ).  A
        mutation the store cannot attribute to an edge append — the
        network's edge count went *down*, meaning something replaced the
        arrays wholesale — yields an ``untracked`` delta, which
        consumers must treat as a full invalidation.
        """
        before = self._num_edges
        network = self.network
        after = network.num_edges
        if after < before:
            self._rebuild()
            return StoreDelta(
                num_edges_before=before, num_edges_after=after, untracked=True
            )
        new_src = np.array(network.src[before:after], dtype=np.int64)
        new_dst = np.array(network.dst[before:after], dtype=np.int64)
        touched = frozenset(
            (name, int(code))
            for name in network.schema.node_attribute_names
            for code in np.unique(network.node_column(name)[new_src])
        )
        self._rebuild()
        return StoreDelta(
            num_edges_before=before,
            num_edges_after=after,
            new_src=new_src,
            new_dst=new_dst,
            touched_partitions=touched,
        )

    # ------------------------------------------------------------------
    # Sizes (the Section IV-A storage claim)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    def size_cells(self) -> int:
        """Cells used by the compact model.

        ``LArray`` holds ``#AttrV + 2`` cells per source row (attributes,
        Out, Ind); ``EArray`` holds ``#AttrE + 1`` per edge (attributes,
        Ptr); ``RArray`` holds ``#AttrV`` per destination row.
        """
        n_attr_v = len(self.network.schema.node_attributes)
        n_attr_e = len(self.network.schema.edge_attributes)
        return (
            self.l_nodes.size * (n_attr_v + 2)
            + self._num_edges * (n_attr_e + 1)
            + self.r_nodes.size * n_attr_v
        )

    def single_table_size_cells(self) -> int:
        """Cells the joined single-table representation would use:
        ``|E| * (2*#AttrV + #AttrE)`` (Section IV intro)."""
        n_attr_v = len(self.network.schema.node_attributes)
        n_attr_e = len(self.network.schema.edge_attributes)
        return self._num_edges * (2 * n_attr_v + n_attr_e)

    # ------------------------------------------------------------------
    # Per-edge gathers through the pointer structure
    # ------------------------------------------------------------------
    def source_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Node-attribute codes at the source of each edge (via LArray rows)."""
        rows = self.e_src_row if edges is None else self.e_src_row[edges]
        return self.l_attrs[name][rows]

    def dest_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Node-attribute codes at the destination of each edge (via Ptr)."""
        rows = self.e_ptr if edges is None else self.e_ptr[edges]
        return self.r_attrs[name][rows]

    def edge_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Edge-attribute codes of each edge."""
        col = self.e_attrs[name]
        return col if edges is None else col[edges]

    def all_edges(self) -> np.ndarray:
        """Index array of all edges in EArray order."""
        return np.arange(self._num_edges, dtype=np.int64)

    def out_edges_of_l_row(self, row: int) -> np.ndarray:
        """Edges leaving the node of LArray row ``row`` (uses Out and Ind)."""
        start = int(self.l_ind[row])
        return np.arange(start, start + int(self.l_out[row]), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"CompactStore(L={self.l_nodes.size}, E={self._num_edges}, "
            f"R={self.r_nodes.size}, cells={self.size_cells()})"
        )

    # ------------------------------------------------------------------
    # Identity (repro.engine result-cache keying)
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the store: schema + every array a miner reads.

        Two stores with equal fingerprints answer every mining query
        identically, so the engine layer keys its result cache (and
        tags its results) with this.  Computed once and memoized; an
        :meth:`apply_delta` rebuild resets the memo, so a mutated store
        hashes to a new identity.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            for attr in self.network.schema:
                digest.update(
                    repr((attr.name, attr.values, attr.homophily)).encode()
                )
            digest.update(
                f"|V={self.network.num_nodes}|E={self._num_edges}|".encode()
            )
            for key, arr in sorted(self._shared_arrays().items()):
                arr = np.ascontiguousarray(arr)
                digest.update(key.encode())
                digest.update(str(arr.dtype).encode())
                digest.update(repr(arr.shape).encode())
                digest.update(arr.data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Shared-memory export (repro.parallel)
    # ------------------------------------------------------------------
    def _shared_arrays(self) -> dict[str, np.ndarray]:
        """Every array a worker needs, keyed for the shared segment."""
        network = self.network
        arrays: dict[str, np.ndarray] = {
            "net.src": network.src,
            "net.dst": network.dst,
            "store.l_nodes": self.l_nodes,
            "store.l_out": self.l_out,
            "store.l_ind": self.l_ind,
            "store.r_nodes": self.r_nodes,
            "store.edge_order": self.edge_order,
            "store.e_src_row": self.e_src_row,
            "store.e_ptr": self.e_ptr,
        }
        for name in network.schema.node_attribute_names:
            arrays[f"net.node.{name}"] = network.node_column(name)
            arrays[f"store.l_attrs.{name}"] = self.l_attrs[name]
            arrays[f"store.r_attrs.{name}"] = self.r_attrs[name]
        for name in network.schema.edge_attribute_names:
            arrays[f"net.edge.{name}"] = network.edge_column(name)
            arrays[f"store.e_attrs.{name}"] = self.e_attrs[name]
        return arrays

    @coordinator_only
    def export_shared(self) -> "SharedStoreExport":
        """Copy the store + network arrays into one shared-memory segment.

        The parent pays a single memcpy; every worker then attaches
        zero-copy read-only views via :func:`attach_shared_store`.  The
        caller owns the segment: ``close()`` + ``unlink()`` it (or use
        the export as a context manager) once the workers are done.
        """
        arrays = self._shared_arrays()
        specs: list[SharedArraySpec] = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            arrays[key] = arr
            specs.append(SharedArraySpec(key, str(arr.dtype), arr.shape, offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        try:
            for spec, arr in zip(specs, arrays.values()):
                view = np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=spec.offset
                )
                view[...] = arr
        except BaseException:  # never orphan a half-written segment
            shm.close()
            shm.unlink()
            raise
        handle = SharedStoreHandle(
            shm_name=shm.name,
            specs=tuple(specs),
            schema=self.network.schema,
            num_nodes=self.network.num_nodes,
            num_edges=self._num_edges,
        )
        return SharedStoreExport(shm=shm, handle=handle)

    @coordinator_only
    def lease_shared(self) -> "SharedStoreLease":
        """Export into shared memory under a guaranteed-unlink lease.

        Prefer this over :meth:`export_shared` anywhere an exception can
        unwind past the export (worker crashes, pool setup failures):
        the lease unlinks the segment on ``close()`` / ``__exit__`` *and*
        from a garbage-collection/interpreter-exit finalizer, so no
        failure mode short of SIGKILL orphans a ``/dev/shm`` segment.
        """
        return SharedStoreLease(self.export_shared())

    @classmethod
    def _from_shared(
        cls, network: SocialNetwork, arrays: dict[str, np.ndarray]
    ) -> "CompactStore":
        """Rebuild a store from attached views, skipping recomputation."""
        self = cls.__new__(cls)
        self.network = network
        schema = network.schema
        self.l_nodes = arrays["store.l_nodes"]
        self.l_out = arrays["store.l_out"]
        self.l_ind = arrays["store.l_ind"]
        self.r_nodes = arrays["store.r_nodes"]
        self.edge_order = arrays["store.edge_order"]
        self.e_src_row = arrays["store.e_src_row"]
        self.e_ptr = arrays["store.e_ptr"]
        self.l_attrs = {
            name: arrays[f"store.l_attrs.{name}"] for name in schema.node_attribute_names
        }
        self.r_attrs = {
            name: arrays[f"store.r_attrs.{name}"] for name in schema.node_attribute_names
        }
        self.e_attrs = {
            name: arrays[f"store.e_attrs.{name}"] for name in schema.edge_attribute_names
        }
        self._num_edges = network.num_edges
        self._fingerprint = None
        return self


@dataclass(frozen=True)
class SharedArraySpec:
    """Location of one array inside the shared segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SharedStoreHandle:
    """Picklable descriptor of an exported store (ship this to workers)."""

    shm_name: str
    specs: tuple[SharedArraySpec, ...]
    schema: Schema
    num_nodes: int
    num_edges: int


@dataclass
class SharedStoreExport:
    """Owning side of a shared-memory export (parent process)."""

    shm: shared_memory.SharedMemory
    handle: SharedStoreHandle

    def __enter__(self) -> "SharedStoreExport":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        """Close and unlink the segment (idempotent)."""
        _release_segment(self.shm)


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # already unlinked
        pass


class SharedStoreLease:
    """Owning lease on a shared store export with guaranteed unlink.

    A bare :class:`SharedStoreExport` relies on the happy path calling
    ``release()``; if an exception unwinds past the owner (a worker
    raises mid-query, pool setup fails, a test errors out), the segment
    is orphaned in ``/dev/shm`` until reboot.  The lease closes the same
    gap three ways: ``close()`` is idempotent, ``with lease:`` releases
    on any exit, and a :func:`weakref.finalize` finalizer fires when the
    lease is garbage-collected or the interpreter exits — so cleanup
    never depends on reaching a particular line.

    The picklable :attr:`handle` is what travels to worker processes;
    workers attach by name and are unaffected by the parent unlinking
    the name after they have mapped it (POSIX semantics).
    """

    def __init__(self, export: SharedStoreExport) -> None:
        self._export = export
        self._finalizer = weakref.finalize(self, _release_segment, export.shm)

    @property
    def handle(self) -> SharedStoreHandle:
        """The picklable descriptor to ship to workers."""
        return self._export.handle

    @property
    def name(self) -> str:
        """The shared-memory segment's name."""
        return self._export.shm.name

    @property
    def size(self) -> int:
        """Bytes held by the segment (the hub's memory-budget unit)."""
        return self._export.shm.size

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "SharedStoreLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SharedStoreLease({self.name!r}, {state})"


def attach_shared_store(
    handle: SharedStoreHandle,
) -> tuple[SocialNetwork, CompactStore, shared_memory.SharedMemory]:
    """Reconstruct a read-only network + store from a shared export.

    The returned arrays are views over the segment — no copies are made.
    The caller must keep the returned ``SharedMemory`` object alive for
    as long as the network/store are used, and ``close()`` it afterwards.
    External ``node_ids`` are not shipped (workers mine over codes and
    decode through the schema, so they never need them).
    """
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    _STORE_ATTACHES.inc()
    arrays: dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        arrays[spec.key] = view
    schema = handle.schema
    network = SocialNetwork(
        schema,
        {name: arrays[f"net.node.{name}"] for name in schema.node_attribute_names},
        arrays["net.src"],
        arrays["net.dst"],
        {name: arrays[f"net.edge.{name}"] for name in schema.edge_attribute_names},
    )
    store = CompactStore._from_shared(network, arrays)
    return network, store, shm
