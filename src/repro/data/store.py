"""Compact data model: LArray, EArray and RArray (Section IV-A, Fig. 2).

The paper avoids the single joined edge table (size
``|E| * (2*#AttrV + #AttrE)``) by storing node and edge information
separately:

* **LArray** — one record per node with out-degree > 0: its node attribute
  codes, its out-degree ``Out`` and the index ``Ind`` of its first
  outgoing edge in EArray.
* **EArray** — one record per edge, grouped by source node: the edge
  attribute codes and a pointer ``Ptr`` to the destination's row in
  RArray.
* **RArray** — one record per node with in-degree > 0: its node attribute
  codes.

The compact size is ``|V|*(#AttrV+2) + |E|*(#AttrE+1) + |V|*#AttrV``
cells, which eliminates the ``|E| * 2 * #AttrV`` bottleneck term.

:class:`CompactStore` materializes this layout from a
:class:`~repro.data.network.SocialNetwork` and exposes the per-edge
gather operations the miners need (source codes, destination codes, edge
codes — all resolved through the pointer structure, never via a joined
table).
"""

from __future__ import annotations

import numpy as np

from .network import SocialNetwork

__all__ = ["CompactStore"]


class CompactStore:
    """LArray / EArray / RArray materialization of a social network.

    Parameters
    ----------
    network:
        The network to index.  The store keeps its own edge ordering:
        edges are re-grouped by source node (the EArray layout), and all
        edge indices exposed by this class refer to that ordering.
    """

    def __init__(self, network: SocialNetwork) -> None:
        self.network = network
        schema = network.schema
        src, dst = network.src, network.dst
        num_nodes, num_edges = network.num_nodes, network.num_edges

        out_deg = np.bincount(src, minlength=num_nodes)
        in_deg = np.bincount(dst, minlength=num_nodes)

        # ---- LArray: nodes with positive out-degree --------------------
        self.l_nodes = np.flatnonzero(out_deg > 0)
        l_row_of_node = np.full(num_nodes, -1, dtype=np.int64)
        l_row_of_node[self.l_nodes] = np.arange(self.l_nodes.size)
        self.l_attrs = {
            name: network.node_column(name)[self.l_nodes]
            for name in schema.node_attribute_names
        }
        self.l_out = out_deg[self.l_nodes].astype(np.int64)
        self.l_ind = np.zeros(self.l_nodes.size, dtype=np.int64)
        if self.l_nodes.size:
            np.cumsum(self.l_out[:-1], out=self.l_ind[1:])

        # ---- RArray: nodes with positive in-degree ---------------------
        self.r_nodes = np.flatnonzero(in_deg > 0)
        r_row_of_node = np.full(num_nodes, -1, dtype=np.int64)
        r_row_of_node[self.r_nodes] = np.arange(self.r_nodes.size)
        self.r_attrs = {
            name: network.node_column(name)[self.r_nodes]
            for name in schema.node_attribute_names
        }

        # ---- EArray: edges grouped by source node ----------------------
        # Stable counting-sort style grouping on the source id keeps the
        # original relative order of a node's out-edges.
        order = np.argsort(src, kind="stable")
        self.edge_order = order
        self.e_src_row = l_row_of_node[src[order]]
        self.e_ptr = r_row_of_node[dst[order]]
        self.e_attrs = {
            name: network.edge_column(name)[order]
            for name in schema.edge_attribute_names
        }
        self._num_edges = num_edges

    # ------------------------------------------------------------------
    # Sizes (the Section IV-A storage claim)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    def size_cells(self) -> int:
        """Cells used by the compact model.

        ``LArray`` holds ``#AttrV + 2`` cells per source row (attributes,
        Out, Ind); ``EArray`` holds ``#AttrE + 1`` per edge (attributes,
        Ptr); ``RArray`` holds ``#AttrV`` per destination row.
        """
        n_attr_v = len(self.network.schema.node_attributes)
        n_attr_e = len(self.network.schema.edge_attributes)
        return (
            self.l_nodes.size * (n_attr_v + 2)
            + self._num_edges * (n_attr_e + 1)
            + self.r_nodes.size * n_attr_v
        )

    def single_table_size_cells(self) -> int:
        """Cells the joined single-table representation would use:
        ``|E| * (2*#AttrV + #AttrE)`` (Section IV intro)."""
        n_attr_v = len(self.network.schema.node_attributes)
        n_attr_e = len(self.network.schema.edge_attributes)
        return self._num_edges * (2 * n_attr_v + n_attr_e)

    # ------------------------------------------------------------------
    # Per-edge gathers through the pointer structure
    # ------------------------------------------------------------------
    def source_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Node-attribute codes at the source of each edge (via LArray rows)."""
        rows = self.e_src_row if edges is None else self.e_src_row[edges]
        return self.l_attrs[name][rows]

    def dest_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Node-attribute codes at the destination of each edge (via Ptr)."""
        rows = self.e_ptr if edges is None else self.e_ptr[edges]
        return self.r_attrs[name][rows]

    def edge_codes(self, name: str, edges: np.ndarray | None = None) -> np.ndarray:
        """Edge-attribute codes of each edge."""
        col = self.e_attrs[name]
        return col if edges is None else col[edges]

    def all_edges(self) -> np.ndarray:
        """Index array of all edges in EArray order."""
        return np.arange(self._num_edges, dtype=np.int64)

    def out_edges_of_l_row(self, row: int) -> np.ndarray:
        """Edges leaving the node of LArray row ``row`` (uses Out and Ind)."""
        start = int(self.l_ind[row])
        return np.arange(start, start + int(self.l_out[row]), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"CompactStore(L={self.l_nodes.size}, E={self._num_edges}, "
            f"R={self.r_nodes.size}, cells={self.size_cells()})"
        )
