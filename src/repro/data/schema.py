"""Attribute schema for multidimensional social networks.

The paper (Section III) models every node and edge attribute ``A`` as a
discrete domain ``{0, 1, ..., |A|}`` where ``0`` is the null value.  Each
attribute is additionally designated *homophily* or *non-homophily*
(Section III-B): homophily attributes are those on which individuals
sharing a value are expected to connect at a higher rate, and the nhp
metric discounts exactly that effect.

This module provides:

* :class:`Attribute` — one named attribute with labelled values and a
  homophily flag.
* :class:`Schema` — the full attribute specification of a network: an
  ordered collection of node attributes and edge attributes, with
  label <-> code translation helpers.

Values are stored internally as integer codes (``numpy`` friendly); user
facing APIs accept and return string labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["Attribute", "Schema", "NULL", "SchemaError"]

#: Integer code reserved for the null value of every attribute.
NULL = 0


class SchemaError(ValueError):
    """Raised for malformed schemas or unknown attributes/values."""


@dataclass(frozen=True)
class Attribute:
    """A discrete attribute with labelled values.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"EDU"``.  Names are unique within the node
        attributes and within the edge attributes of a :class:`Schema`.
    values:
        Labels for the non-null codes ``1..len(values)``, in code order.
        Code ``0`` is always the null value and has no label.
    homophily:
        Whether the attribute follows the homophily principle (Section
        III-B).  Only meaningful for node attributes; edge attributes are
        never homophilous because they do not describe endpoints.
    """

    name: str
    values: tuple[str, ...]
    homophily: bool = False
    _code_of: Mapping[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        values = tuple(self.values)
        if len(set(values)) != len(values):
            raise SchemaError(f"attribute {self.name!r} has duplicate value labels")
        if not values:
            raise SchemaError(f"attribute {self.name!r} must have at least one value")
        object.__setattr__(self, "values", values)
        object.__setattr__(
            self, "_code_of", {label: code for code, label in enumerate(values, start=1)}
        )

    @property
    def domain_size(self) -> int:
        """Number of non-null values, the ``|A|`` of the paper."""
        return len(self.values)

    def code(self, label: str) -> int:
        """Translate a value label to its integer code (1-based)."""
        try:
            return self._code_of[label]
        except KeyError:
            raise SchemaError(
                f"attribute {self.name!r} has no value {label!r}; "
                f"known values: {list(self.values)}"
            ) from None

    def label(self, code: int) -> str:
        """Translate an integer code back to its label.

        The null code ``0`` is rendered as ``"<null>"``.
        """
        if code == NULL:
            return "<null>"
        if not 1 <= code <= len(self.values):
            raise SchemaError(
                f"attribute {self.name!r} has no code {code}; domain size is {self.domain_size}"
            )
        return self.values[code - 1]

    def codes(self) -> range:
        """All non-null codes of this attribute."""
        return range(1, self.domain_size + 1)


class Schema:
    """Attribute specification of a social network.

    Parameters
    ----------
    node_attributes:
        Ordered attributes describing nodes.
    edge_attributes:
        Ordered attributes describing edges.  Edge attributes must not be
        flagged homophilous.

    Examples
    --------
    >>> schema = Schema(
    ...     node_attributes=[
    ...         Attribute("SEX", ("F", "M")),
    ...         Attribute("EDU", ("HighSchool", "College", "Grad"), homophily=True),
    ...     ],
    ...     edge_attributes=[Attribute("TYPE", ("dates",))],
    ... )
    >>> schema.node_attribute("EDU").homophily
    True
    """

    def __init__(
        self,
        node_attributes: Iterable[Attribute],
        edge_attributes: Iterable[Attribute] = (),
    ) -> None:
        self._node_attrs: tuple[Attribute, ...] = tuple(node_attributes)
        self._edge_attrs: tuple[Attribute, ...] = tuple(edge_attributes)
        if not self._node_attrs:
            raise SchemaError("a schema needs at least one node attribute")
        node_names = [a.name for a in self._node_attrs]
        edge_names = [a.name for a in self._edge_attrs]
        if len(set(node_names)) != len(node_names):
            raise SchemaError(f"duplicate node attribute names: {node_names}")
        if len(set(edge_names)) != len(edge_names):
            raise SchemaError(f"duplicate edge attribute names: {edge_names}")
        overlap = set(node_names) & set(edge_names)
        if overlap:
            raise SchemaError(f"attributes declared as both node and edge: {sorted(overlap)}")
        for attr in self._edge_attrs:
            if attr.homophily:
                raise SchemaError(
                    f"edge attribute {attr.name!r} cannot be homophilous: homophily "
                    "describes endpoint similarity, not edge labels"
                )
        self._node_by_name = {a.name: a for a in self._node_attrs}
        self._edge_by_name = {a.name: a for a in self._edge_attrs}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_attributes(self) -> tuple[Attribute, ...]:
        return self._node_attrs

    @property
    def edge_attributes(self) -> tuple[Attribute, ...]:
        return self._edge_attrs

    @property
    def node_attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._node_attrs)

    @property
    def edge_attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._edge_attrs)

    @property
    def homophily_attribute_names(self) -> tuple[str, ...]:
        """Names of homophilous node attributes, in schema order."""
        return tuple(a.name for a in self._node_attrs if a.homophily)

    @property
    def non_homophily_attribute_names(self) -> tuple[str, ...]:
        """Names of non-homophilous node attributes, in schema order."""
        return tuple(a.name for a in self._node_attrs if not a.homophily)

    def node_attribute(self, name: str) -> Attribute:
        try:
            return self._node_by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown node attribute {name!r}; known: {list(self._node_by_name)}"
            ) from None

    def edge_attribute(self, name: str) -> Attribute:
        try:
            return self._edge_by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown edge attribute {name!r}; known: {list(self._edge_by_name)}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name regardless of kind."""
        if name in self._node_by_name:
            return self._node_by_name[name]
        return self.edge_attribute(name)

    def is_node_attribute(self, name: str) -> bool:
        return name in self._node_by_name

    def is_edge_attribute(self, name: str) -> bool:
        return name in self._edge_by_name

    def is_homophily(self, name: str) -> bool:
        """Whether ``name`` is a homophily node attribute."""
        return self.attribute(name).homophily if self.is_node_attribute(name) else False

    def __contains__(self, name: str) -> bool:
        return name in self._node_by_name or name in self._edge_by_name

    def __iter__(self) -> Iterator[Attribute]:
        yield from self._node_attrs
        yield from self._edge_attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._node_attrs == other._node_attrs and self._edge_attrs == other._edge_attrs
        )

    def __hash__(self) -> int:
        return hash((self._node_attrs, self._edge_attrs))

    def __repr__(self) -> str:
        return (
            f"Schema(node_attributes={[a.name for a in self._node_attrs]}, "
            f"edge_attributes={[a.name for a in self._edge_attrs]})"
        )

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def encode_node(self, record: Mapping[str, str]) -> tuple[int, ...]:
        """Encode a node's ``{attr: label}`` mapping to a code vector.

        Missing attributes encode to the null code.
        """
        self._check_known(record, self._node_by_name, kind="node")
        return tuple(
            attr.code(record[attr.name]) if attr.name in record else NULL
            for attr in self._node_attrs
        )

    def encode_edge(self, record: Mapping[str, str]) -> tuple[int, ...]:
        """Encode an edge's ``{attr: label}`` mapping to a code vector."""
        self._check_known(record, self._edge_by_name, kind="edge")
        return tuple(
            attr.code(record[attr.name]) if attr.name in record else NULL
            for attr in self._edge_attrs
        )

    def decode_node(self, codes: Sequence[int]) -> dict[str, str]:
        """Decode a node code vector to ``{attr: label}``, omitting nulls."""
        return {
            attr.name: attr.label(code)
            for attr, code in zip(self._node_attrs, codes)
            if code != NULL
        }

    def decode_edge(self, codes: Sequence[int]) -> dict[str, str]:
        """Decode an edge code vector to ``{attr: label}``, omitting nulls."""
        return {
            attr.name: attr.label(code)
            for attr, code in zip(self._edge_attrs, codes)
            if code != NULL
        }

    @staticmethod
    def _check_known(
        record: Mapping[str, str], known: Mapping[str, Attribute], kind: str
    ) -> None:
        unknown = set(record) - set(known)
        if unknown:
            raise SchemaError(f"unknown {kind} attributes: {sorted(unknown)}")

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_homophily(self, homophily_names: Iterable[str]) -> "Schema":
        """Return a copy with exactly ``homophily_names`` flagged homophilous."""
        names = set(homophily_names)
        unknown = names - set(self.node_attribute_names)
        if unknown:
            raise SchemaError(f"unknown node attributes in homophily set: {sorted(unknown)}")
        node_attrs = [
            Attribute(a.name, a.values, homophily=a.name in names) for a in self._node_attrs
        ]
        edge_attrs = [Attribute(a.name, a.values, homophily=False) for a in self._edge_attrs]
        return Schema(node_attrs, edge_attrs)

    def restrict_node_attributes(self, names: Iterable[str]) -> "Schema":
        """Return a schema keeping only the named node attributes (in schema order)."""
        keep = set(names)
        unknown = keep - set(self.node_attribute_names)
        if unknown:
            raise SchemaError(f"unknown node attributes: {sorted(unknown)}")
        node_attrs = [a for a in self._node_attrs if a.name in keep]
        if not node_attrs:
            raise SchemaError("restriction would leave no node attributes")
        return Schema(node_attrs, self._edge_attrs)
