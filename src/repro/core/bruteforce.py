"""Brute-force reference miner.

Enumerates *every* GR over the schema directly from the Definition 2–5
semantics, with no search-space tricks: all value assignments for all
attribute subsets, metrics via :class:`~repro.core.metrics.MetricEngine`,
then threshold / triviality / generality / top-k filtering as literal
set operations.

It is exponential and only usable on small networks and schemas — which
is exactly its job: the gold standard GRMiner's output is tested against
(unit tests and hypothesis property tests).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterator, Sequence

from ..data.network import SocialNetwork
from .descriptors import GR, Descriptor
from .metrics import MetricEngine
from .results import MinedGR, MiningResult, MiningStats

__all__ = ["BruteForceMiner", "enumerate_all_grs"]


def _descriptor_assignments(
    attributes: Sequence, max_attrs: int | None
) -> Iterator[Descriptor]:
    """All descriptors over ``attributes`` (including the empty one)."""
    limit = len(attributes) if max_attrs is None else min(max_attrs, len(attributes))
    for size in range(limit + 1):
        for attrs in combinations(attributes, size):
            for values in product(*(attr.values for attr in attrs)):
                yield Descriptor(tuple((a.name, v) for a, v in zip(attrs, values)))


def enumerate_all_grs(
    network: SocialNetwork,
    node_attributes: Sequence[str] | None = None,
    max_lhs_attrs: int | None = None,
    max_rhs_attrs: int | None = None,
    max_edge_attrs: int | None = None,
    allow_empty_lhs: bool = False,
) -> Iterator[GR]:
    """Yield every syntactically valid GR over the network's schema."""
    schema = network.schema
    names = node_attributes if node_attributes is not None else schema.node_attribute_names
    node_attrs = [schema.node_attribute(n) for n in names]
    edge_attrs = list(schema.edge_attributes)
    for lhs in _descriptor_assignments(node_attrs, max_lhs_attrs):
        if not lhs and not allow_empty_lhs:
            continue
        for edge in _descriptor_assignments(edge_attrs, max_edge_attrs):
            for rhs in _descriptor_assignments(node_attrs, max_rhs_attrs):
                if not rhs:
                    continue
                yield GR(lhs, rhs, edge)


class BruteForceMiner:
    """Definition-level top-k GR mining (see module docstring).

    The constructor mirrors :class:`~repro.core.miner.GRMiner` where the
    parameters are meaningful for a brute-force search.
    """

    def __init__(
        self,
        network: SocialNetwork,
        min_support: int | float = 1,
        min_score: float = 0.0,
        k: int | None = None,
        rank_by: str = "nhp",
        node_attributes: Sequence[str] | None = None,
        include_trivial: bool | None = None,
        allow_empty_lhs: bool = False,
        max_lhs_attrs: int | None = None,
        max_rhs_attrs: int | None = None,
        max_edge_attrs: int | None = None,
        apply_generality: bool = True,
        laplace_k: int = 2,
        gain_theta: float = 0.5,
    ) -> None:
        if rank_by not in ("nhp", "confidence", "laplace", "gain"):
            raise ValueError(f"unsupported rank_by {rank_by!r}")
        self.network = network
        self.schema = network.schema
        self.engine = MetricEngine(network)
        from .miner import GRMiner  # shared threshold translation

        self.abs_min_support = GRMiner._absolute_support(min_support, network.num_edges)
        self.min_score = float(min_score)
        self.k = k
        self.rank_by = rank_by
        self.node_attributes = node_attributes
        if include_trivial is None:
            include_trivial = rank_by != "nhp"
        self.include_trivial = include_trivial
        self.allow_empty_lhs = allow_empty_lhs
        self.max_lhs_attrs = max_lhs_attrs
        self.max_rhs_attrs = max_rhs_attrs
        self.max_edge_attrs = max_edge_attrs
        self.apply_generality = apply_generality
        self.laplace_k = laplace_k
        self.gain_theta = gain_theta

    def _score(self, metrics) -> float:
        if self.rank_by == "nhp":
            return metrics.nhp
        if self.rank_by == "confidence":
            return metrics.confidence
        if self.rank_by == "laplace":
            return (metrics.support_count + 1) / (metrics.lw_count + self.laplace_k)
        num_edges = metrics.num_edges or 1
        return (metrics.support_count - self.gain_theta * metrics.lw_count) / num_edges

    def mine(self) -> MiningResult:
        stats = MiningStats()
        # Condition (1): thresholds and triviality.
        qualifying: list[MinedGR] = []
        for gr in enumerate_all_grs(
            self.network,
            node_attributes=self.node_attributes,
            max_lhs_attrs=self.max_lhs_attrs,
            max_rhs_attrs=self.max_rhs_attrs,
            max_edge_attrs=self.max_edge_attrs,
            allow_empty_lhs=self.allow_empty_lhs,
        ):
            stats.grs_examined += 1
            if gr.is_trivial(self.schema) and not self.include_trivial:
                continue
            metrics = self.engine.evaluate(gr)
            if metrics.support_count < self.abs_min_support:
                continue
            score = self._score(metrics)
            if score < self.min_score:
                continue
            qualifying.append(MinedGR(gr=gr, metrics=metrics, score=score))
        stats.candidates = len(qualifying)

        # Condition (2): drop GRs with a strictly more general qualifier.
        if self.apply_generality:
            by_identity = {(m.gr.lhs, m.gr.edge, m.gr.rhs) for m in qualifying}
            maximal = [
                m
                for m in qualifying
                if not any(
                    (g.lhs, g.edge, g.rhs) in by_identity for g in m.gr.generalizations()
                )
            ]
        else:
            maximal = qualifying
        stats.pruned_by_generality = len(qualifying) - len(maximal)

        # Condition (3): rank and truncate.
        maximal.sort(key=lambda m: (-m.score, -m.metrics.support_count, m.gr.sort_key()))
        if self.k is not None:
            maximal = maximal[: self.k]
        return MiningResult(grs=maximal, stats=stats, params={"rank_by": self.rank_by})
