"""Subset-First Depth-First (SFDF) enumeration order (Section IV-C).

The search space of GRs is organized as a tree over attribute subsets
``LWR``.  Each attribute occurrence is a :class:`Token` — ``(role, name)``
with role ``"L"`` (source node attribute), ``"W"`` (edge attribute) or
``"R"`` (destination node attribute).

Two orders are defined:

* the **static order** τ of Eqn. (7): ``NHʳ, Hʳ, W, NHˡ, Hˡ``, and
* the **dynamic order** of Eqn. (8) applied to a node's tail:
  ``NHʳ, Hʳ₁, Hʳ₂, W, NHˡ, Hˡ``, where ``Hʳ₂`` holds the homophily RHS
  attributes whose LHS counterpart is already on the path and ``Hʳ₁``
  the rest.

The tail semantics (prefix of the order to the left of a node's label)
give Property 1 (LHS before edges before RHS along any path) and
Property 2 (every attribute subset enumerated before its supersets),
and the dynamic ordering restores anti-monotonicity of nhp (Theorem 3):
on any root-to-leaf path, ``Hʳ₂`` values enter the RHS before ``Hʳ₁``
and ``NHʳ`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..data.schema import Schema

__all__ = ["Token", "static_tau", "dynamic_rhs_order", "iter_subsets_sfdf"]


@dataclass(frozen=True)
class Token:
    """One attribute occurrence in the enumeration order."""

    role: str  # "L", "W" or "R"
    attr: str

    def __post_init__(self) -> None:
        if self.role not in ("L", "W", "R"):
            raise ValueError(f"bad token role {self.role!r}")

    def __str__(self) -> str:
        suffix = {"L": "^l", "R": "^r", "W": ""}[self.role]
        return f"{self.attr}{suffix}"


def static_tau(
    schema: Schema, node_attributes: Sequence[str] | None = None
) -> tuple[Token, ...]:
    """The static attribute order τ of Eqn. (7): ``NHʳ, Hʳ, W, NHˡ, Hˡ``.

    Parameters
    ----------
    schema:
        Network schema providing the homophily designation.
    node_attributes:
        Optional restriction of the node attributes entering the search
        space (the Fig. 4d dimensionality experiments use prefixes of the
        attribute list).  Defaults to all node attributes.

    Notes
    -----
    Within each of the five groups, attributes keep schema order.  The
    tail of a token is the *prefix* of τ before it, so tokens late in τ
    are expanded first along root-to-leaf paths: LHS attributes enter the
    path first, then edge attributes, then RHS attributes (Property 1).
    """
    names = tuple(node_attributes) if node_attributes is not None else schema.node_attribute_names
    for name in names:
        schema.node_attribute(name)  # validate
    nh = [n for n in names if not schema.is_homophily(n)]
    h = [n for n in names if schema.is_homophily(n)]
    tau: list[Token] = []
    tau += [Token("R", n) for n in nh]  # NH^r
    tau += [Token("R", n) for n in h]  # H^r
    tau += [Token("W", n) for n in schema.edge_attribute_names]  # W
    tau += [Token("L", n) for n in nh]  # NH^l
    tau += [Token("L", n) for n in h]  # H^l
    return tuple(tau)


def dynamic_rhs_order(
    r_tokens: Iterable[Token],
    lhs_attributes: Iterable[str],
    schema: Schema,
    homophily: dict[str, bool] | None = None,
) -> tuple[Token, ...]:
    """Dynamically order RHS tokens at a node (Eqn. 8): ``NHʳ, Hʳ₁, Hʳ₂``.

    ``Hʳ₂`` are homophily attributes whose LHS counterpart is already
    enumerated in ``lhs_attributes``; they are placed *last* in the tail
    list, which makes them enter the RHS *first* along any path of the
    RIGHT subtree (a token's expandable tail is the prefix before it).

    This is the Remark 2 fix: once an ``Hʳ₁``/``NHʳ`` value is on the
    RHS, no ``Hʳ₂`` value can be added below it, so the β = ∅ → β ≠ ∅
    flip can only happen while the RHS is still all-``Hʳ₂`` — and such a
    GR is either trivial (exempt from nhp pruning) or already has β ≠ ∅.
    """
    r_tokens = tuple(r_tokens)
    lhs_set = set(lhs_attributes)
    if homophily is None:
        # Callers in hot paths pass their precomputed flag map; the
        # schema query is the convenience fallback.
        homophily = {t.attr: schema.is_homophily(t.attr) for t in r_tokens}
    nh_r: list[Token] = []
    h_r1: list[Token] = []
    h_r2: list[Token] = []
    for token in r_tokens:
        if token.role != "R":
            raise ValueError(f"dynamic_rhs_order got non-RHS token {token}")
        if not homophily[token.attr]:
            nh_r.append(token)
        elif token.attr in lhs_set:
            h_r2.append(token)
        else:
            h_r1.append(token)
    return tuple(nh_r + h_r1 + h_r2)


def iter_subsets_sfdf(tau: Sequence[Token]) -> list[tuple[Token, ...]]:
    """Enumerate all subsets of ``tau`` in SFDF order (Fig. 3, static).

    Returns the sequence of ``path(t)`` sets (as tuples in path order)
    for every tree node, root excluded.  This mirrors the conceptual
    tree: node for token ``tau[i]`` has tail ``tau[:i]``, children are
    created per tail token in tail order, and the traversal is
    depth-first visiting children in that order.

    Used by tests to verify Property 2 (subsets before supersets) and
    the at-most-once guarantee; the miner itself interleaves this walk
    with data partitioning.
    """
    visited: list[tuple[Token, ...]] = []

    def visit(path: tuple[Token, ...], tail: Sequence[Token]) -> None:
        for i, token in enumerate(tail):
            child_path = path + (token,)
            visited.append(child_path)
            visit(child_path, tail[:i])

    visit((), tau)
    return visited
