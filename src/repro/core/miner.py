"""GRMiner — top-k group-relationship mining (Algorithm 1, Sections IV–V).

The miner walks the SFDF enumeration tree, partitioning edge sets with
counting-sort style grouping, exactly mirroring the three recursive
procedures of Algorithm 1:

* ``LEFT``  — extend the LHS by one source-node attribute value;
* ``EDGE``  — extend the edge descriptor by one edge attribute value;
* ``RIGHT`` — extend the RHS by one destination-node attribute value,
  compute supp/conf/nhp, maintain the top-k list, and prune.

Pruning rules (Theorems 2 and 3):

* every partition below ``minSupp`` is discarded (support
  anti-monotonicity, Theorem 2(1));
* a RIGHT subtree is cut when the node's score is below the (possibly
  dynamically upgraded) threshold *and* anti-monotonicity holds below
  the node.  With the dynamic RHS ordering of Eqn. (8) that is every
  non-trivial node (Theorem 3); the implementation uses the exact
  criterion — no ``Hʳ₂`` token left in the node's tail or β ≠ ∅ — which
  also keeps the miner correct when dynamic ordering is disabled for
  ablation studies (Remark 2's failure mode).

Two published variants are exposed through ``push_topk``:
``GRMiner(k)`` upgrades ``minNhp`` to the k-th best score on the fly
(line 28); plain ``GRMiner`` pushes only the user thresholds and
truncates to k at the end.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data.network import SocialNetwork
from ..data.store import CompactStore
from ..sortutil.counting_sort import partition_by_value
from .descriptors import GR, Descriptor
from .enumeration import Token, dynamic_rhs_order, static_tau
from .kernels import (
    DEFAULT_KERNEL,
    KERNEL_TIERS,
    kernel_ops,
    resolve_kernel,
    score_counts,
)
from .metrics import GRMetrics
from .results import MiningResult, MiningStats
from .topk import GeneralityIndex, TopKCollector

__all__ = [
    "BranchPlan",
    "BranchSpec",
    "CKEY_ABS_SUPPORT",
    "CKEY_APPLY_GENERALITY",
    "CKEY_FIELDS",
    "CKEY_K",
    "CKEY_MIN_SCORE",
    "CKEY_PUSH_TOPK",
    "CKEY_RANK_BY",
    "GRMiner",
    "MinerConfig",
    "config_from_canonical_key",
    "mine_top_k",
]

#: Positions of individual fields inside the tuple returned by
#: :meth:`MinerConfig.canonical_key`.  Kept adjacent to that method so
#: the two cannot drift apart silently; consumers (the warm-start
#: dominance check in :mod:`repro.engine.request`) index canonical keys
#: through these names instead of magic numbers.
CKEY_ABS_SUPPORT = 0
CKEY_MIN_SCORE = 1
CKEY_K = 2
CKEY_RANK_BY = 3
CKEY_PUSH_TOPK = 4
CKEY_APPLY_GENERALITY = 13
#: Total field count of :meth:`MinerConfig.canonical_key` — the length
#: every well-formed config key must have.  Validators (e.g.
#: :func:`repro.engine.request.split_canonical_key`) compare against
#: this instead of a magic 17.
CKEY_FIELDS = 17


@dataclass
class _LWContext:
    """State shared by all RIGHT nodes under one ``l ∧ w`` node."""

    edges: np.ndarray
    l_map: dict[str, int]
    w_map: dict[str, int]
    lw_count: int
    #: Sorted-tuple forms of ``l_map`` / ``w_map``, interned once per
    #: context so the candidate path does not rebuild them per GR.
    l_key: tuple[tuple[str, int], ...] = ()
    w_key: tuple[tuple[str, int], ...] = ()
    #: Cache of homophily-effect counts ``supp(l -w-> l[β])`` keyed by β.
    hom_cache: dict[tuple[str, ...], int] = field(default_factory=dict)
    #: Destination-code columns gathered onto this context's edge set,
    #: keyed by attribute name — each attribute pays its O(|edges|)
    #: fancy-index once per context instead of once per β set.
    dst_gathered: dict[str, np.ndarray] = field(default_factory=dict)
    #: Boolean masks ``edges satisfying l[β]`` keyed by β, built
    #: incrementally from their longest cached prefix.
    hom_masks: dict[tuple[str, ...], np.ndarray] = field(default_factory=dict)
    #: Per-token ``(attr, arena row, ext_applies, l_code)`` for the
    #: context's *root* RHS ordering — every node's tail is a prefix of
    #: it, so the batch tier derives this once per context instead of
    #: re-querying the homophily/LHS maps at every node (built lazily by
    #: ``_right_vector``).
    token_meta: list | None = None


@dataclass(frozen=True)
class BranchSpec:
    """One independent first-level subtree of the SFDF enumeration tree.

    ``"left"`` branches are the value partitions of the first-level LEFT
    children (Algorithm 1 line 5): the subtree rooted at ``l = {attr:
    value}``, which contains every GR whose LHS includes that assignment
    and whose remaining attributes come from ``tau[:token_index]``.  The
    ``"root"`` branch (emitted only when empty-LHS GRs are admissible)
    holds the root RIGHT and EDGE subtrees.  Branches partition the GR
    space: each GR's LHS has a unique latest-in-τ assignment, so no GR
    is enumerated by two branches — which is what makes them shardable.

    ``weight`` is the branch's edge-subset size, i.e. the summed
    out-degree of the sources matching the assignment — the load-balance
    key used by the parallel shard planner.
    """

    kind: str  # "left" or "root"
    token_index: int
    attr: str
    value: int
    weight: int


@dataclass(frozen=True)
class BranchPlan:
    """The first-level decomposition of one mining run."""

    tau: tuple[Token, ...]
    branches: tuple[BranchSpec, ...]
    #: First-level partitions discarded by minSupp during planning.
    pruned_by_support: int


@dataclass(frozen=True)
class MinerConfig:
    """One mining query's parameters, split out of :class:`GRMiner`.

    A config is the *reusable request/plan object* of the engine layer:
    it is immutable, hashable, picklable (it travels inside shard tasks
    to pool workers), and applyable to an existing miner skeleton via
    :meth:`GRMiner.rearm` — so one miner, one compact store and one
    worker fleet can serve an arbitrary stream of differently
    parameterized queries without rebuilding anything store-derived.

    Field semantics are documented on :class:`GRMiner`, whose keyword
    arguments map one-to-one onto these fields.
    """

    min_support: int | float = 1
    min_score: float = 0.0
    k: int | None = None
    rank_by: str = "nhp"
    push_topk: bool = True
    push_score_pruning: bool = True
    dynamic_rhs_ordering: bool = True
    node_attributes: tuple[str, ...] | None = None
    include_trivial: bool | None = None
    allow_empty_lhs: bool = False
    max_lhs_attrs: int | None = None
    max_rhs_attrs: int | None = None
    max_edge_attrs: int | None = None
    apply_generality: bool = True
    laplace_k: int = 2
    gain_theta: float = 0.5
    verify_generality: bool = True
    #: Execution tier for the RIGHT-phase inner loop; see
    #: :mod:`repro.core.kernels`.  A pure speed knob: every tier
    #: produces identical results, so it is excluded from
    #: :meth:`canonical_key`.
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if self.node_attributes is not None:
            object.__setattr__(self, "node_attributes", tuple(self.node_attributes))
        self.validate()

    def validate(self) -> None:
        """Eager parameter checks (the ones GRMiner always enforced)."""
        # Exercises the shared min_support checks without needing the
        # edge count; the real translation happens at rearm time.
        GRMiner._absolute_support(self.min_support, 1)
        if self.rank_by not in ("nhp", "confidence", "laplace", "gain"):
            raise ValueError(
                f"rank_by must be one of 'nhp', 'confidence', 'laplace', 'gain'; "
                f"got {self.rank_by!r}"
            )
        if self.rank_by != "gain" and not 0.0 <= self.min_score <= 1.0:
            raise ValueError("min_score must be in [0, 1]")
        if self.laplace_k <= 1:
            raise ValueError("laplace_k must be an integer greater than 1 (Eqn. 10)")
        if not 0.0 <= self.gain_theta <= 1.0:
            raise ValueError("gain_theta must be a fraction in [0, 1] (Eqn. 11)")
        if self.kernel not in KERNEL_TIERS:
            raise ValueError(
                f"kernel must be one of {KERNEL_TIERS}; got {self.kernel!r}"
            )

    def canonical_key(self, schema, num_edges: int) -> tuple:
        """A hashable identity that resolves defaults and equivalences.

        Two configs that would mine identically over a store of
        ``num_edges`` edges map to the same key: fractional and absolute
        ``min_support`` collapse to the absolute count, ``None`` /
        explicit-default attribute lists collapse to the schema order,
        and fields that cannot influence the result under the current
        ranking (``laplace_k`` off-``laplace``, ``gain_theta``
        off-``gain``, ``verify_generality`` without a dynamic top-k) are
        masked out.  ``kernel`` is excluded entirely: the execution tier
        never changes the answer, so queries differing only in kernel
        share one cache entry, dedup against each other and trade
        warm-start floors freely.  The engine's result cache is keyed by
        this.

        The field order is part of the contract: the module-level
        ``CKEY_*`` constants name the positions other layers index.
        """
        node_attributes = (
            self.node_attributes
            if self.node_attributes is not None
            else schema.node_attribute_names
        )
        include_trivial = (
            self.include_trivial
            if self.include_trivial is not None
            else self.rank_by != "nhp"
        )
        return (
            GRMiner._absolute_support(self.min_support, num_edges),
            float(self.min_score),
            self.k,
            self.rank_by,
            self.push_topk,
            self.push_score_pruning,
            self.dynamic_rhs_ordering,
            tuple(node_attributes),
            include_trivial,
            self.allow_empty_lhs,
            self.max_lhs_attrs,
            self.max_rhs_attrs,
            self.max_edge_attrs,
            self.apply_generality,
            self.laplace_k if self.rank_by == "laplace" else None,
            self.gain_theta if self.rank_by == "gain" else None,
            (
                self.verify_generality
                if self.push_topk and self.k is not None and self.apply_generality
                else None
            ),
        )


def config_from_canonical_key(key: tuple) -> MinerConfig:
    """Rebuild a :class:`MinerConfig` from a canonical key.

    The inverse of :meth:`MinerConfig.canonical_key`, up to the
    equivalences the key intentionally erases: fractional ``min_support``
    comes back as the absolute count it resolved to (which is
    edge-count-independent, so the round trip
    ``config_from_canonical_key(k).canonical_key(schema, any_E) == k``
    holds for every ``any_E``), masked fields (``laplace_k`` under a
    non-laplace ranking, ``gain_theta`` under non-gain,
    ``verify_generality`` without a dynamic top-k) come back as their
    defaults, and ``node_attributes`` / ``include_trivial`` come back
    explicitly resolved.

    This is what lets the engine's delta migrator re-mine *for a cache
    entry*: the entry's key is all that survives in the cache, and this
    turns it back into a runnable query.
    """
    (
        abs_support,
        min_score,
        k,
        rank_by,
        push_topk,
        push_score_pruning,
        dynamic_rhs_ordering,
        node_attributes,
        include_trivial,
        allow_empty_lhs,
        max_lhs_attrs,
        max_rhs_attrs,
        max_edge_attrs,
        apply_generality,
        laplace_k,
        gain_theta,
        verify_generality,
    ) = key
    return MinerConfig(
        min_support=int(abs_support),
        min_score=float(min_score),
        k=k,
        rank_by=rank_by,
        push_topk=push_topk,
        push_score_pruning=push_score_pruning,
        dynamic_rhs_ordering=dynamic_rhs_ordering,
        node_attributes=tuple(node_attributes),
        include_trivial=include_trivial,
        allow_empty_lhs=allow_empty_lhs,
        max_lhs_attrs=max_lhs_attrs,
        max_rhs_attrs=max_rhs_attrs,
        max_edge_attrs=max_edge_attrs,
        apply_generality=apply_generality,
        laplace_k=laplace_k if laplace_k is not None else 2,
        gain_theta=gain_theta if gain_theta is not None else 0.5,
        verify_generality=verify_generality if verify_generality is not None else True,
    )


class _ColumnCache:
    """Lazy per-edge code columns, persisting across re-arms of a miner.

    The full-length gathers (``store.source_codes(name)`` etc.) cost one
    O(|E|) fancy-index each; caching them per attribute means a re-armed
    miner only ever pays for the attributes its queries actually touch,
    once per miner lifetime.
    """

    __slots__ = ("_fetch", "_cols")

    def __init__(self, fetch) -> None:
        self._fetch = fetch
        self._cols: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        col = self._cols.get(name)
        if col is None:
            col = self._cols[name] = self._fetch(name)
        return col


class GRMiner:
    """Mine top-k group relationships from a social network.

    Parameters
    ----------
    network:
        The attributed network.  Its schema designates the homophily
        attributes (Section III-B).
    min_support:
        ``minSupp``.  An ``int`` is an absolute edge count; a ``float``
        in ``(0, 1)`` is a fraction of ``|E|`` as in Definition 2.
    min_score:
        ``minNhp`` (or ``minConf`` when ranking by confidence).
    k:
        Result size; ``None`` returns every qualifying GR.
    rank_by:
        ``"nhp"`` (the paper's metric), ``"confidence"`` (the Table II
        comparison ranking), or one of the anti-monotone Section VII
        alternatives ``"laplace"`` / ``"gain"`` (Eqns. 10–11), which the
        paper notes can replace nhp with the same pruning machinery.
        The non-anti-monotone alternatives (Piatetsky-Shapiro,
        conviction, lift) are served by
        :class:`repro.core.interestingness.AlternativeMetricMiner`.
    push_topk:
        When true and ``k`` is set, run GRMiner(k): dynamically upgrade
        the score threshold to the k-th best found (Algorithm 1 line 28).
        When false, run plain GRMiner: push only the user thresholds.
    push_score_pruning:
        Enable Theorem 3 pruning.  Disabling it leaves only support
        pruning (the BL2 search strategy) — used by ablation benches.
    dynamic_rhs_ordering:
        Enable the Eqn. (8) ordering.  Disabling reverts to the static τ
        and therefore to fewer prunable RIGHT nodes (Remark 2).
    node_attributes:
        Restrict the search space to these node attributes (the Fig. 4d
        dimensionality sweeps mine prefixes of the attribute list).
    include_trivial:
        Admit trivial GRs as results.  Defaults to ``False`` for nhp
        ranking (the paper mines *non-trivial* GRs) and ``True`` for
        confidence ranking (Table II's conf column keeps homophilic GRs).
    allow_empty_lhs:
        Admit GRs with an empty LHS.  Off by default; see DESIGN.md §5.
    max_lhs_attrs, max_rhs_attrs, max_edge_attrs:
        Optional caps on descriptor lengths — practical guards for very
        high-dimensional schemas; ``None`` means unbounded.
    store:
        A prebuilt :class:`~repro.data.store.CompactStore` for the
        network — e.g. one reconstructed from a shared-memory export by
        a parallel worker.  Defaults to building a fresh store.
    config:
        A prebuilt :class:`MinerConfig`.  When given, the individual
        mining-parameter keywords must be left at their defaults — the
        config is the single source of truth (the engine and the pool
        workers construct miners this way).  The miner can later be
        pointed at a different query with :meth:`rearm`.
    verify_generality:
        Only meaningful for GRMiner(k).  The published dynamic-threshold
        upgrade can prune a subtree containing a *generality blocker*
        whose score lies between the user threshold and the current k-th
        best, letting a redundant specialization into the result
        (DESIGN.md §5.5).  With this flag (default) the final top-k list
        is re-verified by direct evaluation of each entry's
        generalizations — at most ``k · 2^(|l|+|w|)`` metric queries —
        and blocked entries are dropped (the list may then hold fewer
        than k GRs).  Set ``push_topk=False`` for fully exact Definition
        5 semantics.
    """

    def __init__(
        self,
        network: SocialNetwork,
        min_support: int | float = 1,
        min_score: float = 0.0,
        k: int | None = None,
        rank_by: str = "nhp",
        push_topk: bool = True,
        push_score_pruning: bool = True,
        dynamic_rhs_ordering: bool = True,
        node_attributes: Sequence[str] | None = None,
        include_trivial: bool | None = None,
        allow_empty_lhs: bool = False,
        max_lhs_attrs: int | None = None,
        max_rhs_attrs: int | None = None,
        max_edge_attrs: int | None = None,
        apply_generality: bool = True,
        laplace_k: int = 2,
        gain_theta: float = 0.5,
        verify_generality: bool = True,
        kernel: str = DEFAULT_KERNEL,
        store: CompactStore | None = None,
        config: MinerConfig | None = None,
    ) -> None:
        from_kwargs = MinerConfig(
            min_support=min_support,
            min_score=min_score,
            k=k,
            rank_by=rank_by,
            push_topk=push_topk,
            push_score_pruning=push_score_pruning,
            dynamic_rhs_ordering=dynamic_rhs_ordering,
            node_attributes=(
                tuple(node_attributes) if node_attributes is not None else None
            ),
            include_trivial=include_trivial,
            allow_empty_lhs=allow_empty_lhs,
            max_lhs_attrs=max_lhs_attrs,
            max_rhs_attrs=max_rhs_attrs,
            max_edge_attrs=max_edge_attrs,
            apply_generality=apply_generality,
            laplace_k=laplace_k,
            gain_theta=gain_theta,
            verify_generality=verify_generality,
            kernel=kernel,
        )
        if config is None:
            config = from_kwargs
        elif from_kwargs != MinerConfig():
            raise ValueError(
                "pass mining parameters either via config= or as individual "
                "keywords, not both"
            )
        self.network = network
        self.schema = network.schema
        self.store = store if store is not None else CompactStore(network)

        # ---- store-derived state: built once, survives every rearm ----
        #: Optional hook consulted before offering a candidate to the
        #: collector: ``verifier(l_map, w_map, r_map) -> True`` when the
        #: candidate is blocked by a more general qualifying GR.  Used by
        #: the parallel workers, whose local generality index cannot see
        #: blockers discovered in sibling shards (repro.parallel.worker).
        self._candidate_verifier = None
        #: First-level value partitions keyed by LEFT attribute name.
        #: Pure derived data over the immutable store — independent of
        #: the query parameters — so it persists across runs *and*
        #: re-arms: plan_branches fills it, mine_branch reuses it
        #: (workers, which never plan, fill it lazily for the attributes
        #: they own).
        self._branch_partitions: dict[str, dict[int, np.ndarray]] = {}
        self._homophily = {
            name: self.schema.is_homophily(name)
            for name in self.schema.node_attribute_names
        }
        self._domain = {
            name: self.schema.attribute(name).domain_size
            for name in (
                list(self.schema.node_attribute_names)
                + list(self.schema.edge_attribute_names)
            )
        }
        # Per-edge code columns resolved through the compact store's
        # pointer structure (EArray order), gathered lazily per attribute
        # and cached for the miner's lifetime.
        self._src_cols = _ColumnCache(self.store.source_codes)
        self._dst_cols = _ColumnCache(self.store.dest_codes)
        self._edge_cols = _ColumnCache(self.store.edge_codes)
        #: Stacked destination-code matrices for the batch kernels,
        #: keyed by node-attribute tuple.  Store-derived like the column
        #: caches, so they survive re-arms (and are dropped with the
        #: whole skeleton when a store delta changes the fingerprint).
        self._dst_matrices: dict[tuple[str, ...], tuple] = {}
        #: Memoised Eqn. 8 RHS orderings, keyed by (tail, LHS attribute
        #: set) — schema-derived only, so shared across re-arms too.
        self._rhs_order_cache: dict[object, tuple] = {}

        self.rearm(config)

    def rearm(self, config: MinerConfig) -> "GRMiner":
        """Point this miner skeleton at a new query.

        Applies ``config`` to the existing network/store, re-deriving
        only parameter-dependent state — the compact store, the cached
        per-edge code columns and the first-level branch partitions all
        survive, which is what makes a long-lived miner (an engine's
        serial executor, a pool worker) cheap to re-target between
        queries.  Returns ``self``.
        """
        config.validate()
        node_attributes = (
            config.node_attributes
            if config.node_attributes is not None
            else self.schema.node_attribute_names
        )
        for name in node_attributes:  # unknown-name check before any mutation
            self.schema.node_attribute(name)
        self.config = config
        self.min_support = config.min_support
        self.abs_min_support = self._absolute_support(
            config.min_support, self.network.num_edges
        )
        self.min_score = float(config.min_score)
        self.k = config.k
        self.rank_by = config.rank_by
        self.push_topk = config.push_topk
        self.push_score_pruning = config.push_score_pruning
        self.dynamic_rhs_ordering = config.dynamic_rhs_ordering
        self.node_attributes = node_attributes
        self.include_trivial = (
            config.include_trivial
            if config.include_trivial is not None
            else config.rank_by != "nhp"
        )
        self.allow_empty_lhs = config.allow_empty_lhs
        self.max_lhs_attrs = config.max_lhs_attrs
        self.max_rhs_attrs = config.max_rhs_attrs
        self.max_edge_attrs = config.max_edge_attrs
        self.apply_generality = config.apply_generality
        self.laplace_k = config.laplace_k
        self.gain_theta = config.gain_theta
        self.verify_generality = config.verify_generality
        self.kernel = config.kernel
        #: The tier that actually executes ("numba" resolves to
        #: "vector" when numba is absent, with a one-time warning).
        self.kernel_tier = resolve_kernel(config.kernel)
        self._kernel_ops = kernel_ops(self.kernel_tier)
        self._right = (
            self._right_reference
            if self.kernel_tier == "reference"
            else self._right_vector
        )
        # A verifier installed for a previous query must not leak into
        # the next one (it may cache verdicts under other thresholds).
        self._candidate_verifier = None
        return self

    @staticmethod
    def _absolute_support(min_support: int | float, num_edges: int) -> int:
        """Translate ``minSupp`` to an absolute edge count (at least 1).

        The type carries the unit: an ``int`` is an absolute count, a
        ``float`` is a fraction of ``|E|``.  Sub-threshold forms clamp to
        the smallest meaningful count — ``0`` and fractions whose scaled
        value rounds to zero canonicalize to ``1``, the same key their
        integer form produces.  The one point where the two readings
        collide, ``float 1.0`` (absolute 1? all |E| edges?), is rejected
        rather than silently resolved: callers must say ``1`` (count) or
        a fraction strictly below 1.
        """
        if isinstance(min_support, bool):
            raise ValueError("min_support must be a number")
        if isinstance(min_support, int):
            if min_support < 0:
                raise ValueError("min_support must be non-negative")
            return max(1, min_support)
        if not 0.0 <= min_support <= 1.0:
            raise ValueError("fractional min_support must be in [0, 1)")
        if min_support == 1.0:
            raise ValueError(
                "min_support=1.0 is ambiguous: pass the int 1 for an absolute "
                "count of one edge, or a fraction strictly below 1.0 (use the "
                "int num_edges to require every edge)"
            )
        return max(1, int(math.ceil(min_support * num_edges - 1e-9)))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run Algorithm 1 and return the ranked result.

        The run is organized as the sequence of independent first-level
        branches of :meth:`plan_branches` (the serial traversal order is
        unchanged); :class:`~repro.parallel.ParallelGRMiner` distributes
        the same branches across worker processes.
        """
        start = time.perf_counter()
        self._begin()
        plan = self.plan_branches()
        self._stats.pruned_by_support += plan.pruned_by_support
        for branch in plan.branches:
            self.mine_branch(plan.tau, branch)

        results = self._collector.results()
        if self.k is not None and not self.push_topk:
            results = results[: self.k]
        elif (
            self.k is not None
            and self.apply_generality
            and self.verify_generality
        ):
            results = self._verify_generality(results)
        self._stats.runtime_seconds = time.perf_counter() - start
        return MiningResult(grs=results, stats=self._stats, params=self._params())

    # ------------------------------------------------------------------
    # Branch-entry API (used by mine() and by the parallel workers)
    # ------------------------------------------------------------------
    def _begin(self, collector: TopKCollector | None = None) -> None:
        """Reset per-run state; a caller may inject its own collector."""
        self._stats = MiningStats()
        self._collector = collector if collector is not None else TopKCollector(
            k=self.k if self.push_topk else None, min_score=self.min_score
        )
        self._index = GeneralityIndex()
        # A worker installs its verifier after _begin; resetting here
        # keeps a plain mine() exact after the miner served as a shard
        # executor (repro.parallel reuses miner instances across tasks).
        self._candidate_verifier = None

    def plan_branches(self) -> BranchPlan:
        """Decompose the run into its independent first-level branches.

        Mirrors the main procedure (Algorithm 1 lines 2-5): the root
        RIGHT/EDGE subtrees (empty-LHS GRs, emitted only when those are
        admissible — DESIGN.md §5.4) followed by the first-level LEFT
        value partitions in τ order.  Sub-threshold partitions are
        counted, not emitted.
        """
        tau = static_tau(self.schema, self.node_attributes)
        edges = self.store.all_edges()
        branches: list[BranchSpec] = []
        pruned = 0
        if self.allow_empty_lhs:
            branches.append(
                BranchSpec(
                    kind="root", token_index=-1, attr="", value=0, weight=int(edges.size)
                )
            )
        if self.max_lhs_attrs is None or self.max_lhs_attrs > 0:
            for i, token in enumerate(tau):
                if token.role != "L":
                    continue
                per_value = self._first_level_partition(tau, i)
                for value, subset in per_value.items():
                    if subset.size < self.abs_min_support:
                        pruned += 1
                        continue
                    branches.append(
                        BranchSpec(
                            kind="left",
                            token_index=i,
                            attr=token.attr,
                            value=int(value),
                            weight=int(subset.size),
                        )
                    )
        return BranchPlan(tau=tau, branches=tuple(branches), pruned_by_support=pruned)

    def _first_level_partition(
        self, tau: tuple[Token, ...], token_index: int
    ) -> dict[int, np.ndarray]:
        """Cached per-value edge partition of one first-level LEFT token.

        Keyed by attribute *name*, not token index: the partition depends
        only on the immutable store, while a token's index shifts when a
        re-arm changes ``node_attributes`` — a positional key would serve
        query N+1 another attribute's partition.
        """
        token = tau[token_index]
        per_value = self._branch_partitions.get(token.attr)
        if per_value is None:
            edges = self.store.all_edges()
            per_value = dict(
                partition_by_value(
                    edges, self._src_cols[token.attr][edges], self._domain[token.attr]
                )
            )
            self._branch_partitions[token.attr] = per_value
        return per_value

    def mine_branch(self, tau: tuple[Token, ...], branch: BranchSpec) -> None:
        """Run the recursion under one first-level branch.

        Requires :meth:`_begin` to have been called.  ``tau`` must be the
        plan's static order (workers recompute it deterministically from
        the schema rather than pickling it).
        """
        if branch.kind == "root":
            edges = self.store.all_edges()
            self._enter_right(edges, tau, l_map={}, w_map={})
            self._edge(edges, tau, l_map={}, w_map={})
            return
        token = tau[branch.token_index]
        subset = self._first_level_partition(tau, branch.token_index)[branch.value]
        child_tail = tau[: branch.token_index]
        l_map = {token.attr: branch.value}
        self._stats.lw_nodes += 1
        self._enter_right(subset, child_tail, l_map, w_map={})
        self._edge(subset, child_tail, l_map, w_map={})
        self._left(subset, child_tail, l_map)

    def _verify_generality(self, results: list) -> list:
        """Drop top-k entries whose generalization qualifies (DESIGN §5.5).

        GRMiner(k)'s dynamic threshold may have pruned the node where a
        blocker would have been examined; this post-pass re-checks each
        surviving entry against Definition 5(2) by direct evaluation.
        """
        from .metrics import MetricEngine  # local import to avoid cycle cost

        engine = MetricEngine(self.network)
        verified = []
        for mined in results:
            blocked = False
            for general in mined.gr.generalizations():
                if not general.lhs and not self.allow_empty_lhs:
                    continue
                trivial = general.is_trivial(self.schema)
                if trivial and not self.include_trivial:
                    continue
                if self.blocker_qualifies(engine.evaluate(general), trivial):
                    blocked = True
                    break
            if blocked:
                self._stats.pruned_by_generality += 1
            else:
                verified.append(mined)
        return verified

    def blocker_qualifies(self, metrics: GRMetrics, trivial: bool) -> bool:
        """Condition (1) for a *generality blocker* (Definition 5(2)).

        The single source of truth shared by the serial verification
        pass and the parallel workers' cross-shard verifier — a blocker
        must be admissible (non-trivial unless trivial GRs are admitted)
        and meet the user's support and score thresholds.
        """
        return (
            (self.include_trivial or not trivial)
            and metrics.support_count >= self.abs_min_support
            and self._score(metrics) >= self.min_score
        )

    def _params(self) -> dict:
        return {
            "min_support": self.min_support,
            "abs_min_support": self.abs_min_support,
            "min_score": self.min_score,
            "k": self.k,
            "rank_by": self.rank_by,
            "push_topk": self.push_topk,
            "push_score_pruning": self.push_score_pruning,
            "dynamic_rhs_ordering": self.dynamic_rhs_ordering,
            "node_attributes": self.node_attributes,
            "include_trivial": self.include_trivial,
            "allow_empty_lhs": self.allow_empty_lhs,
            "apply_generality": self.apply_generality,
            "kernel": self.kernel_tier,
        }

    # ------------------------------------------------------------------
    # LEFT / EDGE (Algorithm 1 lines 7-21)
    # ------------------------------------------------------------------
    def _left(self, edges: np.ndarray, tail: tuple[Token, ...], l_map: dict[str, int]) -> None:
        if self.max_lhs_attrs is not None and len(l_map) >= self.max_lhs_attrs:
            return
        for i, token in enumerate(tail):
            if token.role != "L":
                continue
            child_tail = tail[:i]
            keys = self._src_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_l = dict(l_map)
                new_l[token.attr] = value
                self._stats.lw_nodes += 1
                self._enter_right(subset, child_tail, new_l, w_map={})
                self._edge(subset, child_tail, new_l, w_map={})
                self._left(subset, child_tail, new_l)

    def _edge(
        self,
        edges: np.ndarray,
        tail: tuple[Token, ...],
        l_map: dict[str, int],
        w_map: dict[str, int],
    ) -> None:
        if self.max_edge_attrs is not None and len(w_map) >= self.max_edge_attrs:
            return
        for i, token in enumerate(tail):
            if token.role != "W":
                continue
            child_tail = tail[:i]
            keys = self._edge_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_w = dict(w_map)
                new_w[token.attr] = value
                self._stats.lw_nodes += 1
                self._enter_right(subset, child_tail, l_map, new_w)
                self._edge(subset, child_tail, l_map, new_w)

    # ------------------------------------------------------------------
    # RIGHT (Algorithm 1 lines 22-29)
    # ------------------------------------------------------------------
    def _enter_right(
        self,
        edges: np.ndarray,
        tail: tuple[Token, ...],
        l_map: dict[str, int],
        w_map: dict[str, int],
    ) -> None:
        if not l_map and not self.allow_empty_lhs:
            return
        # The ordered RHS tail depends only on the tail, on WHICH
        # attributes the LHS binds (Eqn. 8 groups by homophily flag and
        # LHS membership, never by value) and on whether dynamic
        # ordering is enabled at all — the cache outlives re-arms, so
        # the flag must be part of the key.
        cache_key = (self.dynamic_rhs_ordering, tail, frozenset(l_map) if l_map else ())
        r_tokens = self._rhs_order_cache.get(cache_key)
        if r_tokens is None:
            r_tokens = tuple(t for t in tail if t.role == "R")
            if self.dynamic_rhs_ordering:
                r_tokens = dynamic_rhs_order(
                    r_tokens, l_map, self.schema, self._homophily
                )
            self._rhs_order_cache[cache_key] = r_tokens
        context = _LWContext(
            edges=edges,
            l_map=l_map,
            w_map=w_map,
            lw_count=int(edges.size),
            l_key=tuple(sorted(l_map.items())),
            w_key=tuple(sorted(w_map.items())),
        )
        self._right(edges, r_tokens, context, r_map={})

    def _right_reference(
        self,
        edges: np.ndarray,
        r_tail: tuple[Token, ...],
        context: _LWContext,
        r_map: dict[str, int],
        r_key: tuple[tuple[str, int], ...] = (),
    ) -> None:
        """The original scalar RIGHT loop — the equivalence oracle.

        One ``partition_by_value`` group per candidate, one
        ``_evaluate``/``_score``/``_consider`` round-trip each.  Kept
        intact (``kernel="reference"``) so the batch tiers always have a
        bit-exact baseline to verify against, the same way the
        counting-sort kernel keeps ``_placement_loop_argsort``.
        """
        if self.max_rhs_attrs is not None and len(r_map) >= self.max_rhs_attrs:
            return
        for i, token in enumerate(r_tail):
            child_tail = r_tail[:i]
            keys = self._dst_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                self._stats.grs_examined += 1
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_r = dict(r_map)
                new_r[token.attr] = value
                metrics, trivial = self._evaluate(context, new_r, int(subset.size))
                score = self._score(metrics)
                self._consider(context, new_r, metrics, trivial, score)
                if self._should_prune(context, metrics.beta, score, child_tail):
                    self._stats.pruned_by_nhp += 1
                    continue
                self._right(subset, child_tail, context, new_r)

    def _right_vector(
        self,
        edges: np.ndarray,
        r_tail: tuple[Token, ...],
        context: _LWContext,
        r_map: dict[str, int],
        r_key: tuple[tuple[str, int], ...] = (),
    ) -> None:
        """Arena-batched RIGHT loop (the ``"vector"``/``"numba"`` tiers).

        One gather of the stacked offset-coded destination matrix
        (:meth:`_arena`) plus one flat bincount produce the histograms
        of *every* tail token at this node at once; scores come out as
        one array expression per token, and the support/min-score/
        threshold masks decide in batch which values are mere counter
        updates.  Only values that are admissible — or whose subtree
        must actually be descended — fall through to the scalar
        ``_consider`` path, and the counting-sort permutation behind the
        per-value subsets is built lazily, only when some value
        recurses.

        The score-threshold cut (Theorem 3) is also taken in batch
        against a snapshot of the collector's threshold: the threshold
        only ratchets upward, so a value below the snapshot is below the
        live threshold at its in-order visit too, and none of those
        values would have touched the collector (they are below
        ``min_score`` by construction).  Values at or above the snapshot
        keep their live per-value check inside the loop.

        Candidate visit order, collector/threshold interleaving and
        every stats counter match the reference loop exactly; scores are
        bit-identical (see the module docstring of
        :mod:`repro.core.kernels`).
        """
        if not r_tail:
            return
        if self.max_rhs_attrs is not None and len(r_map) >= self.max_rhs_attrs:
            return
        stats = self._stats
        ops = self._kernel_ops
        collector = self._collector
        l_map = context.l_map
        homophily = self._homophily
        lw_count = context.lw_count
        num_edges = self.network.num_edges
        rank_by = self.rank_by
        rank_nhp = rank_by == "nhp"
        min_score = self.min_score
        push_prune = self.push_score_pruning
        abs_min_support = self.abs_min_support

        matrix, row_of, offsets, bounds, widths, n_bins = self._arena()
        if edges.size == matrix.shape[1]:
            flat = ops.flat_counts(matrix, n_bins)  # the root spans every edge
        else:
            flat = ops.arena_counts(matrix, edges, n_bins)
        alive = flat >= abs_min_support
        alive[offsets] = False  # code 0 (each segment's first bin) is the null sentinel
        alive_per_row = np.add.reduceat(alive, offsets).tolist()
        if abs_min_support > 1:
            nonzero = flat > 0
            nonzero[offsets] = False
            examined_per_row = np.add.reduceat(nonzero, offsets).tolist()
        else:
            examined_per_row = alive_per_row

        # β and triviality of the node's own r_map; each candidate below
        # extends them by one (attr: value) pair, which either keeps the
        # base β (value matches the LHS) or inserts attr into it.
        if r_map:
            base_beta = tuple(
                sorted(
                    name
                    for name, value in r_map.items()
                    if homophily[name] and name in l_map and l_map[name] != value
                )
            )
            base_trivial = all(
                homophily[name] and l_map.get(name) == value
                for name, value in r_map.items()
            )
        else:
            base_beta = ()
            base_trivial = True
        mask_trivial = base_trivial and not self.include_trivial
        may_recurse = (
            self.max_rhs_attrs is None or len(r_map) + 1 < self.max_rhs_attrs
        )

        # ---- pass A: pure-Python token bookkeeping -------------------
        # can_flip for token i asks whether any EARLIER tail token could
        # re-enter β (Theorem 2(3)); ext_applies is the same predicate
        # applied to the token itself, so one prefix flag serves both.
        # The per-token (attr, row, ext_applies, l_code, base_idx) facts
        # are context-invariant and every node's tail is a prefix of the
        # context's root ordering, so they are derived once per context.
        meta = context.token_meta
        if meta is None or len(meta) < len(r_tail):
            meta = context.token_meta = [
                (
                    token.attr,
                    row_of[token.attr],
                    ext,
                    l_map[token.attr] if ext else -1,
                    bounds[row_of[token.attr]] + l_map[token.attr] if ext else -1,
                )
                for token in r_tail
                for ext in (homophily[token.attr] and token.attr in l_map,)
            ]
        infos = []
        base_fixups = []
        batch_fixups = []
        denom_rows = None
        zero_rows = None
        can_flip = False
        for i in range(len(r_tail)):
            attr, row, ext_applies, l_code, base_idx = meta[i]
            examined = examined_per_row[row]
            alive_n = alive_per_row[row]
            if examined:
                stats.grs_examined += examined
                if examined != alive_n:
                    stats.pruned_by_support += examined - alive_n
            if alive_n:
                if ext_applies:
                    insert_at = 0
                    while insert_at < len(base_beta) and base_beta[insert_at] < attr:
                        insert_at += 1
                    beta_ext = base_beta[:insert_at] + (attr,) + base_beta[insert_at:]
                    has_base = bool(alive[base_idx])
                else:
                    beta_ext = base_beta
                    has_base = False
                hom_ext = 0
                hom_base = 0
                if rank_nhp:
                    if beta_ext:
                        hom_ext = self._homophily_count(context, beta_ext)
                    if has_base:
                        hom_base = (
                            self._homophily_count(context, base_beta)
                            if base_beta
                            else 0
                        )
                        base_fixups.append((base_idx, hom_base))
                    if hom_ext:
                        # Rows with untouched denominators default to
                        # plain lw, applied as one scalar divisor below.
                        if denom_rows is None:
                            denom_rows = [lw_count] * (len(bounds) - 1)
                        denominator = lw_count - hom_ext
                        if denominator > 0:
                            denom_rows[row] = denominator
                        else:
                            denom_rows[row] = 1
                            if zero_rows is None:
                                zero_rows = []
                            zero_rows.append(row)
                    prunable_ext = bool(beta_ext) or not can_flip
                    prunable_base = bool(base_beta) or not can_flip
                    if not prunable_ext or (has_base and not prunable_base):
                        batch_fixups.append(
                            (row, base_idx, has_base, prunable_ext, prunable_base)
                        )
                else:
                    prunable_ext = True
                    prunable_base = True
                    if has_base:
                        base_fixups.append((base_idx, 0))
                infos.append((
                    i, attr, row, l_code, beta_ext, hom_ext, hom_base,
                    has_base, prunable_ext, prunable_base,
                    may_recurse and i > 0,
                ))
            can_flip = can_flip or ext_applies
        if not infos:
            return

        # ---- node-level batch: scores, admission and Theorem 3 masks -
        nhp_denoms = None
        if rank_nhp:
            if denom_rows is not None:
                nhp_denoms = np.repeat(
                    np.asarray(denom_rows, dtype=np.int64), widths
                )
            else:
                # No β adjustment anywhere: one scalar divisor, which
                # numpy broadcasts through the identical IEEE division.
                nhp_denoms = lw_count
        scores = ops.score_matrix(
            rank_by, flat, lw_count, nhp_denoms, num_edges,
            self.laplace_k, self.gain_theta,
        )
        if zero_rows is not None:
            for row in zero_rows:
                scores[bounds[row] : bounds[row + 1]] = 0.0
        if rank_nhp:
            # The value matching the LHS keeps the base β class, whose
            # homophily count differs: patch its score before deriving
            # the masks.
            for base_idx, hom_base in base_fixups:
                scores[base_idx] = score_counts(
                    rank_by, int(flat[base_idx]), lw_count, hom_base,
                    num_edges, self.laplace_k, self.gain_theta,
                )
        consider = scores >= min_score
        consider &= alive
        if mask_trivial:
            for base_idx, _ in base_fixups:
                consider[base_idx] = False
        consider_per_row = None
        if push_prune:
            # Theorem 3 cuts below the node-entry threshold are taken in
            # batch: the collector's threshold only ratchets upward, so a
            # value below it now is below it at its in-order visit too,
            # and none of these values would have touched the collector
            # (they are below ``min_score`` or trivial by construction).
            # Values at or above the snapshot keep their live per-value
            # check inside the scalar loop.
            # consider ⊆ alive, so the XOR is exactly alive & ~consider:
            # the alive values the collector will not admit.
            below0 = alive ^ consider
            below0 &= scores < collector.effective_threshold
            for row, base_idx, has_base, prunable_ext, prunable_base in batch_fixups:
                if prunable_ext:  # only the base value is exempt
                    below0[base_idx] = False
                else:  # only the base value is prunable, if that
                    keep = (
                        has_base and prunable_base and bool(below0[base_idx])
                    )
                    below0[bounds[row] : bounds[row + 1]] = False
                    if keep:
                        below0[base_idx] = True
            batch_per_row = np.add.reduceat(below0, offsets).tolist()
            # below0 ⊆ alive, so XOR is exactly alive & ~below0 — the
            # values the scalar loop must still visit.
            loop_flat = alive ^ below0
        else:
            loop_flat = None
            batch_per_row = None
            consider_per_row = np.add.reduceat(consider, offsets).tolist()

        # ---- pass B: scalar fallback over the survivors --------------
        # Ascending value order — the reference traversal order — so the
        # collector, the generality index and the dynamic threshold
        # evolve through the identical state sequence.
        for (
            i, attr, row, l_code, beta_ext, hom_ext, hom_base,
            has_base, prunable_ext, prunable_base, need_recurse,
        ) in infos:
            seg = slice(bounds[row], bounds[row + 1])
            if push_prune:
                pruned = batch_per_row[row]
                loop_n = alive_per_row[row] - pruned
                if pruned:
                    stats.pruned_by_nhp += pruned
                if not loop_n:
                    continue
                mask_row = loop_flat[seg]
            elif need_recurse:
                loop_n = alive_per_row[row]
                mask_row = alive[seg]
            else:
                loop_n = consider_per_row[row]
                if not loop_n:
                    continue
                mask_row = consider[seg]
            counts_row = flat[seg]
            scores_row = scores[seg]
            consider_row = consider[seg]
            child_tail = r_tail[:i]
            key_at = 0
            while key_at < len(r_key) and r_key[key_at][0] < attr:
                key_at += 1
            key_head = r_key[:key_at]
            key_tail = r_key[key_at:]
            sorted_edges = None
            starts = None
            # Single-survivor rows (the common case once batch pruning
            # bites) skip the nonzero scan.
            if loop_n == 1:
                survivors = (int(mask_row.argmax()),)
            else:
                survivors = np.nonzero(mask_row)[0].tolist()
            for value in survivors:
                score = float(scores_row[value])
                is_base = value == l_code
                new_r = None
                new_key = None
                if consider_row[value]:
                    beta = base_beta if is_base else beta_ext
                    if rank_nhp:
                        hom_count = (hom_base if is_base else hom_ext) if beta else 0
                    else:
                        hom_count = self._homophily_count(context, beta) if beta else 0
                    metrics = GRMetrics(
                        support_count=int(counts_row[value]),
                        lw_count=lw_count,
                        homophily_count=hom_count,
                        num_edges=num_edges,
                        beta=beta,
                    )
                    new_r = dict(r_map)
                    new_r[attr] = value
                    new_key = key_head + ((attr, value),) + key_tail
                    self._consider(
                        context, new_r, metrics, base_trivial and is_base,
                        score, r_key=new_key,
                    )
                if (
                    push_prune
                    and (prunable_base if is_base else prunable_ext)
                    and score < collector.effective_threshold
                ):
                    stats.pruned_by_nhp += 1
                    continue
                if not need_recurse:
                    continue
                if sorted_edges is None:
                    if edges is context.edges:
                        keys = self._context_dst(context, attr)
                    else:
                        keys = self._dst_cols[attr].take(edges)
                    order = ops.argsort(keys, self._domain[attr])
                    sorted_edges = edges[order]
                    starts = np.concatenate(
                        (np.zeros(1, dtype=np.int64), np.cumsum(counts_row))
                    )
                start = int(starts[value])
                subset = sorted_edges[start : start + int(counts_row[value])]
                if new_r is None:
                    new_r = dict(r_map)
                    new_r[attr] = value
                    new_key = key_head + ((attr, value),) + key_tail
                self._right_vector(subset, child_tail, context, new_r, new_key)

    def _score(self, metrics: GRMetrics) -> float:
        """The ranking metric's value (Definitions 3–4, Eqns. 10–11).

        Delegates to the shared count-level formulas in
        :mod:`repro.core.kernels`, the same expressions the batch tiers
        evaluate as arrays.
        """
        if self.rank_by == "nhp":
            return metrics.nhp
        if self.rank_by == "confidence":
            return metrics.confidence
        return score_counts(
            self.rank_by,
            metrics.support_count,
            metrics.lw_count,
            metrics.homophily_count,
            metrics.num_edges,
            self.laplace_k,
            self.gain_theta,
        )

    # ------------------------------------------------------------------
    # Metrics at a RIGHT node (Section IV-D)
    # ------------------------------------------------------------------
    def _evaluate(
        self, context: _LWContext, r_map: dict[str, int], support_count: int
    ) -> tuple[GRMetrics, bool]:
        l_map = context.l_map
        beta = tuple(
            sorted(
                name
                for name, value in r_map.items()
                if self._homophily[name] and name in l_map and l_map[name] != value
            )
        )
        homophily_count = self._homophily_count(context, beta) if beta else 0
        trivial = all(
            self._homophily[name] and l_map.get(name) == value
            for name, value in r_map.items()
        )
        metrics = GRMetrics(
            support_count=support_count,
            lw_count=context.lw_count,
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )
        return metrics, trivial

    def evaluate_codes(
        self,
        l_map: dict[str, int],
        w_map: dict[str, int],
        r_map: dict[str, int],
    ) -> tuple[GRMetrics, bool]:
        """Direct metric evaluation of a code-level GR over all edges.

        Returns the same ``(metrics, trivial)`` pair :meth:`_evaluate`
        produces incrementally during the tree walk, but from scratch —
        the primitive behind the parallel workers' cross-shard generality
        checks, where the blocker's enumeration node lives in a sibling
        shard (or was cut by the dynamic threshold) and is therefore
        absent from the local index.
        """
        lw_mask = np.ones(self.network.num_edges, dtype=bool)
        for name, code in l_map.items():
            lw_mask &= self._src_cols[name] == code
        for name, code in w_map.items():
            lw_mask &= self._edge_cols[name] == code
        supp_mask = lw_mask.copy()
        for name, code in r_map.items():
            supp_mask &= self._dst_cols[name] == code
        beta = tuple(
            sorted(
                name
                for name, code in r_map.items()
                if self._homophily[name] and name in l_map and l_map[name] != code
            )
        )
        homophily_count = 0
        if beta:
            hom_mask = lw_mask.copy()
            for name in beta:
                hom_mask &= self._dst_cols[name] == l_map[name]
            homophily_count = int(hom_mask.sum())
        trivial = all(
            self._homophily[name] and l_map.get(name) == code
            for name, code in r_map.items()
        )
        metrics = GRMetrics(
            support_count=int(supp_mask.sum()),
            lw_count=int(lw_mask.sum()),
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )
        return metrics, trivial

    def _arena(self):
        """The stacked offset-coded destination matrix for the batch tiers.

        Row ``row_of[attr]`` holds attribute ``attr``'s destination
        codes shifted into its own bin segment of a *ragged* flat
        layout: segment ``row`` starts at ``offsets[row]`` and is
        ``domain + 1`` bins wide, so one flat bincount over a gathered
        slice of the matrix yields *every* tail token's histogram side
        by side — replacing one gather and one histogram per token with
        one of each per RIGHT node.  Ragged (cumulative) offsets rather
        than a rectangular stride keep the bin count at
        ``Σ (domain + 1)`` instead of ``rows × (max domain + 1)``, which
        matters when one wide attribute (e.g. Pokec's Region) would
        otherwise inflate every row's histogram.  Derived purely from
        the immutable store and the attribute selection, so it persists
        across runs and re-arms like the plain column caches (a store
        delta drops the whole miner skeleton, matrices included).

        Returns ``(matrix, row_of, offsets, bounds, widths, n_bins)``
        where ``offsets`` is the int64 segment-start array (also the
        positions of the per-row null-sentinel bins, since code 0 sits
        at each segment's start), ``bounds`` its plain-int mirror with
        ``n_bins`` appended (so row ``r`` spans
        ``bounds[r]:bounds[r + 1]``) and ``widths`` the int64 per-row
        segment widths.
        """
        attrs = tuple(self.node_attributes)
        entry = self._dst_matrices.get(attrs)
        if entry is None:
            widths = np.asarray(
                [self._domain[name] + 1 for name in attrs], dtype=np.int64
            )
            offsets = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(widths[:-1]))
            )
            n_bins = int(offsets[-1] + widths[-1])
            first = self._dst_cols[attrs[0]]
            matrix = np.empty((len(attrs), first.size), dtype=np.int32)
            for row, name in enumerate(attrs):
                np.add(self._dst_cols[name], int(offsets[row]), out=matrix[row])
            row_of = {name: row for name, row in zip(attrs, range(len(attrs)))}
            bounds = offsets.tolist() + [n_bins]
            entry = (matrix, row_of, offsets, bounds, widths, n_bins)
            self._dst_matrices[attrs] = entry
        return entry

    def _context_dst(self, context: _LWContext, name: str) -> np.ndarray:
        """Destination codes of ``name`` gathered onto the context's edges.

        Each attribute pays its O(|edges|) fancy-index once per ``l ∧ w``
        context; every β set touching the attribute (and the top-level
        RIGHT batch over it) reuses the gathered column.
        """
        col = context.dst_gathered.get(name)
        if col is None:
            col = context.dst_gathered[name] = self._dst_cols[name][context.edges]
        return col

    def _homophily_count(self, context: _LWContext, beta: tuple[str, ...]) -> int:
        """``supp(l -w-> l[β])`` within the context's edge set, cached by β.

        Case 1 of Section IV-D (β ⊂ R) reuses a previously cached count;
        Case 2 (β = R) computes it at the current node — both land here
        because the cache lives on the ``l ∧ w`` context.  A new β's mask
        is one ``and_eq`` over its longest cached prefix, on destination
        columns gathered once per context (:meth:`_context_dst`).
        """
        cached = context.hom_cache.get(beta)
        if cached is not None:
            return cached
        mask = self._hom_mask(context, beta)
        count = context.lw_count if mask is None else int(mask.sum())
        context.hom_cache[beta] = count
        return count

    def _hom_mask(self, context: _LWContext, beta: tuple[str, ...]) -> np.ndarray | None:
        """Boolean mask of context edges satisfying ``l[β]`` (None for β=∅)."""
        if not beta:
            return None
        mask = context.hom_masks.get(beta)
        if mask is None:
            prefix = self._hom_mask(context, beta[:-1])
            name = beta[-1]
            mask = self._kernel_ops.and_eq(
                prefix, self._context_dst(context, name), context.l_map[name]
            )
            context.hom_masks[beta] = mask
        return mask

    # ------------------------------------------------------------------
    # Candidate handling (lines 25-28) and pruning
    # ------------------------------------------------------------------
    def _consider(
        self,
        context: _LWContext,
        r_map: dict[str, int],
        metrics: GRMetrics,
        trivial: bool,
        score: float,
        r_key: tuple[tuple[str, int], ...] | None = None,
    ) -> None:
        if trivial and not self.include_trivial:
            return
        if not context.l_map and not self.allow_empty_lhs:
            return
        if score < self.min_score:
            return
        if self.apply_generality:
            l_key = context.l_key
            w_key = context.w_key
            if r_key is None:
                r_key = tuple(sorted(r_map.items()))
            if self._index.is_blocked(l_key, w_key, r_key):
                self._stats.pruned_by_generality += 1
                return
            # Every GR satisfying conditions (1) and (2) enters the index
            # — including ones the dynamic top-k threshold will not admit
            # — so that later, more special GRs are still recognized as
            # redundant (DESIGN.md §5.5).
            self._index.add(l_key, w_key, r_key)
        self._stats.candidates += 1
        if self._collector.would_admit(score):
            if self._candidate_verifier is not None and self._candidate_verifier(
                context.l_map, context.w_map, r_map
            ):
                self._stats.pruned_by_generality += 1
                return
            self._collector.offer(self._decode(context, r_map), metrics, score)

    def _should_prune(
        self,
        context: _LWContext,
        beta: tuple[str, ...],
        score: float,
        child_tail: tuple[Token, ...],
    ) -> bool:
        """Cut the RIGHT subtree when the score bound justifies it.

        Confidence is anti-monotone under any RHS extension.  nhp is
        anti-monotone below this node iff β ≠ ∅ already (Theorem 2(2))
        or no remaining tail token can flip β — i.e. no homophily
        attribute that also occurs in the LHS (``Hʳ₂``) is left in the
        tail (Theorem 2(3) / Theorem 3).  With dynamic ordering this
        accepts every non-trivial node, reproducing Theorem 3; without
        it, fewer nodes qualify (the Remark 2 ablation).
        """
        if not self.push_score_pruning:
            return False
        threshold = self._collector.effective_threshold
        if score >= threshold:
            return False
        if self.rank_by != "nhp":
            # confidence, laplace and gain are anti-monotone under any
            # RHS extension (Section VII: "the anti-monotonicity remains
            # valid"), so the subtree can always be cut.
            return True
        if beta:
            return True
        can_flip = any(
            self._homophily[token.attr] and token.attr in context.l_map
            for token in child_tail
        )
        return not can_flip

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, context: _LWContext, r_map: dict[str, int]) -> GR:
        def decode_node(mapping: dict[str, int]) -> Descriptor:
            return Descriptor(
                tuple(
                    (name, self.schema.node_attribute(name).label(code))
                    for name, code in mapping.items()
                )
            )

        edge_descriptor = Descriptor(
            tuple(
                (name, self.schema.edge_attribute(name).label(code))
                for name, code in context.w_map.items()
            )
        )
        return GR(decode_node(context.l_map), decode_node(r_map), edge_descriptor)


def mine_top_k(
    network: SocialNetwork,
    k: int = 10,
    min_support: int | float = 1,
    min_nhp: float = 0.0,
    workers: int | None = None,
    **kwargs,
) -> MiningResult:
    """Convenience wrapper: run GRMiner(k) with the paper's defaults.

    Pass ``workers=N`` to mine with the sharded multi-process
    :class:`~repro.parallel.ParallelGRMiner` instead of the serial
    miner (``workers=1`` runs the shard machinery in-process).

    Pass ``kernel="reference"|"vector"|"numba"`` to select the
    candidate-evaluation tier (:mod:`repro.core.kernels`).  The tier is
    a pure execution detail: every tier returns the identical result
    list and the identical effort counters, and cached results are
    shared across tiers.

    Examples
    --------
    >>> from repro.datasets.toy import toy_dating_network
    >>> result = mine_top_k(toy_dating_network(), k=5, min_support=2, min_nhp=0.5)
    >>> len(result) <= 5
    True
    """
    if workers is not None:
        from ..parallel import ParallelGRMiner  # deferred: avoids an import cycle

        return ParallelGRMiner(
            network,
            workers=workers,
            min_support=min_support,
            min_score=min_nhp,
            k=k,
            **kwargs,
        ).mine()
    miner = GRMiner(network, min_support=min_support, min_score=min_nhp, k=k, **kwargs)
    return miner.mine()
