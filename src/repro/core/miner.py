"""GRMiner — top-k group-relationship mining (Algorithm 1, Sections IV–V).

The miner walks the SFDF enumeration tree, partitioning edge sets with
counting-sort style grouping, exactly mirroring the three recursive
procedures of Algorithm 1:

* ``LEFT``  — extend the LHS by one source-node attribute value;
* ``EDGE``  — extend the edge descriptor by one edge attribute value;
* ``RIGHT`` — extend the RHS by one destination-node attribute value,
  compute supp/conf/nhp, maintain the top-k list, and prune.

Pruning rules (Theorems 2 and 3):

* every partition below ``minSupp`` is discarded (support
  anti-monotonicity, Theorem 2(1));
* a RIGHT subtree is cut when the node's score is below the (possibly
  dynamically upgraded) threshold *and* anti-monotonicity holds below
  the node.  With the dynamic RHS ordering of Eqn. (8) that is every
  non-trivial node (Theorem 3); the implementation uses the exact
  criterion — no ``Hʳ₂`` token left in the node's tail or β ≠ ∅ — which
  also keeps the miner correct when dynamic ordering is disabled for
  ablation studies (Remark 2's failure mode).

Two published variants are exposed through ``push_topk``:
``GRMiner(k)`` upgrades ``minNhp`` to the k-th best score on the fly
(line 28); plain ``GRMiner`` pushes only the user thresholds and
truncates to k at the end.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..data.network import SocialNetwork
from ..data.store import CompactStore
from ..sortutil.counting_sort import partition_by_value
from .descriptors import GR, Descriptor
from .enumeration import Token, dynamic_rhs_order, static_tau
from .metrics import GRMetrics
from .results import MiningResult, MiningStats
from .topk import GeneralityIndex, TopKCollector

__all__ = [
    "BranchPlan",
    "BranchSpec",
    "CKEY_ABS_SUPPORT",
    "CKEY_APPLY_GENERALITY",
    "CKEY_K",
    "CKEY_MIN_SCORE",
    "CKEY_PUSH_TOPK",
    "CKEY_RANK_BY",
    "GRMiner",
    "MinerConfig",
    "config_from_canonical_key",
    "mine_top_k",
]

#: Positions of individual fields inside the tuple returned by
#: :meth:`MinerConfig.canonical_key`.  Kept adjacent to that method so
#: the two cannot drift apart silently; consumers (the warm-start
#: dominance check in :mod:`repro.engine.request`) index canonical keys
#: through these names instead of magic numbers.
CKEY_ABS_SUPPORT = 0
CKEY_MIN_SCORE = 1
CKEY_K = 2
CKEY_RANK_BY = 3
CKEY_PUSH_TOPK = 4
CKEY_APPLY_GENERALITY = 13


@dataclass
class _LWContext:
    """State shared by all RIGHT nodes under one ``l ∧ w`` node."""

    edges: np.ndarray
    l_map: dict[str, int]
    w_map: dict[str, int]
    lw_count: int
    #: Cache of homophily-effect counts ``supp(l -w-> l[β])`` keyed by β.
    hom_cache: dict[tuple[str, ...], int] = field(default_factory=dict)


@dataclass(frozen=True)
class BranchSpec:
    """One independent first-level subtree of the SFDF enumeration tree.

    ``"left"`` branches are the value partitions of the first-level LEFT
    children (Algorithm 1 line 5): the subtree rooted at ``l = {attr:
    value}``, which contains every GR whose LHS includes that assignment
    and whose remaining attributes come from ``tau[:token_index]``.  The
    ``"root"`` branch (emitted only when empty-LHS GRs are admissible)
    holds the root RIGHT and EDGE subtrees.  Branches partition the GR
    space: each GR's LHS has a unique latest-in-τ assignment, so no GR
    is enumerated by two branches — which is what makes them shardable.

    ``weight`` is the branch's edge-subset size, i.e. the summed
    out-degree of the sources matching the assignment — the load-balance
    key used by the parallel shard planner.
    """

    kind: str  # "left" or "root"
    token_index: int
    attr: str
    value: int
    weight: int


@dataclass(frozen=True)
class BranchPlan:
    """The first-level decomposition of one mining run."""

    tau: tuple[Token, ...]
    branches: tuple[BranchSpec, ...]
    #: First-level partitions discarded by minSupp during planning.
    pruned_by_support: int


@dataclass(frozen=True)
class MinerConfig:
    """One mining query's parameters, split out of :class:`GRMiner`.

    A config is the *reusable request/plan object* of the engine layer:
    it is immutable, hashable, picklable (it travels inside shard tasks
    to pool workers), and applyable to an existing miner skeleton via
    :meth:`GRMiner.rearm` — so one miner, one compact store and one
    worker fleet can serve an arbitrary stream of differently
    parameterized queries without rebuilding anything store-derived.

    Field semantics are documented on :class:`GRMiner`, whose keyword
    arguments map one-to-one onto these fields.
    """

    min_support: int | float = 1
    min_score: float = 0.0
    k: int | None = None
    rank_by: str = "nhp"
    push_topk: bool = True
    push_score_pruning: bool = True
    dynamic_rhs_ordering: bool = True
    node_attributes: tuple[str, ...] | None = None
    include_trivial: bool | None = None
    allow_empty_lhs: bool = False
    max_lhs_attrs: int | None = None
    max_rhs_attrs: int | None = None
    max_edge_attrs: int | None = None
    apply_generality: bool = True
    laplace_k: int = 2
    gain_theta: float = 0.5
    verify_generality: bool = True

    def __post_init__(self) -> None:
        if self.node_attributes is not None:
            object.__setattr__(self, "node_attributes", tuple(self.node_attributes))
        self.validate()

    def validate(self) -> None:
        """Eager parameter checks (the ones GRMiner always enforced)."""
        # Exercises the shared min_support checks without needing the
        # edge count; the real translation happens at rearm time.
        GRMiner._absolute_support(self.min_support, 1)
        if self.rank_by not in ("nhp", "confidence", "laplace", "gain"):
            raise ValueError(
                f"rank_by must be one of 'nhp', 'confidence', 'laplace', 'gain'; "
                f"got {self.rank_by!r}"
            )
        if self.rank_by != "gain" and not 0.0 <= self.min_score <= 1.0:
            raise ValueError("min_score must be in [0, 1]")
        if self.laplace_k <= 1:
            raise ValueError("laplace_k must be an integer greater than 1 (Eqn. 10)")
        if not 0.0 <= self.gain_theta <= 1.0:
            raise ValueError("gain_theta must be a fraction in [0, 1] (Eqn. 11)")

    def canonical_key(self, schema, num_edges: int) -> tuple:
        """A hashable identity that resolves defaults and equivalences.

        Two configs that would mine identically over a store of
        ``num_edges`` edges map to the same key: fractional and absolute
        ``min_support`` collapse to the absolute count, ``None`` /
        explicit-default attribute lists collapse to the schema order,
        and fields that cannot influence the result under the current
        ranking (``laplace_k`` off-``laplace``, ``gain_theta``
        off-``gain``, ``verify_generality`` without a dynamic top-k) are
        masked out.  The engine's result cache is keyed by this.

        The field order is part of the contract: the module-level
        ``CKEY_*`` constants name the positions other layers index.
        """
        node_attributes = (
            self.node_attributes
            if self.node_attributes is not None
            else schema.node_attribute_names
        )
        include_trivial = (
            self.include_trivial
            if self.include_trivial is not None
            else self.rank_by != "nhp"
        )
        return (
            GRMiner._absolute_support(self.min_support, num_edges),
            float(self.min_score),
            self.k,
            self.rank_by,
            self.push_topk,
            self.push_score_pruning,
            self.dynamic_rhs_ordering,
            tuple(node_attributes),
            include_trivial,
            self.allow_empty_lhs,
            self.max_lhs_attrs,
            self.max_rhs_attrs,
            self.max_edge_attrs,
            self.apply_generality,
            self.laplace_k if self.rank_by == "laplace" else None,
            self.gain_theta if self.rank_by == "gain" else None,
            (
                self.verify_generality
                if self.push_topk and self.k is not None and self.apply_generality
                else None
            ),
        )


def config_from_canonical_key(key: tuple) -> MinerConfig:
    """Rebuild a :class:`MinerConfig` from a canonical key.

    The inverse of :meth:`MinerConfig.canonical_key`, up to the
    equivalences the key intentionally erases: fractional ``min_support``
    comes back as the absolute count it resolved to (which is
    edge-count-independent, so the round trip
    ``config_from_canonical_key(k).canonical_key(schema, any_E) == k``
    holds for every ``any_E``), masked fields (``laplace_k`` under a
    non-laplace ranking, ``gain_theta`` under non-gain,
    ``verify_generality`` without a dynamic top-k) come back as their
    defaults, and ``node_attributes`` / ``include_trivial`` come back
    explicitly resolved.

    This is what lets the engine's delta migrator re-mine *for a cache
    entry*: the entry's key is all that survives in the cache, and this
    turns it back into a runnable query.
    """
    (
        abs_support,
        min_score,
        k,
        rank_by,
        push_topk,
        push_score_pruning,
        dynamic_rhs_ordering,
        node_attributes,
        include_trivial,
        allow_empty_lhs,
        max_lhs_attrs,
        max_rhs_attrs,
        max_edge_attrs,
        apply_generality,
        laplace_k,
        gain_theta,
        verify_generality,
    ) = key
    return MinerConfig(
        min_support=int(abs_support),
        min_score=float(min_score),
        k=k,
        rank_by=rank_by,
        push_topk=push_topk,
        push_score_pruning=push_score_pruning,
        dynamic_rhs_ordering=dynamic_rhs_ordering,
        node_attributes=tuple(node_attributes),
        include_trivial=include_trivial,
        allow_empty_lhs=allow_empty_lhs,
        max_lhs_attrs=max_lhs_attrs,
        max_rhs_attrs=max_rhs_attrs,
        max_edge_attrs=max_edge_attrs,
        apply_generality=apply_generality,
        laplace_k=laplace_k if laplace_k is not None else 2,
        gain_theta=gain_theta if gain_theta is not None else 0.5,
        verify_generality=verify_generality if verify_generality is not None else True,
    )


class _ColumnCache:
    """Lazy per-edge code columns, persisting across re-arms of a miner.

    The full-length gathers (``store.source_codes(name)`` etc.) cost one
    O(|E|) fancy-index each; caching them per attribute means a re-armed
    miner only ever pays for the attributes its queries actually touch,
    once per miner lifetime.
    """

    __slots__ = ("_fetch", "_cols")

    def __init__(self, fetch) -> None:
        self._fetch = fetch
        self._cols: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        col = self._cols.get(name)
        if col is None:
            col = self._cols[name] = self._fetch(name)
        return col


class GRMiner:
    """Mine top-k group relationships from a social network.

    Parameters
    ----------
    network:
        The attributed network.  Its schema designates the homophily
        attributes (Section III-B).
    min_support:
        ``minSupp``.  An ``int`` is an absolute edge count; a ``float``
        in ``(0, 1)`` is a fraction of ``|E|`` as in Definition 2.
    min_score:
        ``minNhp`` (or ``minConf`` when ranking by confidence).
    k:
        Result size; ``None`` returns every qualifying GR.
    rank_by:
        ``"nhp"`` (the paper's metric), ``"confidence"`` (the Table II
        comparison ranking), or one of the anti-monotone Section VII
        alternatives ``"laplace"`` / ``"gain"`` (Eqns. 10–11), which the
        paper notes can replace nhp with the same pruning machinery.
        The non-anti-monotone alternatives (Piatetsky-Shapiro,
        conviction, lift) are served by
        :class:`repro.core.interestingness.AlternativeMetricMiner`.
    push_topk:
        When true and ``k`` is set, run GRMiner(k): dynamically upgrade
        the score threshold to the k-th best found (Algorithm 1 line 28).
        When false, run plain GRMiner: push only the user thresholds.
    push_score_pruning:
        Enable Theorem 3 pruning.  Disabling it leaves only support
        pruning (the BL2 search strategy) — used by ablation benches.
    dynamic_rhs_ordering:
        Enable the Eqn. (8) ordering.  Disabling reverts to the static τ
        and therefore to fewer prunable RIGHT nodes (Remark 2).
    node_attributes:
        Restrict the search space to these node attributes (the Fig. 4d
        dimensionality sweeps mine prefixes of the attribute list).
    include_trivial:
        Admit trivial GRs as results.  Defaults to ``False`` for nhp
        ranking (the paper mines *non-trivial* GRs) and ``True`` for
        confidence ranking (Table II's conf column keeps homophilic GRs).
    allow_empty_lhs:
        Admit GRs with an empty LHS.  Off by default; see DESIGN.md §5.
    max_lhs_attrs, max_rhs_attrs, max_edge_attrs:
        Optional caps on descriptor lengths — practical guards for very
        high-dimensional schemas; ``None`` means unbounded.
    store:
        A prebuilt :class:`~repro.data.store.CompactStore` for the
        network — e.g. one reconstructed from a shared-memory export by
        a parallel worker.  Defaults to building a fresh store.
    config:
        A prebuilt :class:`MinerConfig`.  When given, the individual
        mining-parameter keywords must be left at their defaults — the
        config is the single source of truth (the engine and the pool
        workers construct miners this way).  The miner can later be
        pointed at a different query with :meth:`rearm`.
    verify_generality:
        Only meaningful for GRMiner(k).  The published dynamic-threshold
        upgrade can prune a subtree containing a *generality blocker*
        whose score lies between the user threshold and the current k-th
        best, letting a redundant specialization into the result
        (DESIGN.md §5.5).  With this flag (default) the final top-k list
        is re-verified by direct evaluation of each entry's
        generalizations — at most ``k · 2^(|l|+|w|)`` metric queries —
        and blocked entries are dropped (the list may then hold fewer
        than k GRs).  Set ``push_topk=False`` for fully exact Definition
        5 semantics.
    """

    def __init__(
        self,
        network: SocialNetwork,
        min_support: int | float = 1,
        min_score: float = 0.0,
        k: int | None = None,
        rank_by: str = "nhp",
        push_topk: bool = True,
        push_score_pruning: bool = True,
        dynamic_rhs_ordering: bool = True,
        node_attributes: Sequence[str] | None = None,
        include_trivial: bool | None = None,
        allow_empty_lhs: bool = False,
        max_lhs_attrs: int | None = None,
        max_rhs_attrs: int | None = None,
        max_edge_attrs: int | None = None,
        apply_generality: bool = True,
        laplace_k: int = 2,
        gain_theta: float = 0.5,
        verify_generality: bool = True,
        store: CompactStore | None = None,
        config: MinerConfig | None = None,
    ) -> None:
        from_kwargs = MinerConfig(
            min_support=min_support,
            min_score=min_score,
            k=k,
            rank_by=rank_by,
            push_topk=push_topk,
            push_score_pruning=push_score_pruning,
            dynamic_rhs_ordering=dynamic_rhs_ordering,
            node_attributes=(
                tuple(node_attributes) if node_attributes is not None else None
            ),
            include_trivial=include_trivial,
            allow_empty_lhs=allow_empty_lhs,
            max_lhs_attrs=max_lhs_attrs,
            max_rhs_attrs=max_rhs_attrs,
            max_edge_attrs=max_edge_attrs,
            apply_generality=apply_generality,
            laplace_k=laplace_k,
            gain_theta=gain_theta,
            verify_generality=verify_generality,
        )
        if config is None:
            config = from_kwargs
        elif from_kwargs != MinerConfig():
            raise ValueError(
                "pass mining parameters either via config= or as individual "
                "keywords, not both"
            )
        self.network = network
        self.schema = network.schema
        self.store = store if store is not None else CompactStore(network)

        # ---- store-derived state: built once, survives every rearm ----
        #: Optional hook consulted before offering a candidate to the
        #: collector: ``verifier(l_map, w_map, r_map) -> True`` when the
        #: candidate is blocked by a more general qualifying GR.  Used by
        #: the parallel workers, whose local generality index cannot see
        #: blockers discovered in sibling shards (repro.parallel.worker).
        self._candidate_verifier = None
        #: First-level value partitions keyed by LEFT attribute name.
        #: Pure derived data over the immutable store — independent of
        #: the query parameters — so it persists across runs *and*
        #: re-arms: plan_branches fills it, mine_branch reuses it
        #: (workers, which never plan, fill it lazily for the attributes
        #: they own).
        self._branch_partitions: dict[str, dict[int, np.ndarray]] = {}
        self._homophily = {
            name: self.schema.is_homophily(name)
            for name in self.schema.node_attribute_names
        }
        self._domain = {
            name: self.schema.attribute(name).domain_size
            for name in (
                list(self.schema.node_attribute_names)
                + list(self.schema.edge_attribute_names)
            )
        }
        # Per-edge code columns resolved through the compact store's
        # pointer structure (EArray order), gathered lazily per attribute
        # and cached for the miner's lifetime.
        self._src_cols = _ColumnCache(self.store.source_codes)
        self._dst_cols = _ColumnCache(self.store.dest_codes)
        self._edge_cols = _ColumnCache(self.store.edge_codes)

        self.rearm(config)

    def rearm(self, config: MinerConfig) -> "GRMiner":
        """Point this miner skeleton at a new query.

        Applies ``config`` to the existing network/store, re-deriving
        only parameter-dependent state — the compact store, the cached
        per-edge code columns and the first-level branch partitions all
        survive, which is what makes a long-lived miner (an engine's
        serial executor, a pool worker) cheap to re-target between
        queries.  Returns ``self``.
        """
        config.validate()
        node_attributes = (
            config.node_attributes
            if config.node_attributes is not None
            else self.schema.node_attribute_names
        )
        for name in node_attributes:  # unknown-name check before any mutation
            self.schema.node_attribute(name)
        self.config = config
        self.min_support = config.min_support
        self.abs_min_support = self._absolute_support(
            config.min_support, self.network.num_edges
        )
        self.min_score = float(config.min_score)
        self.k = config.k
        self.rank_by = config.rank_by
        self.push_topk = config.push_topk
        self.push_score_pruning = config.push_score_pruning
        self.dynamic_rhs_ordering = config.dynamic_rhs_ordering
        self.node_attributes = node_attributes
        self.include_trivial = (
            config.include_trivial
            if config.include_trivial is not None
            else config.rank_by != "nhp"
        )
        self.allow_empty_lhs = config.allow_empty_lhs
        self.max_lhs_attrs = config.max_lhs_attrs
        self.max_rhs_attrs = config.max_rhs_attrs
        self.max_edge_attrs = config.max_edge_attrs
        self.apply_generality = config.apply_generality
        self.laplace_k = config.laplace_k
        self.gain_theta = config.gain_theta
        self.verify_generality = config.verify_generality
        # A verifier installed for a previous query must not leak into
        # the next one (it may cache verdicts under other thresholds).
        self._candidate_verifier = None
        return self

    @staticmethod
    def _absolute_support(min_support: int | float, num_edges: int) -> int:
        """Translate ``minSupp`` to an absolute edge count (at least 1).

        The type carries the unit: an ``int`` is an absolute count, a
        ``float`` is a fraction of ``|E|``.  Sub-threshold forms clamp to
        the smallest meaningful count — ``0`` and fractions whose scaled
        value rounds to zero canonicalize to ``1``, the same key their
        integer form produces.  The one point where the two readings
        collide, ``float 1.0`` (absolute 1? all |E| edges?), is rejected
        rather than silently resolved: callers must say ``1`` (count) or
        a fraction strictly below 1.
        """
        if isinstance(min_support, bool):
            raise ValueError("min_support must be a number")
        if isinstance(min_support, int):
            if min_support < 0:
                raise ValueError("min_support must be non-negative")
            return max(1, min_support)
        if not 0.0 <= min_support <= 1.0:
            raise ValueError("fractional min_support must be in [0, 1)")
        if min_support == 1.0:
            raise ValueError(
                "min_support=1.0 is ambiguous: pass the int 1 for an absolute "
                "count of one edge, or a fraction strictly below 1.0 (use the "
                "int num_edges to require every edge)"
            )
        return max(1, int(math.ceil(min_support * num_edges - 1e-9)))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run Algorithm 1 and return the ranked result.

        The run is organized as the sequence of independent first-level
        branches of :meth:`plan_branches` (the serial traversal order is
        unchanged); :class:`~repro.parallel.ParallelGRMiner` distributes
        the same branches across worker processes.
        """
        start = time.perf_counter()
        self._begin()
        plan = self.plan_branches()
        self._stats.pruned_by_support += plan.pruned_by_support
        for branch in plan.branches:
            self.mine_branch(plan.tau, branch)

        results = self._collector.results()
        if self.k is not None and not self.push_topk:
            results = results[: self.k]
        elif (
            self.k is not None
            and self.apply_generality
            and self.verify_generality
        ):
            results = self._verify_generality(results)
        self._stats.runtime_seconds = time.perf_counter() - start
        return MiningResult(grs=results, stats=self._stats, params=self._params())

    # ------------------------------------------------------------------
    # Branch-entry API (used by mine() and by the parallel workers)
    # ------------------------------------------------------------------
    def _begin(self, collector: TopKCollector | None = None) -> None:
        """Reset per-run state; a caller may inject its own collector."""
        self._stats = MiningStats()
        self._collector = collector if collector is not None else TopKCollector(
            k=self.k if self.push_topk else None, min_score=self.min_score
        )
        self._index = GeneralityIndex()
        # A worker installs its verifier after _begin; resetting here
        # keeps a plain mine() exact after the miner served as a shard
        # executor (repro.parallel reuses miner instances across tasks).
        self._candidate_verifier = None

    def plan_branches(self) -> BranchPlan:
        """Decompose the run into its independent first-level branches.

        Mirrors the main procedure (Algorithm 1 lines 2-5): the root
        RIGHT/EDGE subtrees (empty-LHS GRs, emitted only when those are
        admissible — DESIGN.md §5.4) followed by the first-level LEFT
        value partitions in τ order.  Sub-threshold partitions are
        counted, not emitted.
        """
        tau = static_tau(self.schema, self.node_attributes)
        edges = self.store.all_edges()
        branches: list[BranchSpec] = []
        pruned = 0
        if self.allow_empty_lhs:
            branches.append(
                BranchSpec(
                    kind="root", token_index=-1, attr="", value=0, weight=int(edges.size)
                )
            )
        if self.max_lhs_attrs is None or self.max_lhs_attrs > 0:
            for i, token in enumerate(tau):
                if token.role != "L":
                    continue
                per_value = self._first_level_partition(tau, i)
                for value, subset in per_value.items():
                    if subset.size < self.abs_min_support:
                        pruned += 1
                        continue
                    branches.append(
                        BranchSpec(
                            kind="left",
                            token_index=i,
                            attr=token.attr,
                            value=int(value),
                            weight=int(subset.size),
                        )
                    )
        return BranchPlan(tau=tau, branches=tuple(branches), pruned_by_support=pruned)

    def _first_level_partition(
        self, tau: tuple[Token, ...], token_index: int
    ) -> dict[int, np.ndarray]:
        """Cached per-value edge partition of one first-level LEFT token.

        Keyed by attribute *name*, not token index: the partition depends
        only on the immutable store, while a token's index shifts when a
        re-arm changes ``node_attributes`` — a positional key would serve
        query N+1 another attribute's partition.
        """
        token = tau[token_index]
        per_value = self._branch_partitions.get(token.attr)
        if per_value is None:
            edges = self.store.all_edges()
            per_value = dict(
                partition_by_value(
                    edges, self._src_cols[token.attr][edges], self._domain[token.attr]
                )
            )
            self._branch_partitions[token.attr] = per_value
        return per_value

    def mine_branch(self, tau: tuple[Token, ...], branch: BranchSpec) -> None:
        """Run the recursion under one first-level branch.

        Requires :meth:`_begin` to have been called.  ``tau`` must be the
        plan's static order (workers recompute it deterministically from
        the schema rather than pickling it).
        """
        if branch.kind == "root":
            edges = self.store.all_edges()
            self._enter_right(edges, tau, l_map={}, w_map={})
            self._edge(edges, tau, l_map={}, w_map={})
            return
        token = tau[branch.token_index]
        subset = self._first_level_partition(tau, branch.token_index)[branch.value]
        child_tail = tau[: branch.token_index]
        l_map = {token.attr: branch.value}
        self._stats.lw_nodes += 1
        self._enter_right(subset, child_tail, l_map, w_map={})
        self._edge(subset, child_tail, l_map, w_map={})
        self._left(subset, child_tail, l_map)

    def _verify_generality(self, results: list) -> list:
        """Drop top-k entries whose generalization qualifies (DESIGN §5.5).

        GRMiner(k)'s dynamic threshold may have pruned the node where a
        blocker would have been examined; this post-pass re-checks each
        surviving entry against Definition 5(2) by direct evaluation.
        """
        from .metrics import MetricEngine  # local import to avoid cycle cost

        engine = MetricEngine(self.network)
        verified = []
        for mined in results:
            blocked = False
            for general in mined.gr.generalizations():
                if not general.lhs and not self.allow_empty_lhs:
                    continue
                trivial = general.is_trivial(self.schema)
                if trivial and not self.include_trivial:
                    continue
                if self.blocker_qualifies(engine.evaluate(general), trivial):
                    blocked = True
                    break
            if blocked:
                self._stats.pruned_by_generality += 1
            else:
                verified.append(mined)
        return verified

    def blocker_qualifies(self, metrics: GRMetrics, trivial: bool) -> bool:
        """Condition (1) for a *generality blocker* (Definition 5(2)).

        The single source of truth shared by the serial verification
        pass and the parallel workers' cross-shard verifier — a blocker
        must be admissible (non-trivial unless trivial GRs are admitted)
        and meet the user's support and score thresholds.
        """
        return (
            (self.include_trivial or not trivial)
            and metrics.support_count >= self.abs_min_support
            and self._score(metrics) >= self.min_score
        )

    def _params(self) -> dict:
        return {
            "min_support": self.min_support,
            "abs_min_support": self.abs_min_support,
            "min_score": self.min_score,
            "k": self.k,
            "rank_by": self.rank_by,
            "push_topk": self.push_topk,
            "push_score_pruning": self.push_score_pruning,
            "dynamic_rhs_ordering": self.dynamic_rhs_ordering,
            "node_attributes": self.node_attributes,
            "include_trivial": self.include_trivial,
            "allow_empty_lhs": self.allow_empty_lhs,
            "apply_generality": self.apply_generality,
        }

    # ------------------------------------------------------------------
    # LEFT / EDGE (Algorithm 1 lines 7-21)
    # ------------------------------------------------------------------
    def _left(self, edges: np.ndarray, tail: tuple[Token, ...], l_map: dict[str, int]) -> None:
        if self.max_lhs_attrs is not None and len(l_map) >= self.max_lhs_attrs:
            return
        for i, token in enumerate(tail):
            if token.role != "L":
                continue
            child_tail = tail[:i]
            keys = self._src_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_l = dict(l_map)
                new_l[token.attr] = value
                self._stats.lw_nodes += 1
                self._enter_right(subset, child_tail, new_l, w_map={})
                self._edge(subset, child_tail, new_l, w_map={})
                self._left(subset, child_tail, new_l)

    def _edge(
        self,
        edges: np.ndarray,
        tail: tuple[Token, ...],
        l_map: dict[str, int],
        w_map: dict[str, int],
    ) -> None:
        if self.max_edge_attrs is not None and len(w_map) >= self.max_edge_attrs:
            return
        for i, token in enumerate(tail):
            if token.role != "W":
                continue
            child_tail = tail[:i]
            keys = self._edge_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_w = dict(w_map)
                new_w[token.attr] = value
                self._stats.lw_nodes += 1
                self._enter_right(subset, child_tail, l_map, new_w)
                self._edge(subset, child_tail, l_map, new_w)

    # ------------------------------------------------------------------
    # RIGHT (Algorithm 1 lines 22-29)
    # ------------------------------------------------------------------
    def _enter_right(
        self,
        edges: np.ndarray,
        tail: tuple[Token, ...],
        l_map: dict[str, int],
        w_map: dict[str, int],
    ) -> None:
        if not l_map and not self.allow_empty_lhs:
            return
        r_tokens = tuple(t for t in tail if t.role == "R")
        if self.dynamic_rhs_ordering:
            r_tokens = dynamic_rhs_order(r_tokens, l_map, self.schema)
        context = _LWContext(
            edges=edges, l_map=l_map, w_map=w_map, lw_count=int(edges.size)
        )
        self._right(edges, r_tokens, context, r_map={})

    def _right(
        self,
        edges: np.ndarray,
        r_tail: tuple[Token, ...],
        context: _LWContext,
        r_map: dict[str, int],
    ) -> None:
        if self.max_rhs_attrs is not None and len(r_map) >= self.max_rhs_attrs:
            return
        for i, token in enumerate(r_tail):
            child_tail = r_tail[:i]
            keys = self._dst_cols[token.attr][edges]
            for value, subset in partition_by_value(edges, keys, self._domain[token.attr]):
                self._stats.grs_examined += 1
                if subset.size < self.abs_min_support:
                    self._stats.pruned_by_support += 1
                    continue
                new_r = dict(r_map)
                new_r[token.attr] = value
                metrics, trivial = self._evaluate(context, new_r, int(subset.size))
                score = self._score(metrics)
                self._consider(context, new_r, metrics, trivial, score)
                if self._should_prune(context, metrics.beta, score, child_tail):
                    self._stats.pruned_by_nhp += 1
                    continue
                self._right(subset, child_tail, context, new_r)

    def _score(self, metrics: GRMetrics) -> float:
        """The ranking metric's value (Definitions 3–4, Eqns. 10–11)."""
        if self.rank_by == "nhp":
            return metrics.nhp
        if self.rank_by == "confidence":
            return metrics.confidence
        if self.rank_by == "laplace":
            return (metrics.support_count + 1) / (metrics.lw_count + self.laplace_k)
        # gain, on relative supports: supp(g) − θ · supp(l ∧ w).
        num_edges = metrics.num_edges or 1
        return (metrics.support_count - self.gain_theta * metrics.lw_count) / num_edges

    # ------------------------------------------------------------------
    # Metrics at a RIGHT node (Section IV-D)
    # ------------------------------------------------------------------
    def _evaluate(
        self, context: _LWContext, r_map: dict[str, int], support_count: int
    ) -> tuple[GRMetrics, bool]:
        l_map = context.l_map
        beta = tuple(
            sorted(
                name
                for name, value in r_map.items()
                if self._homophily[name] and name in l_map and l_map[name] != value
            )
        )
        homophily_count = self._homophily_count(context, beta) if beta else 0
        trivial = all(
            self._homophily[name] and l_map.get(name) == value
            for name, value in r_map.items()
        )
        metrics = GRMetrics(
            support_count=support_count,
            lw_count=context.lw_count,
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )
        return metrics, trivial

    def evaluate_codes(
        self,
        l_map: dict[str, int],
        w_map: dict[str, int],
        r_map: dict[str, int],
    ) -> tuple[GRMetrics, bool]:
        """Direct metric evaluation of a code-level GR over all edges.

        Returns the same ``(metrics, trivial)`` pair :meth:`_evaluate`
        produces incrementally during the tree walk, but from scratch —
        the primitive behind the parallel workers' cross-shard generality
        checks, where the blocker's enumeration node lives in a sibling
        shard (or was cut by the dynamic threshold) and is therefore
        absent from the local index.
        """
        lw_mask = np.ones(self.network.num_edges, dtype=bool)
        for name, code in l_map.items():
            lw_mask &= self._src_cols[name] == code
        for name, code in w_map.items():
            lw_mask &= self._edge_cols[name] == code
        supp_mask = lw_mask.copy()
        for name, code in r_map.items():
            supp_mask &= self._dst_cols[name] == code
        beta = tuple(
            sorted(
                name
                for name, code in r_map.items()
                if self._homophily[name] and name in l_map and l_map[name] != code
            )
        )
        homophily_count = 0
        if beta:
            hom_mask = lw_mask.copy()
            for name in beta:
                hom_mask &= self._dst_cols[name] == l_map[name]
            homophily_count = int(hom_mask.sum())
        trivial = all(
            self._homophily[name] and l_map.get(name) == code
            for name, code in r_map.items()
        )
        metrics = GRMetrics(
            support_count=int(supp_mask.sum()),
            lw_count=int(lw_mask.sum()),
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )
        return metrics, trivial

    def _homophily_count(self, context: _LWContext, beta: tuple[str, ...]) -> int:
        """``supp(l -w-> l[β])`` within the context's edge set, cached by β.

        Case 1 of Section IV-D (β ⊂ R) reuses a previously cached count;
        Case 2 (β = R) computes it at the current node — both land here
        because the cache lives on the ``l ∧ w`` context.
        """
        cached = context.hom_cache.get(beta)
        if cached is not None:
            return cached
        mask = np.ones(context.edges.size, dtype=bool)
        for name in beta:
            mask &= self._dst_cols[name][context.edges] == context.l_map[name]
        count = int(mask.sum())
        context.hom_cache[beta] = count
        return count

    # ------------------------------------------------------------------
    # Candidate handling (lines 25-28) and pruning
    # ------------------------------------------------------------------
    def _consider(
        self,
        context: _LWContext,
        r_map: dict[str, int],
        metrics: GRMetrics,
        trivial: bool,
        score: float,
    ) -> None:
        if trivial and not self.include_trivial:
            return
        if not context.l_map and not self.allow_empty_lhs:
            return
        if score < self.min_score:
            return
        if self.apply_generality:
            l_key = tuple(sorted(context.l_map.items()))
            w_key = tuple(sorted(context.w_map.items()))
            r_key = tuple(sorted(r_map.items()))
            if self._index.is_blocked(l_key, w_key, r_key):
                self._stats.pruned_by_generality += 1
                return
            # Every GR satisfying conditions (1) and (2) enters the index
            # — including ones the dynamic top-k threshold will not admit
            # — so that later, more special GRs are still recognized as
            # redundant (DESIGN.md §5.5).
            self._index.add(l_key, w_key, r_key)
        self._stats.candidates += 1
        if self._collector.would_admit(score):
            if self._candidate_verifier is not None and self._candidate_verifier(
                context.l_map, context.w_map, r_map
            ):
                self._stats.pruned_by_generality += 1
                return
            self._collector.offer(self._decode(context, r_map), metrics, score)

    def _should_prune(
        self,
        context: _LWContext,
        beta: tuple[str, ...],
        score: float,
        child_tail: tuple[Token, ...],
    ) -> bool:
        """Cut the RIGHT subtree when the score bound justifies it.

        Confidence is anti-monotone under any RHS extension.  nhp is
        anti-monotone below this node iff β ≠ ∅ already (Theorem 2(2))
        or no remaining tail token can flip β — i.e. no homophily
        attribute that also occurs in the LHS (``Hʳ₂``) is left in the
        tail (Theorem 2(3) / Theorem 3).  With dynamic ordering this
        accepts every non-trivial node, reproducing Theorem 3; without
        it, fewer nodes qualify (the Remark 2 ablation).
        """
        if not self.push_score_pruning:
            return False
        threshold = self._collector.effective_threshold
        if score >= threshold:
            return False
        if self.rank_by != "nhp":
            # confidence, laplace and gain are anti-monotone under any
            # RHS extension (Section VII: "the anti-monotonicity remains
            # valid"), so the subtree can always be cut.
            return True
        if beta:
            return True
        can_flip = any(
            self._homophily[token.attr] and token.attr in context.l_map
            for token in child_tail
        )
        return not can_flip

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode(self, context: _LWContext, r_map: dict[str, int]) -> GR:
        def decode_node(mapping: dict[str, int]) -> Descriptor:
            return Descriptor(
                tuple(
                    (name, self.schema.node_attribute(name).label(code))
                    for name, code in mapping.items()
                )
            )

        edge_descriptor = Descriptor(
            tuple(
                (name, self.schema.edge_attribute(name).label(code))
                for name, code in context.w_map.items()
            )
        )
        return GR(decode_node(context.l_map), decode_node(r_map), edge_descriptor)


def mine_top_k(
    network: SocialNetwork,
    k: int = 10,
    min_support: int | float = 1,
    min_nhp: float = 0.0,
    workers: int | None = None,
    **kwargs,
) -> MiningResult:
    """Convenience wrapper: run GRMiner(k) with the paper's defaults.

    Pass ``workers=N`` to mine with the sharded multi-process
    :class:`~repro.parallel.ParallelGRMiner` instead of the serial
    miner (``workers=1`` runs the shard machinery in-process).

    Examples
    --------
    >>> from repro.datasets.toy import toy_dating_network
    >>> result = mine_top_k(toy_dating_network(), k=5, min_support=2, min_nhp=0.5)
    >>> len(result) <= 5
    True
    """
    if workers is not None:
        from ..parallel import ParallelGRMiner  # deferred: avoids an import cycle

        return ParallelGRMiner(
            network,
            workers=workers,
            min_support=min_support,
            min_score=min_nhp,
            k=k,
            **kwargs,
        ).mine()
    miner = GRMiner(network, min_support=min_support, min_score=min_nhp, k=k, **kwargs)
    return miner.mine()
