"""Result containers for mining runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .descriptors import GR
from .metrics import GRMetrics

__all__ = ["MinedGR", "MiningStats", "MiningResult"]


@dataclass(frozen=True)
class MinedGR:
    """One mined GR together with its metrics and ranking score."""

    gr: GR
    metrics: GRMetrics
    score: float

    def __str__(self) -> str:
        m = self.metrics
        return (
            f"{self.gr}  [score={self.score:.4f} nhp={m.nhp:.4f} "
            f"conf={m.confidence:.4f} supp={m.support_count}]"
        )


@dataclass
class MiningStats:
    """Search-effort counters; the currency of the Fig. 4 comparisons."""

    lw_nodes: int = 0
    #: RIGHT-tree nodes visited, i.e. GRs whose metrics were computed.
    grs_examined: int = 0
    #: Non-trivial GRs that passed minSupp and (user) minNhp.
    candidates: int = 0
    #: Partitions discarded by the support threshold.
    pruned_by_support: int = 0
    #: RIGHT subtrees cut by the nhp threshold (Theorem 3 pruning).
    pruned_by_nhp: int = 0
    #: Candidates rejected because a more general GR was already accepted.
    pruned_by_generality: int = 0
    #: Wall-clock runtime of the mining call, in seconds.
    runtime_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "lw_nodes": self.lw_nodes,
            "grs_examined": self.grs_examined,
            "candidates": self.candidates,
            "pruned_by_support": self.pruned_by_support,
            "pruned_by_nhp": self.pruned_by_nhp,
            "pruned_by_generality": self.pruned_by_generality,
            "runtime_seconds": self.runtime_seconds,
        }


@dataclass
class MiningResult:
    """Ranked GRs plus search statistics.

    ``grs`` is sorted by the Definition 5 rank: score descending, then
    support descending, then the GR's canonical string ascending.
    """

    grs: list[MinedGR]
    stats: MiningStats = field(default_factory=MiningStats)
    params: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.grs)

    def __iter__(self) -> Iterator[MinedGR]:
        return iter(self.grs)

    def __getitem__(self, index: int) -> MinedGR:
        return self.grs[index]

    def top(self, n: int) -> list[MinedGR]:
        return self.grs[:n]

    def find(self, gr: GR) -> MinedGR | None:
        """Locate a specific GR in the result, if present."""
        for mined in self.grs:
            if mined.gr == gr:
                return mined
        return None

    def __str__(self) -> str:
        lines = [f"MiningResult({len(self.grs)} GRs, {self.stats.runtime_seconds:.3f}s)"]
        lines += [f"  {i + 1:3d}. {mined}" for i, mined in enumerate(self.grs)]
        return "\n".join(lines)
