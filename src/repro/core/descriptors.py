"""Group relationships (GRs) and descriptors (Section III-A).

A *descriptor* is a set of ``(attribute, value)`` pairs; a node descriptor
selects the nodes sharing those values, an edge descriptor selects edges.
A *group relationship* ``l --w--> r`` (Definition 1) combines a node
descriptor ``l`` for edge sources, an edge descriptor ``w`` and a node
descriptor ``r`` for edge destinations.

This module defines the value-level objects used throughout the library:

* :class:`Descriptor` — immutable, canonically ordered attribute/value set.
* :class:`GR` — a group relationship with the paper's derived notions:
  ``beta`` (Eqn. 4), the homophily effect RHS ``l[β]`` (Eqn. 5),
  triviality, and the generality partial order of Section III-C.

GRs here carry *labels*; the miners work on integer codes internally and
decode through the schema at the API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..data.schema import Schema

__all__ = ["Descriptor", "GR", "gr_from_codes"]


def gr_from_codes(
    schema: Schema,
    l_map: Mapping[str, int],
    w_map: Mapping[str, int],
    r_map: Mapping[str, int],
) -> "GR":
    """Decode integer assignment maps into a labelled :class:`GR`."""
    lhs = Descriptor(
        tuple((n, schema.node_attribute(n).label(c)) for n, c in l_map.items())
    )
    rhs = Descriptor(
        tuple((n, schema.node_attribute(n).label(c)) for n, c in r_map.items())
    )
    edge = Descriptor(
        tuple((n, schema.edge_attribute(n).label(c)) for n, c in w_map.items())
    )
    return GR(lhs, rhs, edge)


@dataclass(frozen=True)
class Descriptor:
    """An immutable set of ``(attribute, value)`` conditions.

    Items are stored sorted by attribute name, giving every descriptor a
    canonical form; two descriptors with the same conditions compare and
    hash equal regardless of construction order.
    """

    items: tuple[tuple[str, str], ...]

    def __init__(self, items: Mapping[str, str] | Iterable[tuple[str, str]] = ()) -> None:
        pairs = tuple(sorted(items.items() if isinstance(items, Mapping) else items))
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise ValueError(f"descriptor repeats an attribute: {pairs}")
        object.__setattr__(self, "items", pairs)

    # -- set-like behaviour -------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self.items)

    def __contains__(self, attribute: str) -> bool:
        return any(name == attribute for name, _ in self.items)

    def __getitem__(self, attribute: str) -> str:
        for name, value in self.items:
            if name == attribute:
                return value
        raise KeyError(attribute)

    def get(self, attribute: str, default: str | None = None) -> str | None:
        for name, value in self.items:
            if name == attribute:
                return value
        return default

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names constrained by this descriptor."""
        return tuple(name for name, _ in self.items)

    def issubset(self, other: "Descriptor") -> bool:
        """Whether every condition of ``self`` also appears in ``other``."""
        return set(self.items) <= set(other.items)

    def extend(self, attribute: str, value: str) -> "Descriptor":
        """A new descriptor with one extra condition."""
        return Descriptor(self.items + ((attribute, value),))

    def restrict(self, attributes: Iterable[str]) -> "Descriptor":
        """A new descriptor keeping only conditions on ``attributes``."""
        keep = set(attributes)
        return Descriptor(tuple((n, v) for n, v in self.items if n in keep))

    def as_dict(self) -> dict[str, str]:
        return dict(self.items)

    def __str__(self) -> str:
        if not self.items:
            return "()"
        return "(" + ", ".join(f"{name}:{value}" for name, value in self.items) + ")"

    def __repr__(self) -> str:
        return f"Descriptor({self.items!r})"


@dataclass(frozen=True)
class GR:
    """A group relationship ``l --w--> r`` (Definition 1).

    Attributes
    ----------
    lhs:
        Node descriptor for edge sources (``l``).
    rhs:
        Node descriptor for edge destinations (``r``); must be non-empty.
    edge:
        Edge descriptor (``w``); may be empty.
    """

    lhs: Descriptor
    rhs: Descriptor
    edge: Descriptor = Descriptor()

    def __post_init__(self) -> None:
        if not self.rhs:
            raise ValueError("a GR needs a non-empty RHS")
        overlap_l = set(self.lhs.attributes) & set(self.edge.attributes)
        overlap_r = set(self.rhs.attributes) & set(self.edge.attributes)
        if overlap_l or overlap_r:
            raise ValueError(
                "edge descriptor shares attribute names with a node descriptor: "
                f"{sorted(overlap_l | overlap_r)}"
            )

    # ------------------------------------------------------------------
    # Paper-derived notions
    # ------------------------------------------------------------------
    def beta(self, schema: Schema) -> tuple[str, ...]:
        """The attribute set β of Eqn. (4).

        Homophily attributes constrained on both sides with *different*
        values: ``β = {Aʳ ∈ R | Aˡ ∈ L, r[Aʳ] ≠ l[Aˡ]}`` restricted to
        homophily attributes.
        """
        return tuple(
            name
            for name, r_value in self.rhs.items
            if schema.is_homophily(name)
            and name in self.lhs
            and self.lhs[name] != r_value
        )

    def homophily_effect_rhs(self, schema: Schema) -> Descriptor:
        """The RHS ``l[β]`` of the homophily effect ``l -w-> l[β]`` (Eqn. 5).

        Empty when β = ∅, in which case nhp degenerates to confidence
        (Remark 1).
        """
        return Descriptor(tuple((name, self.lhs[name]) for name in self.beta(schema)))

    def is_trivial(self, schema: Schema) -> bool:
        """Triviality test (Section III-B).

        A GR is trivial when *all* values in ``r`` come from homophily
        attributes and ``r ⊆ l``: it then merely restates the homophily
        principle.
        """
        return all(
            schema.is_homophily(name) and self.lhs.get(name) == value
            for name, value in self.rhs.items
        )

    # ------------------------------------------------------------------
    # Generality (Section III-C)
    # ------------------------------------------------------------------
    def is_more_general_than(self, other: "GR") -> bool:
        """Strict generality: same RHS, ``l ⊆ l'`` and ``w ⊆ w'``, not equal."""
        return (
            self.rhs == other.rhs
            and self.lhs.issubset(other.lhs)
            and self.edge.issubset(other.edge)
            and self != other
        )

    def generalizations(self) -> Iterator["GR"]:
        """All strictly more general GRs (same RHS, sub-descriptors of l∧w).

        Enumerates the ``2^(|l|+|w|) - 1`` proper sub-selections of the
        LHS and edge conditions; used by the generality index.
        """
        lw_items = [("L", item) for item in self.lhs.items]
        lw_items += [("W", item) for item in self.edge.items]
        n = len(lw_items)
        for mask in range((1 << n) - 1):  # excludes the full selection
            l_sel = tuple(item for j, (role, item) in enumerate(lw_items) if mask >> j & 1 and role == "L")
            w_sel = tuple(item for j, (role, item) in enumerate(lw_items) if mask >> j & 1 and role == "W")
            yield GR(Descriptor(l_sel), self.rhs, Descriptor(w_sel))

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def sort_key(self) -> str:
        """The "alphabetical order of GRs" used as the final rank tiebreak."""
        return str(self)

    def __str__(self) -> str:
        if self.edge:
            arrow = f" --{str(self.edge)}--> "
        else:
            arrow = " --> "
        return f"{self.lhs}{arrow}{self.rhs}"

    def __repr__(self) -> str:
        return f"GR(lhs={self.lhs!r}, rhs={self.rhs!r}, edge={self.edge!r})"
