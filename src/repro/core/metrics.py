"""Support, confidence and non-homophily preference (Sections III-A/B).

:class:`MetricEngine` evaluates GRs against a network with vectorized
masks.  It is the semantic reference for the miners: whatever GRMiner
counts incrementally must agree with these direct definitions —
the equivalence is enforced by the test suite.

Definitions implemented:

* ``supp(l -w-> r) = |E(l ∧ w ∧ r)| / |E|``                      (Def. 2)
* ``conf = supp(l -w-> r) / supp(l ∧ w)``                        (Def. 3)
* ``nhp  = supp(l -w-> r) / (supp(l∧w) − supp(l -w-> l[β]))``    (Def. 4)

with the Remark 1 conventions: ``supp(l -w-> l[β]) = 0`` when β = ∅ so
that nhp degenerates to confidence, and nhp ≥ conf whenever β ≠ ∅.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.network import SocialNetwork
from .descriptors import GR, Descriptor

__all__ = ["GRMetrics", "MetricEngine"]


@dataclass(frozen=True)
class GRMetrics:
    """All counts and ratios of one GR on one network.

    Attributes
    ----------
    support_count:
        ``|E(l ∧ w ∧ r)|``.
    lw_count:
        ``|E(l ∧ w)|``.
    homophily_count:
        ``|E(l ∧ w ∧ l[β])|`` — the edges explained by the homophily
        effect; ``0`` when β = ∅.
    num_edges:
        ``|E|``.
    beta:
        The attribute names of β (Eqn. 4).
    """

    support_count: int
    lw_count: int
    homophily_count: int
    num_edges: int
    beta: tuple[str, ...] = ()

    @property
    def support(self) -> float:
        """Relative support ``supp(l -w-> r)``."""
        return self.support_count / self.num_edges if self.num_edges else 0.0

    @property
    def confidence(self) -> float:
        """``conf(l -w-> r)``; 0 when no edge satisfies ``l ∧ w``."""
        return self.support_count / self.lw_count if self.lw_count else 0.0

    @property
    def nhp(self) -> float:
        """Non-homophily preference (Definition 4).

        Theorem 1 guarantees the denominator is positive whenever
        ``support_count > 0``; for the degenerate ``support_count = 0``
        case we return 0, matching the GR2 example of the paper
        (supp = 0, conf = 0).
        """
        denominator = self.lw_count - self.homophily_count
        if denominator <= 0:
            return 0.0
        return self.support_count / denominator

    def rank_key(self, gr: GR) -> tuple[float, float, str]:
        """Sort key for Definition 5 ranking: nhp desc, supp desc, name asc.

        Returned as a tuple to be used with ascending sort: negate the
        numeric components.
        """
        return (-self.nhp, -self.support_count, gr.sort_key())


class MetricEngine:
    """Direct (definition-level) evaluation of GR metrics on a network."""

    def __init__(self, network: SocialNetwork) -> None:
        self.network = network
        self.schema = network.schema
        # Per-edge code columns resolved once; each is |E| ints.
        self._source: dict[str, np.ndarray] = {}
        self._dest: dict[str, np.ndarray] = {}
        self._edge: dict[str, np.ndarray] = {}
        for attr in self.schema.node_attributes:
            self._source[attr.name] = network.source_values(attr.name)
            self._dest[attr.name] = network.dest_values(attr.name)
        for attr in self.schema.edge_attributes:
            self._edge[attr.name] = network.edge_column(attr.name)

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def _descriptor_mask(
        self, descriptor: Descriptor, columns: dict[str, np.ndarray], side: str
    ) -> np.ndarray:
        mask = np.ones(self.network.num_edges, dtype=bool)
        for name, value in descriptor.items:
            if name not in columns:
                raise KeyError(f"{side} descriptor uses unknown attribute {name!r}")
            attr = self.schema.attribute(name)
            mask &= columns[name] == attr.code(value)
        return mask

    def lhs_mask(self, descriptor: Descriptor) -> np.ndarray:
        """Edges whose *source* satisfies the descriptor."""
        return self._descriptor_mask(descriptor, self._source, "LHS")

    def rhs_mask(self, descriptor: Descriptor) -> np.ndarray:
        """Edges whose *destination* satisfies the descriptor."""
        return self._descriptor_mask(descriptor, self._dest, "RHS")

    def edge_mask(self, descriptor: Descriptor) -> np.ndarray:
        """Edges satisfying the edge descriptor."""
        return self._descriptor_mask(descriptor, self._edge, "edge")

    # ------------------------------------------------------------------
    # Counts and metrics
    # ------------------------------------------------------------------
    def count(self, lhs: Descriptor, edge: Descriptor, rhs: Descriptor) -> int:
        """``|E(l ∧ w ∧ r)|`` with any of the three descriptors possibly empty."""
        mask = self.lhs_mask(lhs) & self.edge_mask(edge) & self.rhs_mask(rhs)
        return int(mask.sum())

    def rhs_support_count(self, rhs: Descriptor) -> int:
        """``|E(r)|`` — edges whose destination satisfies ``r`` (Section VII)."""
        return int(self.rhs_mask(rhs).sum())

    def evaluate(self, gr: GR) -> GRMetrics:
        """Compute every Definition 2–4 quantity for ``gr``."""
        lw_mask = self.lhs_mask(gr.lhs) & self.edge_mask(gr.edge)
        support_count = int((lw_mask & self.rhs_mask(gr.rhs)).sum())
        beta = gr.beta(self.schema)
        if beta:
            hom_rhs = gr.homophily_effect_rhs(self.schema)
            homophily_count = int((lw_mask & self.rhs_mask(hom_rhs)).sum())
        else:
            homophily_count = 0
        return GRMetrics(
            support_count=support_count,
            lw_count=int(lw_mask.sum()),
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )

    def support(self, gr: GR) -> float:
        return self.evaluate(gr).support

    def confidence(self, gr: GR) -> float:
        return self.evaluate(gr).confidence

    def nhp(self, gr: GR) -> float:
        return self.evaluate(gr).nhp
