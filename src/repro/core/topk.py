"""Top-k collection with dynamic threshold upgrade and generality index.

Implements the bookkeeping of Definition 5 and Algorithm 1 lines 27–28:

* ranking by score (nhp, or confidence for the baseline ranking), then
  support, then the alphabetical order of the GR's canonical string;
* the *generality index* enforcing condition (2): a candidate is rejected
  when a strictly more general non-trivial GR already passed condition
  (1).  Thanks to SFDF's Property 2 every potential blocker is examined
  before the GRs it blocks, so a single forward pass suffices;
* the dynamic ``minNhp`` upgrade of GRMiner(k): once k GRs are held, the
  score of the weakest one becomes the effective pruning threshold;
* :meth:`TopKCollector.merge` — deterministic recombination of per-shard
  collections, the reduce step of the parallel miner: because the rank
  key (score desc, support desc, canonical string asc) is a total order,
  merging per-shard top-k lists reproduces the global top-k exactly.
"""

from __future__ import annotations

import bisect
from itertools import combinations
from typing import Iterable, Iterator

from .descriptors import GR
from .metrics import GRMetrics
from .results import MinedGR

__all__ = ["TopKCollector", "GeneralityIndex"]

#: Internal identity of a descriptor: sorted (attr, code) pairs.
DescriptorKey = tuple[tuple[str, int], ...]


class GeneralityIndex:
    """Index of GRs satisfying condition (1), keyed by their RHS.

    Checking a candidate enumerates the proper sub-selections of its
    LHS ∧ edge conditions (``2^(|l|+|w|) − 1`` membership probes against
    a hash set) — cheap because descriptors are short.  Only maximally
    general entries need to be stored: blocking is transitive, so a
    redundant GR never blocks anything its own blocker would not.
    """

    def __init__(self) -> None:
        self._by_rhs: dict[DescriptorKey, set[tuple[DescriptorKey, DescriptorKey]]] = {}
        # The subselection list depends only on (l_key, w_key) — one
        # ``l ∧ w`` enumeration context — while ``is_blocked`` probes it
        # once per candidate RHS under that context, so it is memoised
        # as a materialized tuple.
        self._sub_cache: dict[
            tuple[DescriptorKey, DescriptorKey],
            tuple[tuple[DescriptorKey, DescriptorKey], ...],
        ] = {}

    @staticmethod
    def _lw_subselections(
        l_key: DescriptorKey, w_key: DescriptorKey
    ) -> Iterable[tuple[DescriptorKey, DescriptorKey]]:
        l_subs = [
            sel
            for size in range(len(l_key) + 1)
            for sel in combinations(l_key, size)
        ]
        w_subs = [
            sel
            for size in range(len(w_key) + 1)
            for sel in combinations(w_key, size)
        ]
        full = (l_key, w_key)
        for l_sel in l_subs:
            for w_sel in w_subs:
                if (l_sel, w_sel) != full:  # proper subsets only
                    yield l_sel, w_sel

    def _subselections(
        self, l_key: DescriptorKey, w_key: DescriptorKey
    ) -> tuple[tuple[DescriptorKey, DescriptorKey], ...]:
        cache_key = (l_key, w_key)
        subs = self._sub_cache.get(cache_key)
        if subs is None:
            subs = tuple(self._lw_subselections(l_key, w_key))
            self._sub_cache[cache_key] = subs
        return subs

    def is_blocked(self, l_key: DescriptorKey, w_key: DescriptorKey, r_key: DescriptorKey) -> bool:
        """Whether a strictly more general GR with the same RHS is indexed.

        Two strategies with identical semantics, chosen by cost: probing
        the entry set with every proper sub-selection of ``l ∧ w`` is
        ``O(2^n)``, while scanning the entries for one that is contained
        in the candidate is ``O(|entries| · n)`` — the latter wins on the
        deep contexts (large ``n``) that dominate real traversals, where
        the RHS bucket holds only a handful of maximally general GRs.
        """
        entries = self._by_rhs.get(r_key)
        if not entries:
            return False
        n = len(l_key) + len(w_key)
        if len(entries) < (1 << n) >> 1:
            l_sup = set(l_key)
            w_sup = set(w_key)
            own = (l_key, w_key)
            for entry in entries:
                if (
                    entry != own
                    and l_sup.issuperset(entry[0])
                    and w_sup.issuperset(entry[1])
                ):
                    return True
            return False
        return any(sub in entries for sub in self._subselections(l_key, w_key))

    def add(self, l_key: DescriptorKey, w_key: DescriptorKey, r_key: DescriptorKey) -> None:
        self._by_rhs.setdefault(r_key, set()).add((l_key, w_key))

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_rhs.values())


class TopKCollector:
    """Maintains the best k GRs seen so far, in Definition 5 rank order.

    Parameters
    ----------
    k:
        Result size; ``None`` collects every qualifying GR (the plain
        GRMiner of Section VI-D, whose results are top-k-truncated only
        at the end).
    min_score:
        The user's minNhp (or minConf) — condition (1)'s threshold.
    """

    def __init__(self, k: int | None, min_score: float) -> None:
        if k is not None and k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.min_score = float(min_score)
        self._keys: list[tuple[float, float, str]] = []  # ascending rank keys
        self._entries: list[MinedGR] = []

    # ------------------------------------------------------------------
    @property
    def effective_threshold(self) -> float:
        """Current pruning threshold: the dynamic minNhp of GRMiner(k).

        Equals the user threshold until k results are held, then the
        score of the k-th best (line 28 of Algorithm 1).
        """
        if self.k is not None and len(self._entries) >= self.k:
            return max(self.min_score, self._entries[-1].score)
        return self.min_score

    def would_admit(self, score: float) -> bool:
        """Whether a GR with this score could enter the current top-k."""
        if score < self.min_score:
            return False
        if self.k is None or len(self._entries) < self.k:
            return True
        return score >= self._entries[-1].score

    def offer(self, gr: GR, metrics: GRMetrics, score: float) -> bool:
        """Insert a qualifying GR; returns whether it was kept.

        The caller is responsible for condition (1) (thresholds) and
        condition (2) (generality); this method only ranks and truncates.
        """
        key = (-score, -metrics.support_count, gr.sort_key())
        position = bisect.bisect_left(self._keys, key)
        if self.k is not None and position >= self.k:
            return False
        self._keys.insert(position, key)
        self._entries.insert(position, MinedGR(gr=gr, metrics=metrics, score=score))
        if self.k is not None and len(self._entries) > self.k:
            self._keys.pop()
            self._entries.pop()
        return True

    def results(self) -> list[MinedGR]:
        """The collected GRs in rank order."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MinedGR]:
        return iter(self._entries)

    @classmethod
    def merge(
        cls,
        parts: Iterable[Iterable[MinedGR]],
        k: int | None,
        min_score: float = 0.0,
    ) -> "TopKCollector":
        """Combine already-qualified entries into one ranked collector.

        ``parts`` are iterables of :class:`MinedGR` (lists or other
        collectors), e.g. one per parallel shard.  Entries are assumed to
        have passed condition (1) and (2) checks at their source; this
        method only re-ranks and truncates.  A member of the global
        top-k is, within its own shard, among that shard's k best — so
        merging per-shard top-k lists loses nothing, and the total rank
        order makes the outcome independent of shard count and order.
        """
        merged = cls(k=k, min_score=min_score)
        for part in parts:
            for entry in part:
                merged.offer(entry.gr, entry.metrics, entry.score)
        return merged
