"""The baseline miners of Section VI-D: BL1, BL2 and confidence ranking.

* :class:`BL1Miner` — stores everything in the single joined edge table
  (:class:`~repro.data.edgetable.EdgeTable`) and runs the BUC iceberg
  cube with *support-only* pruning; GR construction, nhp evaluation,
  triviality/generality filtering and top-k selection all happen in a
  post-processing step.  This is the paper's BL1.
* :class:`BL2Miner` — the same support-only search strategy, but over the
  three-table compact model (LArray/EArray/RArray).  Implemented as
  GRMiner with nhp pushdown and the dynamic top-k upgrade disabled,
  which is precisely what distinguishes the baselines from GRMiner in
  the paper's Fig. 4 comparisons.
* :class:`ConfidenceMiner` — top-k ranking by standard confidence (the
  right-hand columns of Table II), where the homophily effect is *not*
  excluded and trivial GRs compete.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..cube.buc import BUC, Cell, cell_to_maps
from ..data.edgetable import EdgeTable, lhs_column, rhs_column, split_column
from ..data.network import SocialNetwork
from .descriptors import gr_from_codes
from .metrics import GRMetrics
from .miner import GRMiner
from .results import MinedGR, MiningResult, MiningStats

__all__ = ["BL1Miner", "BL2Miner", "ConfidenceMiner"]


class BL1Miner:
    """BUC over the single joined table, with top-k GRs as post-processing.

    Parameters mirror :class:`~repro.core.miner.GRMiner` where they are
    meaningful; there is no ``push_topk`` / ``push_score_pruning`` because
    BL1 by definition pushes only ``minSupp`` (Section VI-D: "Both
    baselines prune the search space using the anti-monotonicity of
    support, but not minNhp, and find the top-k GRs in a post-processing
    step").
    """

    def __init__(
        self,
        network: SocialNetwork,
        min_support: int | float = 1,
        min_score: float = 0.0,
        k: int | None = None,
        rank_by: str = "nhp",
        node_attributes: Sequence[str] | None = None,
        include_trivial: bool | None = None,
        allow_empty_lhs: bool = False,
        apply_generality: bool = True,
    ) -> None:
        if rank_by not in ("nhp", "confidence"):
            raise ValueError(f"rank_by must be 'nhp' or 'confidence', got {rank_by!r}")
        self.network = network
        self.schema = network.schema
        self.abs_min_support = GRMiner._absolute_support(min_support, network.num_edges)
        self.min_score = float(min_score)
        self.k = k
        self.rank_by = rank_by
        self.node_attributes = (
            tuple(node_attributes)
            if node_attributes is not None
            else self.schema.node_attribute_names
        )
        if include_trivial is None:
            include_trivial = rank_by != "nhp"
        self.include_trivial = include_trivial
        self.allow_empty_lhs = allow_empty_lhs
        self.apply_generality = apply_generality

        self.table = EdgeTable(network)
        keep = set(self.node_attributes)
        self._columns = {
            name: col
            for name, col in self.table.columns.items()
            if split_column(name)[1] == "W" or split_column(name)[0] in keep
        }
        self._domains = {name: self.table.domain_sizes[name] for name in self._columns}
        # Canonical cell key ordering: the BUC recursion adds columns in
        # declaration order, so lookups must sort the same way.
        self._column_rank = {name: i for i, name in enumerate(self._columns)}

    # ------------------------------------------------------------------
    def _cell_key(self, pairs: Sequence[tuple[str, int]]) -> Cell:
        return tuple(sorted(pairs, key=lambda p: self._column_rank[p[0]]))

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        stats = MiningStats()
        cube = BUC(self._columns, self._domains, self.abs_min_support).compute()
        stats.grs_examined = len(cube)

        hom_cache: dict[tuple[Cell, tuple[str, ...]], int] = {}
        qualifying: list[MinedGR] = []
        for cell, count in cube.items():
            maps = cell_to_maps(cell, split_column)
            l_map, w_map, r_map = maps["L"], maps["W"], maps["R"]
            if not r_map:
                continue
            if not l_map and not self.allow_empty_lhs:
                continue
            stats.lw_nodes += 1
            metrics = self._metrics(cell, count, l_map, w_map, r_map, cube, hom_cache)
            trivial = all(
                self.schema.is_homophily(name) and l_map.get(name) == value
                for name, value in r_map.items()
            )
            if trivial and not self.include_trivial:
                continue
            score = metrics.nhp if self.rank_by == "nhp" else metrics.confidence
            if score < self.min_score:
                continue
            gr = gr_from_codes(self.schema, l_map, w_map, r_map)
            qualifying.append(MinedGR(gr=gr, metrics=metrics, score=score))
        stats.candidates = len(qualifying)

        if self.apply_generality:
            identities = {(m.gr.lhs, m.gr.edge, m.gr.rhs) for m in qualifying}
            results = [
                m
                for m in qualifying
                if not any(
                    (g.lhs, g.edge, g.rhs) in identities for g in m.gr.generalizations()
                )
            ]
            stats.pruned_by_generality = len(qualifying) - len(results)
        else:
            results = qualifying
        results.sort(key=lambda m: (-m.score, -m.metrics.support_count, m.gr.sort_key()))
        if self.k is not None:
            results = results[: self.k]
        stats.runtime_seconds = time.perf_counter() - start
        return MiningResult(
            grs=results,
            stats=stats,
            params={"baseline": "BL1", "rank_by": self.rank_by, "k": self.k},
        )

    # ------------------------------------------------------------------
    def _metrics(
        self,
        cell: Cell,
        count: int,
        l_map: dict[str, int],
        w_map: dict[str, int],
        r_map: dict[str, int],
        cube: dict[Cell, int],
        hom_cache: dict[tuple[Cell, tuple[str, ...]], int],
    ) -> GRMetrics:
        lw_pairs = [(lhs_column(n), v) for n, v in l_map.items()]
        lw_pairs += [(n, v) for n, v in w_map.items()]
        lw_key = self._cell_key(lw_pairs)
        # The l ∧ w cell is frequent whenever the full cell is, so it is
        # always present in the iceberg cube.
        lw_count = cube[lw_key]

        beta = tuple(
            sorted(
                name
                for name, value in r_map.items()
                if self.schema.is_homophily(name)
                and name in l_map
                and l_map[name] != value
            )
        )
        homophily_count = 0
        if beta:
            cache_key = (lw_key, beta)
            homophily_count = hom_cache.get(cache_key, -1)
            if homophily_count < 0:
                # supp(l -w-> l[β]) may fall below minSupp and hence be
                # missing from the cube: count it directly on the table.
                mask = np.ones(self.table.num_rows, dtype=bool)
                for column, value in lw_key:
                    mask &= self._columns[column] == value
                for name in beta:
                    mask &= self._columns[rhs_column(name)] == l_map[name]
                homophily_count = int(mask.sum())
                hom_cache[cache_key] = homophily_count
        return GRMetrics(
            support_count=count,
            lw_count=lw_count,
            homophily_count=homophily_count,
            num_edges=self.network.num_edges,
            beta=beta,
        )


class BL2Miner(GRMiner):
    """Support-only pruning over the three-table compact model.

    The second baseline of Section VI-D: identical storage to GRMiner,
    but "prunes the search space using the anti-monotonicity of support,
    but not minNhp", finding the top-k in post-processing.  Concretely:
    ``push_score_pruning=False`` and ``push_topk=False``; every other
    mechanism (SFDF order, generality index, ranking) is shared.
    """

    def __init__(self, network: SocialNetwork, **kwargs) -> None:
        kwargs.setdefault("push_score_pruning", False)
        kwargs.setdefault("push_topk", False)
        super().__init__(network, **kwargs)

    def mine(self) -> MiningResult:
        result = super().mine()
        result.params["baseline"] = "BL2"
        return result


class ConfidenceMiner(GRMiner):
    """Top-k GRs ranked by standard confidence (Table II's conf columns).

    The homophily effect is not excluded and trivial GRs are admitted,
    which is exactly why this ranking surfaces ``(R:x) → (R:x)``-style
    patterns the nhp ranking filters out.
    """

    def __init__(self, network: SocialNetwork, **kwargs) -> None:
        kwargs.setdefault("rank_by", "confidence")
        super().__init__(network, **kwargs)
