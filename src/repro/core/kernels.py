"""Selectable numeric kernels for the miner's RIGHT-phase inner loop.

The SFDF traversal bottoms out in the RIGHT-node candidate evaluation
(Algorithm 1 lines 22–29): for every token left in a node's tail, every
value of the token's domain is a candidate GR.  This module provides the
batch primitives that evaluate *all values of one token in one shot* —
support counts via a single ``np.bincount`` over the gathered
destination codes, rank scores for all four metrics as array
expressions, and the support/min-score/triviality filters as boolean
masks — so only the survivors fall back to the scalar admission path
(generality index, collector, decode).

Three tiers are exposed through ``MinerConfig(kernel=...)``:

``"reference"``
    The original scalar loop over ``partition_by_value`` groups, kept
    intact in :meth:`GRMiner._right_reference` as the equivalence
    oracle (the same pattern the counting-sort vectorization followed
    with ``_placement_loop_argsort``).
``"vector"``
    Pure numpy batches (this module's :class:`VectorOps`); the default.
``"numba"``
    ``@njit``-compiled versions of the count/score kernels.  Optional:
    when numba is not importable the tier degrades gracefully to
    ``"vector"`` with a single warning (:func:`resolve_kernel`).

Every tier produces bit-identical scores: the array expressions use the
same IEEE-754 double operations in the same order as the scalar
formulas, and ``int64/int64`` true division is correctly rounded in
both numpy and Python for operands below 2**53 — far above any edge
count this miner sees.  The tier is therefore a pure execution detail:
results, stats counters and cache identities match across tiers.

This module is also the single home of the rank-metric formulas on raw
counts (:func:`nhp_counts`, :func:`confidence_counts`,
:func:`laplace_counts`, :func:`gain_counts`) — ``GRMiner._score`` and
:mod:`repro.core.interestingness` both delegate here so the two can't
drift.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..sortutil.counting_sort import _key_dtype

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_TIERS",
    "NUMBA_AVAILABLE",
    "VectorOps",
    "confidence_counts",
    "gain_counts",
    "kernel_ops",
    "laplace_counts",
    "nhp_counts",
    "resolve_kernel",
    "score_counts",
    "score_matrix",
    "token_support",
]

KERNEL_TIERS = ("reference", "vector", "numba")
DEFAULT_KERNEL = "vector"

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in CI
    numba = None
    NUMBA_AVAILABLE = False

_warned_numba_missing = False


def resolve_kernel(name: str) -> str:
    """Resolve a configured tier name to the tier that will execute.

    ``"numba"`` without numba installed falls back to ``"vector"`` —
    same answers, different speed — warning once per process so a
    requested-but-unavailable accelerator never fails a query.
    """
    global _warned_numba_missing
    if name not in KERNEL_TIERS:
        raise ValueError(
            f"kernel must be one of {KERNEL_TIERS}; got {name!r}"
        )
    if name == "numba" and not NUMBA_AVAILABLE:
        if not _warned_numba_missing:
            _warned_numba_missing = True
            warnings.warn(
                "kernel='numba' requested but numba is not installed; "
                "falling back to the 'vector' kernel (identical results)",
                UserWarning,
                stacklevel=2,
            )
        return "vector"
    return name


# ----------------------------------------------------------------------
# Rank-metric formulas on raw counts (array-capable, Defs. 3-4, Eqns.
# 10-11).  These are the single source of truth: GRMiner._score and
# repro.core.interestingness delegate here.
# ----------------------------------------------------------------------
def confidence_counts(support_count, lw_count):
    """``conf = supp_count / lw_count``; 0 when no edge satisfies l ∧ w."""
    if lw_count <= 0:
        return _zeros_like(support_count)
    return support_count / lw_count


def nhp_counts(support_count, lw_count, homophily_count):
    """``nhp = supp_count / (lw_count − hom_count)`` (Definition 4).

    Returns 0 when the denominator is not positive, matching
    :attr:`GRMetrics.nhp`'s degenerate-case convention.
    """
    denominator = lw_count - homophily_count
    if denominator <= 0:
        return _zeros_like(support_count)
    return support_count / denominator


def laplace_counts(support_count, lw_count, laplace_k=2):
    """Laplace accuracy on counts (Eqn. 10): ``(n_s + 1) / (n + k)``."""
    return (support_count + 1) / (lw_count + laplace_k)


def gain_counts(support_count, lw_count, num_edges, gain_theta=0.5):
    """Gain on counts (Eqn. 11): ``(n_s − θ·n) / |E|``.

    Pass ``num_edges=1`` to evaluate the formula on relative supports
    (as :func:`repro.core.interestingness.gain` does); division by one
    is exact, so both spellings produce identical floats.
    """
    return (support_count - gain_theta * lw_count) / num_edges


def score_counts(
    rank_by,
    support_count,
    lw_count,
    homophily_count,
    num_edges,
    laplace_k,
    gain_theta,
):
    """Dispatch one rank metric over scalar or array support counts."""
    if rank_by == "nhp":
        return nhp_counts(support_count, lw_count, homophily_count)
    if rank_by == "confidence":
        return confidence_counts(support_count, lw_count)
    if rank_by == "laplace":
        return laplace_counts(support_count, lw_count, laplace_k)
    return gain_counts(support_count, lw_count, num_edges or 1, gain_theta)


def _zeros_like(support_count):
    if isinstance(support_count, np.ndarray):
        return np.zeros(support_count.shape, dtype=np.float64)
    return 0.0


def score_matrix(
    rank_by,
    counts,
    lw_count,
    nhp_denoms,
    num_edges,
    laplace_k,
    gain_theta,
):
    """Rank scores for a whole RIGHT-node arena in one array expression.

    ``counts`` is the node's flat ragged histogram (every tail token's
    value bins side by side) and ``nhp_denoms`` the element-aligned
    ``lw − hom`` denominators — read only for ``rank_by="nhp"``; bins
    whose true denominator was non-positive are clamped to 1 by the
    caller and zeroed afterwards, mirroring the degenerate-case
    convention of :func:`nhp_counts`.  Elementwise the same IEEE-754
    operations as the scalar formulas, so every bin is bit-identical to
    the reference tier's score for that candidate.
    """
    if rank_by == "nhp":
        return counts / nhp_denoms
    if rank_by == "confidence":
        if lw_count <= 0:
            return np.zeros(counts.shape, dtype=np.float64)
        return counts / lw_count
    if rank_by == "laplace":
        return (counts + 1) / (lw_count + laplace_k)
    return (counts - gain_theta * lw_count) / (num_edges or 1)


# ----------------------------------------------------------------------
# Batch support phase
# ----------------------------------------------------------------------
def token_support(ops, keys, domain_size, abs_min_support):
    """Evaluate the support filter for every value of one RIGHT token.

    One histogram replaces the per-value ``partition_by_value`` walk:
    ``counts[v]`` is the support of extending the node's RHS with
    ``(attr: v)``, values the reference loop would have examined are the
    non-empty non-null bins, and Theorem 2(1) pruning is one vectorized
    comparison.

    Returns ``(counts, values, supports, examined, support_pruned)``
    where ``values``/``supports`` hold the surviving candidates in
    ascending value order (the reference traversal order) and are
    ``None`` when nothing survives.  ``counts`` is the full histogram,
    kept so a caller that recurses can derive the counting-sort
    partition offsets without a second pass.
    """
    counts = ops.counts(keys, domain_size)
    nonzero = np.nonzero(counts)[0]
    examined = int(nonzero.size)
    has_null = examined > 0 and nonzero[0] == 0
    if has_null:
        examined -= 1
    if examined == 0:
        return counts, None, None, 0, 0
    supports = counts[nonzero]
    keep = supports >= abs_min_support
    if has_null:
        keep[0] = False
    alive = int(np.count_nonzero(keep))
    if alive == 0:
        return counts, None, None, examined, examined
    if alive != nonzero.size:
        nonzero = nonzero[keep]
        supports = supports[keep]
    return counts, nonzero, supports, examined, examined - alive


# ----------------------------------------------------------------------
# Kernel ops: the tier-specific numeric primitives
# ----------------------------------------------------------------------
class VectorOps:
    """Pure-numpy batch primitives (the ``"vector"`` tier)."""

    name = "vector"

    @staticmethod
    def counts(keys: np.ndarray, domain_size: int) -> np.ndarray:
        """Histogram of codes over ``[0, domain_size]``."""
        return np.bincount(keys, minlength=domain_size + 1)

    @staticmethod
    def argsort(keys: np.ndarray, domain_size: int) -> np.ndarray:
        """Stable counting-sort permutation (radix for small domains)."""
        narrow = keys.astype(_key_dtype(domain_size), copy=False)
        return np.argsort(narrow, kind="stable")

    @staticmethod
    def and_eq(prefix: np.ndarray | None, keys: np.ndarray, code: int) -> np.ndarray:
        """``prefix & (keys == code)`` (``keys == code`` when no prefix)."""
        eq = keys == code
        if prefix is None:
            return eq
        return prefix & eq

    @staticmethod
    def flat_counts(matrix: np.ndarray, n_bins: int) -> np.ndarray:
        """One histogram over a whole offset-coded arena matrix.

        Row ``r`` of the matrix carries codes pre-shifted by
        ``r * stride``, so a single flat bincount yields every
        attribute's histogram side by side; the caller reshapes to
        ``(rows, stride)``.
        """
        return np.bincount(matrix.ravel(), minlength=n_bins)

    @staticmethod
    def arena_counts(matrix: np.ndarray, edges: np.ndarray, n_bins: int) -> np.ndarray:
        """Histogram of every arena row gathered at ``edges`` at once —
        the fused gather + flat bincount behind each RIGHT node."""
        return np.bincount(matrix.take(edges, axis=1).ravel(), minlength=n_bins)

    scores = staticmethod(score_counts)
    score_matrix = staticmethod(score_matrix)


if NUMBA_AVAILABLE:  # pragma: no cover - requires numba in the environment

    _njit = numba.njit(cache=False, fastmath=False)

    @_njit
    def _nb_counts(keys, domain_size):
        counts = np.zeros(domain_size + 1, dtype=np.int64)
        for i in range(keys.shape[0]):
            counts[keys[i]] += 1
        return counts

    @_njit
    def _nb_eq(keys, code):
        out = np.empty(keys.shape[0], dtype=np.bool_)
        for i in range(keys.shape[0]):
            out[i] = keys[i] == code
        return out

    @_njit
    def _nb_and_eq(prefix, keys, code):
        out = np.empty(keys.shape[0], dtype=np.bool_)
        for i in range(keys.shape[0]):
            out[i] = prefix[i] and keys[i] == code
        return out

    @_njit
    def _nb_flat_counts(matrix, n_bins):
        counts = np.zeros(n_bins, dtype=np.int64)
        for r in range(matrix.shape[0]):
            for i in range(matrix.shape[1]):
                counts[matrix[r, i]] += 1
        return counts

    @_njit
    def _nb_arena_counts(matrix, edges, n_bins):
        counts = np.zeros(n_bins, dtype=np.int64)
        for r in range(matrix.shape[0]):
            row = matrix[r]
            for i in range(edges.shape[0]):
                counts[row[edges[i]]] += 1
        return counts

    @_njit
    def _nb_div(supports, denominator):
        out = np.empty(supports.shape[0], dtype=np.float64)
        for i in range(supports.shape[0]):
            out[i] = supports[i] / denominator
        return out

    @_njit
    def _nb_laplace(supports, lw_count, laplace_k):
        out = np.empty(supports.shape[0], dtype=np.float64)
        for i in range(supports.shape[0]):
            out[i] = (supports[i] + 1) / (lw_count + laplace_k)
        return out

    @_njit
    def _nb_gain(supports, lw_count, num_edges, gain_theta):
        out = np.empty(supports.shape[0], dtype=np.float64)
        theta_lw = gain_theta * lw_count
        for i in range(supports.shape[0]):
            out[i] = (supports[i] - theta_lw) / num_edges
        return out

    class NumbaOps:
        """``@njit``-compiled count/score kernels (the ``"numba"`` tier).

        Same IEEE-754 operations in the same order as :class:`VectorOps`,
        so scores stay bit-identical.  The counting-sort permutation
        stays on numpy's radix sort, which is already native code.
        """

        name = "numba"

        @staticmethod
        def counts(keys, domain_size):
            return _nb_counts(keys, domain_size)

        argsort = staticmethod(VectorOps.argsort)
        #: numpy's 2D broadcast division is already native code; a jitted
        #: copy would only re-spell the same IEEE expressions.
        score_matrix = staticmethod(score_matrix)

        @staticmethod
        def flat_counts(matrix, n_bins):
            return _nb_flat_counts(matrix, n_bins)

        @staticmethod
        def arena_counts(matrix, edges, n_bins):
            # fused gather + histogram: no (rows, |edges|) temporary
            return _nb_arena_counts(matrix, edges, n_bins)

        @staticmethod
        def and_eq(prefix, keys, code):
            if prefix is None:
                return _nb_eq(keys, code)
            return _nb_and_eq(prefix, keys, code)

        @staticmethod
        def scores(
            rank_by,
            support_count,
            lw_count,
            homophily_count,
            num_edges,
            laplace_k,
            gain_theta,
        ):
            if not isinstance(support_count, np.ndarray):
                return score_counts(
                    rank_by, support_count, lw_count, homophily_count,
                    num_edges, laplace_k, gain_theta,
                )
            supports = support_count.astype(np.int64, copy=False)
            if rank_by == "nhp":
                denominator = lw_count - homophily_count
                if denominator <= 0:
                    return np.zeros(supports.shape[0], dtype=np.float64)
                return _nb_div(supports, denominator)
            if rank_by == "confidence":
                if lw_count <= 0:
                    return np.zeros(supports.shape[0], dtype=np.float64)
                return _nb_div(supports, lw_count)
            if rank_by == "laplace":
                return _nb_laplace(supports, lw_count, laplace_k)
            return _nb_gain(supports, lw_count, num_edges or 1, gain_theta)

else:
    NumbaOps = None


def kernel_ops(tier: str):
    """The ops bundle executing a resolved tier's numeric primitives.

    The reference tier has no batch primitives of its own; it receives
    :class:`VectorOps` for the shared plumbing (homophily-mask caching)
    that all tiers go through.
    """
    if tier == "numba" and NumbaOps is not None:
        return NumbaOps
    return VectorOps
