"""Alternative interestingness metrics (Section VII, Eqns. 10–14).

The paper's framework accepts any metric expressible through the three
supports ``supp(l -w-> r)``, ``supp(l ∧ w)`` and ``supp(r)``:

* ``laplace``            — Eqn. (10); anti-monotone, minable by GRMiner
  directly (``rank_by="laplace"``).
* ``gain``               — Eqn. (11); anti-monotone, ``rank_by="gain"``.
* ``piatetsky_shapiro``  — Eqn. (12); *not* anti-monotone in the RHS.
* ``conviction``         — Eqn. (13); not anti-monotone.
* ``lift``               — Eqn. (14); not anti-monotone.

For the last three, "the top-k GRs have to be found in a post-processing
step after finding all the GRs satisfying the threshold on support" —
:class:`AlternativeMetricMiner` implements exactly that: a support-only
sweep (BL2-style), then metric evaluation with ``supp(r)`` counted once
per distinct RHS, then threshold/generality/top-k selection.

All metric functions take *relative* supports in ``[0, 1]``; the
conversion from the paper's mixed absolute/relative notation is noted on
each function.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

from ..data.network import SocialNetwork
from .descriptors import GR, Descriptor
from .kernels import gain_counts, laplace_counts
from .metrics import GRMetrics, MetricEngine
from .miner import GRMiner
from .results import MinedGR, MiningResult

__all__ = [
    "laplace",
    "gain",
    "piatetsky_shapiro",
    "conviction",
    "lift",
    "AlternativeMetrics",
    "AlternativeMetricMiner",
    "evaluate_alternatives",
    "ANTI_MONOTONE_METRICS",
    "POST_PROCESSED_METRICS",
]

#: Metrics GRMiner can push as thresholds (Section VII: "the
#: anti-monotonicity remains valid").
ANTI_MONOTONE_METRICS = ("laplace", "gain")
#: Metrics requiring the support-sweep + post-processing strategy.
POST_PROCESSED_METRICS = ("piatetsky_shapiro", "conviction", "lift")


def laplace(supp: float, supp_lw: float, num_edges: int, k: int = 2) -> float:
    """Laplace accuracy, Eqn. (10), on absolute counts.

    ``(|E(l∧w∧r)| + 1) / (|E(l∧w)| + k)`` with integer ``k > 1``.
    Delegates to the shared count-level formula in
    :mod:`repro.core.kernels` (the one the miner's kernels evaluate),
    converting the relative supports back to counts.
    """
    if k <= 1:
        raise ValueError("laplace k must be an integer greater than 1")
    return laplace_counts(supp * num_edges, supp_lw * num_edges, k)


def gain(supp: float, supp_lw: float, theta: float = 0.5) -> float:
    """Gain, Eqn. (11): ``supp(l -w-> r) − θ · supp(l ∧ w)`` on relative supports.

    Delegates to :func:`repro.core.kernels.gain_counts` with
    ``num_edges=1``, under which the count-level and relative forms
    coincide exactly (division by one is an IEEE no-op).
    """
    if not 0.0 <= theta <= 1.0:
        raise ValueError("gain theta must be a fraction in [0, 1]")
    return gain_counts(supp, supp_lw, 1, theta)


def piatetsky_shapiro(supp: float, supp_lw: float, supp_r: float) -> float:
    """Piatetsky-Shapiro leverage, Eqn. (12): ``supp − supp(l∧w)·supp(r)``.

    The paper writes ``supp(l∧w) · supp(r) / |E|`` on absolute supports;
    on relative supports the ``|E|`` cancels.
    """
    return supp - supp_lw * supp_r


def conviction(conf: float, supp_r: float) -> float:
    """Conviction, Eqn. (13): ``(1 − supp(r)) / (1 − conf)``.

    Returns ``inf`` for a perfectly confident GR (the standard
    convention for conviction's division by zero).
    """
    if conf >= 1.0:
        return math.inf
    return (1.0 - supp_r) / (1.0 - conf)


def lift(conf: float, supp_r: float) -> float:
    """Lift, Eqn. (14): ``conf / supp(r)``.

    Values above 1 mean the LHS raises the probability of the RHS beyond
    its base rate — the paper's antidote to data skewness like DBLP's
    91% Poor-productivity population.
    """
    if supp_r <= 0.0:
        return 0.0
    return conf / supp_r


@dataclass(frozen=True)
class AlternativeMetrics:
    """All Section VII metrics of one GR, alongside the base metrics."""

    base: GRMetrics
    supp_r: float
    laplace: float
    gain: float
    piatetsky_shapiro: float
    conviction: float
    lift: float

    @classmethod
    def compute(
        cls,
        base: GRMetrics,
        r_count: int,
        laplace_k: int = 2,
        gain_theta: float = 0.5,
    ) -> "AlternativeMetrics":
        num_edges = base.num_edges or 1
        supp_r = r_count / num_edges
        supp_lw = base.lw_count / num_edges
        return cls(
            base=base,
            supp_r=supp_r,
            laplace=laplace(base.support, supp_lw, num_edges, laplace_k),
            gain=gain(base.support, supp_lw, gain_theta),
            piatetsky_shapiro=piatetsky_shapiro(base.support, supp_lw, supp_r),
            conviction=conviction(base.confidence, supp_r),
            lift=lift(base.confidence, supp_r),
        )

    def value(self, metric: str) -> float:
        try:
            return getattr(self, metric)
        except AttributeError:
            raise ValueError(f"unknown metric {metric!r}") from None


class AlternativeMetricMiner:
    """Top-k GRs under a non-anti-monotone Section VII metric.

    Strategy (as prescribed by the paper): mine every GR above
    ``minSupp`` with support-only pruning, compute the metric per GR
    (``supp(r)`` is evaluated once per distinct RHS), then select the
    top k above ``min_score`` with the usual generality rule.

    Parameters
    ----------
    metric:
        One of ``"piatetsky_shapiro"``, ``"conviction"``, ``"lift"``
        (for ``"laplace"``/``"gain"`` prefer ``GRMiner(rank_by=...)``,
        which pushes the threshold; they are accepted here too for
        comparison runs).
    """

    def __init__(
        self,
        network: SocialNetwork,
        metric: str = "lift",
        min_support: int | float = 1,
        min_score: float = 0.0,
        k: int | None = None,
        node_attributes: Sequence[str] | None = None,
        include_trivial: bool = False,
        allow_empty_lhs: bool = False,
        apply_generality: bool = True,
        laplace_k: int = 2,
        gain_theta: float = 0.5,
    ) -> None:
        if metric not in ANTI_MONOTONE_METRICS + POST_PROCESSED_METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        self.network = network
        self.metric = metric
        self.min_support = min_support
        self.min_score = float(min_score)
        self.k = k
        self.node_attributes = node_attributes
        self.include_trivial = include_trivial
        self.allow_empty_lhs = allow_empty_lhs
        self.apply_generality = apply_generality
        self.laplace_k = laplace_k
        self.gain_theta = gain_theta

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        sweep = GRMiner(
            self.network,
            min_support=self.min_support,
            min_score=0.0,
            k=None,
            rank_by="confidence",
            push_topk=False,
            push_score_pruning=False,
            node_attributes=self.node_attributes,
            include_trivial=self.include_trivial,
            allow_empty_lhs=self.allow_empty_lhs,
            apply_generality=False,
        ).mine()

        engine = MetricEngine(self.network)
        r_count_cache: dict[Descriptor, int] = {}

        def r_count(rhs: Descriptor) -> int:
            cached = r_count_cache.get(rhs)
            if cached is None:
                cached = engine.rhs_support_count(rhs)
                r_count_cache[rhs] = cached
            return cached

        qualifying: list[MinedGR] = []
        for mined in sweep:
            alt = AlternativeMetrics.compute(
                mined.metrics,
                r_count(mined.gr.rhs),
                laplace_k=self.laplace_k,
                gain_theta=self.gain_theta,
            )
            score = alt.value(self.metric)
            if score < self.min_score:
                continue
            qualifying.append(MinedGR(gr=mined.gr, metrics=mined.metrics, score=score))

        if self.apply_generality:
            identities = {(m.gr.lhs, m.gr.edge, m.gr.rhs) for m in qualifying}
            results = [
                m
                for m in qualifying
                if not any(
                    (g.lhs, g.edge, g.rhs) in identities for g in m.gr.generalizations()
                )
            ]
        else:
            results = qualifying
        results.sort(key=lambda m: (-m.score, -m.metrics.support_count, m.gr.sort_key()))
        if self.k is not None:
            results = results[: self.k]

        stats = sweep.stats
        stats.candidates = len(qualifying)
        stats.runtime_seconds = time.perf_counter() - start
        return MiningResult(
            grs=results,
            stats=stats,
            params={"metric": self.metric, "k": self.k, "min_score": self.min_score},
        )


def evaluate_alternatives(
    network: SocialNetwork, gr: GR, laplace_k: int = 2, gain_theta: float = 0.5
) -> AlternativeMetrics:
    """Compute every Section VII metric of a single GR."""
    engine = MetricEngine(network)
    base = engine.evaluate(gr)
    return AlternativeMetrics.compute(
        base, engine.rhs_support_count(gr.rhs), laplace_k=laplace_k, gain_theta=gain_theta
    )
