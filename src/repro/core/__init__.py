"""Core GR mining: the paper's primary contribution."""

from .baselines import BL1Miner, BL2Miner, ConfidenceMiner
from .bruteforce import BruteForceMiner, enumerate_all_grs
from .descriptors import GR, Descriptor, gr_from_codes
from .enumeration import Token, dynamic_rhs_order, iter_subsets_sfdf, static_tau
from .interestingness import (
    AlternativeMetricMiner,
    AlternativeMetrics,
    conviction,
    evaluate_alternatives,
    gain,
    laplace,
    lift,
    piatetsky_shapiro,
)
from .kernels import (
    DEFAULT_KERNEL,
    KERNEL_TIERS,
    NUMBA_AVAILABLE,
    kernel_ops,
    resolve_kernel,
)
from .metrics import GRMetrics, MetricEngine
from .miner import GRMiner, MinerConfig, mine_top_k
from .results import MinedGR, MiningResult, MiningStats
from .topk import GeneralityIndex, TopKCollector

__all__ = [
    "AlternativeMetricMiner",
    "AlternativeMetrics",
    "BL1Miner",
    "BL2Miner",
    "BruteForceMiner",
    "ConfidenceMiner",
    "DEFAULT_KERNEL",
    "Descriptor",
    "GR",
    "GRMetrics",
    "GRMiner",
    "GeneralityIndex",
    "KERNEL_TIERS",
    "MetricEngine",
    "MinedGR",
    "MinerConfig",
    "MiningResult",
    "MiningStats",
    "NUMBA_AVAILABLE",
    "Token",
    "TopKCollector",
    "conviction",
    "dynamic_rhs_order",
    "enumerate_all_grs",
    "evaluate_alternatives",
    "gain",
    "gr_from_codes",
    "iter_subsets_sfdf",
    "kernel_ops",
    "laplace",
    "lift",
    "mine_top_k",
    "piatetsky_shapiro",
    "resolve_kernel",
    "static_tau",
]
