"""Homophily-attribute identification (Section III-B's prerequisite).

The paper assumes the homophily designation is given, noting that
"some existing works, like [27], studied the methods to identify
homophily attributes" — Traud, Mucha & Porter's Facebook study, which
measures the propensity of same-value pairs to form ties.  This module
implements the two standard measurements so the prerequisite can be
computed rather than guessed:

* :func:`attribute_assortativity` — Newman's categorical assortativity
  coefficient of the edge mixing matrix;
* :func:`same_value_propensity` — observed same-value edge rate divided
  by the rate expected if endpoints were independent.

:func:`suggest_homophily_attributes` turns either measurement into a
designation usable by :meth:`SocialNetwork.with_homophily`.
"""

from __future__ import annotations

import numpy as np

from ..data.network import SocialNetwork

__all__ = [
    "attribute_assortativity",
    "same_value_propensity",
    "homophily_report",
    "suggest_homophily_attributes",
]


def _mixing_matrix(network: SocialNetwork, attr: str) -> np.ndarray:
    """Edge mixing matrix over non-null endpoint values, normalized."""
    domain = network.schema.node_attribute(attr).domain_size
    src = network.source_values(attr)
    dst = network.dest_values(attr)
    valid = (src > 0) & (dst > 0)
    if not valid.any():
        return np.zeros((domain, domain))
    matrix = np.zeros((domain, domain), dtype=np.float64)
    np.add.at(matrix, (src[valid] - 1, dst[valid] - 1), 1.0)
    return matrix / matrix.sum()


def attribute_assortativity(network: SocialNetwork, attr: str) -> float:
    """Newman's assortativity coefficient for a categorical attribute.

    ``r = (Σᵢ eᵢᵢ − Σᵢ aᵢ bᵢ) / (1 − Σᵢ aᵢ bᵢ)`` where ``e`` is the
    normalized mixing matrix and ``a``/``b`` its marginals.  1 means
    perfect homophily, 0 random mixing, negative disassortativity.
    """
    e = _mixing_matrix(network, attr)
    if e.sum() == 0:
        return 0.0
    a = e.sum(axis=1)
    b = e.sum(axis=0)
    expected = float(a @ b)
    trace = float(np.trace(e))
    if expected >= 1.0:
        # Degenerate single-value attribute: mixing cannot deviate.
        return 0.0
    return (trace - expected) / (1.0 - expected)


def same_value_propensity(network: SocialNetwork, attr: str) -> float:
    """Observed same-value edge rate over the independence expectation.

    Values above 1 mean same-value ties are over-represented (the
    Traud-Mucha-Porter propensity); 1 means no effect.
    """
    e = _mixing_matrix(network, attr)
    if e.sum() == 0:
        return 1.0
    a = e.sum(axis=1)
    b = e.sum(axis=0)
    expected = float(a @ b)
    if expected == 0.0:
        return 1.0
    return float(np.trace(e)) / expected


def homophily_report(network: SocialNetwork) -> dict[str, dict[str, float]]:
    """Assortativity and propensity for every node attribute."""
    return {
        attr.name: {
            "assortativity": attribute_assortativity(network, attr.name),
            "propensity": same_value_propensity(network, attr.name),
        }
        for attr in network.schema.node_attributes
    }


def suggest_homophily_attributes(
    network: SocialNetwork,
    min_assortativity: float = 0.1,
) -> tuple[str, ...]:
    """Node attributes whose assortativity exceeds the threshold.

    The returned tuple can be fed to
    :meth:`SocialNetwork.with_homophily` to derive a network whose
    schema carries a data-driven homophily designation.
    """
    return tuple(
        attr.name
        for attr in network.schema.node_attributes
        if attribute_assortativity(network, attr.name) >= min_assortativity
    )
