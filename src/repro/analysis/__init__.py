"""Analysis workflows: hypothesis cycling, homophily identification, reports."""

from .homophily import (
    attribute_assortativity,
    homophily_report,
    same_value_propensity,
    suggest_homophily_attributes,
)
from .hypothesis import Hypothesis, HypothesisExplorer
from .summary import (
    format_result,
    format_table2,
    result_rows,
    result_to_csv,
    result_to_json,
)

__all__ = [
    "Hypothesis",
    "HypothesisExplorer",
    "attribute_assortativity",
    "format_result",
    "format_table2",
    "homophily_report",
    "result_rows",
    "result_to_csv",
    "result_to_json",
    "same_value_propensity",
    "suggest_homophily_attributes",
]
