"""Report formatting and export: Table II comparisons, CSV/JSON results."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence

from ..core.results import MinedGR, MiningResult

__all__ = [
    "format_result",
    "format_table2",
    "result_rows",
    "result_to_csv",
    "result_to_json",
]


def result_rows(result: MiningResult | Iterable[MinedGR]) -> list[dict[str, object]]:
    """Flatten a mining result into row dicts (for CSV output or tests)."""
    rows = []
    for i, mined in enumerate(result, start=1):
        m = mined.metrics
        rows.append(
            {
                "rank": i,
                "gr": str(mined.gr),
                "score": mined.score,
                "nhp": m.nhp,
                "confidence": m.confidence,
                "support_count": m.support_count,
                "support": m.support,
                "beta": ",".join(m.beta),
            }
        )
    return rows


def result_to_csv(result: MiningResult | Iterable[MinedGR], path: str | Path) -> Path:
    """Write a mining result to CSV (one row per GR, metric columns)."""
    path = Path(path)
    rows = result_rows(result)
    fieldnames = (
        list(rows[0].keys())
        if rows
        else ["rank", "gr", "score", "nhp", "confidence", "support_count", "support", "beta"]
    )
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def result_to_json(result: MiningResult | Iterable[MinedGR], path: str | Path) -> Path:
    """Write a mining result to JSON, including descriptor structure.

    Each entry carries both the canonical string and the parsed
    ``lhs`` / ``edge`` / ``rhs`` condition dicts, so downstream tools
    need not re-parse the GR syntax.
    """
    path = Path(path)
    entries = []
    for i, mined in enumerate(result, start=1):
        m = mined.metrics
        entries.append(
            {
                "rank": i,
                "gr": str(mined.gr),
                "lhs": mined.gr.lhs.as_dict(),
                "edge": mined.gr.edge.as_dict(),
                "rhs": mined.gr.rhs.as_dict(),
                "score": mined.score,
                "nhp": m.nhp,
                "confidence": m.confidence,
                "support_count": m.support_count,
                "support": m.support,
                "lw_count": m.lw_count,
                "homophily_count": m.homophily_count,
                "beta": list(m.beta),
            }
        )
    path.write_text(json.dumps(entries, indent=2))
    return path


def format_result(
    result: MiningResult | Iterable[MinedGR], title: str = "", limit: int | None = None
) -> str:
    """Human-readable ranked listing of mined GRs."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    entries = list(result)
    if limit is not None:
        entries = entries[:limit]
    if not entries:
        lines.append("(no GRs)")
    for i, mined in enumerate(entries, start=1):
        m = mined.metrics
        lines.append(
            f"{i:3d}. {mined.gr}\n"
            f"     nhp = {m.nhp:6.1%}; supp = {m.support_count}"
            f"  (conf = {m.confidence:.1%})"
        )
    return "\n".join(lines)


def format_table2(
    nhp_result: MiningResult | Sequence[MinedGR],
    conf_result: MiningResult | Sequence[MinedGR],
    rows: int = 5,
    title: str = "Top GRs ranked by nhp vs conf",
) -> str:
    """Side-by-side comparison in the shape of the paper's Table II.

    Left column: top GRs by non-homophily preference (with their conf
    in parentheses, as the paper prints).  Right column: top GRs by
    standard confidence.
    """
    nhp_list = list(nhp_result)[:rows]
    conf_list = list(conf_result)[:rows]

    def nhp_block(i: int) -> list[str]:
        if i >= len(nhp_list):
            return ["", "", ""]
        m = nhp_list[i]
        return [
            str(m.gr),
            f"nhp = {m.metrics.nhp:.1%}; supp = {m.metrics.support_count}",
            f"(conf = {m.metrics.confidence:.1%})",
        ]

    def conf_block(i: int) -> list[str]:
        if i >= len(conf_list):
            return ["", "", ""]
        m = conf_list[i]
        return [
            str(m.gr),
            f"conf = {m.metrics.confidence:.1%}; supp = {m.metrics.support_count}",
            "",
        ]

    width = max(
        [40] + [len(line) for i in range(rows) for line in nhp_block(i)]
    )
    lines = [title, "=" * (width + 45)]
    lines.append(f"{'Ranked by nhp':<{width}} | Ranked by conf")
    lines.append("-" * (width + 45))
    for i in range(max(len(nhp_list), len(conf_list))):
        left, right = nhp_block(i), conf_block(i)
        for l_line, r_line in zip(left, right):
            lines.append(f"{l_line:<{width}} | {r_line}")
        lines.append("-" * (width + 45))
    return "\n".join(lines)
