"""The hypothesis-formulation cycle of Remark 3 (Sections VI-B/VI-C).

"The human analyst starts with top-k GRs found, forms new hypothesis
through varying the GRs found, and compares such hypothesis as well as
data distribution. [...] top-k GRs provide an entry point to this cycle."

:class:`HypothesisExplorer` packages that workflow:

* :meth:`~HypothesisExplorer.evaluate` — query supp/conf/nhp of any GR
  (the "queried their nhp and supp from the data" step);
* variation constructors (:meth:`replace_value`, :meth:`add_condition`,
  :meth:`drop_condition`) — the paper's P5 → (G:Male, L:Sexual Partner)
  and P207 → (G:Female, A:25-34) moves;
* :meth:`one_step_variations` — systematic single-edit neighbours of a
  seed GR, ranked by nhp;
* :meth:`compare` — a side-by-side metric table for a set of hypotheses;
* :meth:`value_distribution` — the "quick check on the data (by
  examining the values distribution on the attribute)" used to explain
  D1 and P2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.descriptors import GR, Descriptor
from ..core.metrics import GRMetrics, MetricEngine
from ..data.network import SocialNetwork

__all__ = ["HypothesisExplorer", "Hypothesis"]


@dataclass(frozen=True)
class Hypothesis:
    """A labelled GR with its measured metrics."""

    label: str
    gr: GR
    metrics: GRMetrics

    def __str__(self) -> str:
        m = self.metrics
        return (
            f"{self.label}: {self.gr}  "
            f"nhp={m.nhp:.1%} conf={m.confidence:.1%} supp={m.support_count}"
        )


class HypothesisExplorer:
    """Interactive-style exploration of GR hypotheses on one network."""

    def __init__(self, network: SocialNetwork) -> None:
        self.network = network
        self.schema = network.schema
        self.engine = MetricEngine(network)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, gr: GR, label: str = "") -> Hypothesis:
        """Measure a GR; ``label`` defaults to the GR's canonical form."""
        return Hypothesis(label or str(gr), gr, self.engine.evaluate(gr))

    def compare(self, hypotheses: Iterable[GR | Hypothesis]) -> list[Hypothesis]:
        """Evaluate several GRs and sort by nhp (descending, ties by supp)."""
        evaluated = [
            h if isinstance(h, Hypothesis) else self.evaluate(h) for h in hypotheses
        ]
        evaluated.sort(key=lambda h: (-h.metrics.nhp, -h.metrics.support_count))
        return evaluated

    # ------------------------------------------------------------------
    # Variation constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _edit(descriptor: Descriptor, attr: str, value: str | None) -> Descriptor:
        items = tuple((n, v) for n, v in descriptor.items if n != attr)
        if value is not None:
            items += ((attr, value),)
        return Descriptor(items)

    def replace_value(self, gr: GR, side: str, attr: str, value: str) -> GR:
        """Replace (or set) a condition's value on ``side`` ∈ {lhs, rhs, edge}.

        The paper's canonical move: turning P207 ``(G:Male, A:25-34) →
        (A:18-24)`` into its ``(G:Female, ...)`` counterpart.
        """
        self._check_value(side, attr, value)
        if side == "lhs":
            return GR(self._edit(gr.lhs, attr, value), gr.rhs, gr.edge)
        if side == "rhs":
            return GR(gr.lhs, self._edit(gr.rhs, attr, value), gr.edge)
        if side == "edge":
            return GR(gr.lhs, gr.rhs, self._edit(gr.edge, attr, value))
        raise ValueError(f"side must be 'lhs', 'rhs' or 'edge', got {side!r}")

    def add_condition(self, gr: GR, side: str, attr: str, value: str) -> GR:
        """Specialize a GR by one condition (P5 → (G:Male, L:SP) → ...)."""
        if side == "lhs" and attr in gr.lhs or side == "rhs" and attr in gr.rhs:
            raise ValueError(f"{attr!r} already constrained on {side}; use replace_value")
        return self.replace_value(gr, side, attr, value)

    def drop_condition(self, gr: GR, side: str, attr: str) -> GR:
        """Generalize a GR by removing one condition."""
        if side == "lhs":
            return GR(self._edit(gr.lhs, attr, None), gr.rhs, gr.edge)
        if side == "rhs":
            return GR(gr.lhs, self._edit(gr.rhs, attr, None), gr.edge)
        if side == "edge":
            return GR(gr.lhs, gr.rhs, self._edit(gr.edge, attr, None))
        raise ValueError(f"side must be 'lhs', 'rhs' or 'edge', got {side!r}")

    def _check_value(self, side: str, attr: str, value: str) -> None:
        if side in ("lhs", "rhs"):
            self.schema.node_attribute(attr).code(value)
        else:
            self.schema.edge_attribute(attr).code(value)

    # ------------------------------------------------------------------
    # Systematic neighbourhood
    # ------------------------------------------------------------------
    def one_step_variations(
        self, gr: GR, min_support: int = 1, top: int | None = None
    ) -> list[Hypothesis]:
        """All single-value replacements of the seed GR, ranked by nhp.

        Every constrained attribute on either side is swept over its
        other values; variations below ``min_support`` edges are
        dropped.  This mechanizes one round of the Remark 3 cycle.
        """
        variations: list[Hypothesis] = []
        for side, descriptor in (("lhs", gr.lhs), ("rhs", gr.rhs), ("edge", gr.edge)):
            for attr_name, current in descriptor.items:
                attr = (
                    self.schema.node_attribute(attr_name)
                    if side != "edge"
                    else self.schema.edge_attribute(attr_name)
                )
                for value in attr.values:
                    if value == current:
                        continue
                    variant = self.replace_value(gr, side, attr_name, value)
                    hypothesis = self.evaluate(
                        variant, label=f"{side}:{attr_name}={value}"
                    )
                    if hypothesis.metrics.support_count >= min_support:
                        variations.append(hypothesis)
        variations.sort(key=lambda h: (-h.metrics.nhp, -h.metrics.support_count))
        return variations[:top] if top is not None else variations

    # ------------------------------------------------------------------
    # Data distribution probes
    # ------------------------------------------------------------------
    def value_distribution(self, attr: str, over: str = "nodes") -> dict[str, float]:
        """Share of each value of ``attr`` among nodes, edge sources or
        edge destinations (``over`` ∈ {nodes, sources, destinations}).

        The paper's sanity probe: e.g. 91.18% of DBLP authors are Poor,
        which explains D1/D3/D5; Secondary education is 19.54% of Pokec,
        which explains P2.
        """
        attribute = self.schema.node_attribute(attr)
        if over == "nodes":
            codes = self.network.node_column(attr)
        elif over == "sources":
            codes = self.network.source_values(attr)
        elif over == "destinations":
            codes = self.network.dest_values(attr)
        else:
            raise ValueError(f"over must be nodes/sources/destinations, got {over!r}")
        total = codes.size or 1
        counts = np.bincount(codes, minlength=attribute.domain_size + 1)
        return {
            attribute.label(code): counts[code] / total
            for code in range(1, attribute.domain_size + 1)
        }
