"""Shared machinery for the Fig. 4 runtime-comparison benches.

Each Fig. 4 panel sweeps one parameter and times four algorithms:

* ``GRMiner(k)`` — all constraints pushed, including the dynamic top-k
  threshold upgrade;
* ``GRMiner``    — all constraints except top-k;
* ``BL2``        — support-only pruning on the three-table model;
* ``BL1``        — support-only pruning (BUC) on the single table.

:func:`run_series` executes such a sweep and returns the timing rows the
paper plots; :func:`format_series` prints them as an aligned table so a
bench run reproduces the figure's data series verbatim.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

from ..core.baselines import BL1Miner, BL2Miner
from ..core.miner import GRMiner
from ..data.network import SocialNetwork

__all__ = [
    "algorithm_factories",
    "engine_factory",
    "parallel_factory",
    "profile_mining",
    "run_series",
    "format_series",
]

AlgorithmFactory = Callable[..., object]


def engine_factory(engine) -> AlgorithmFactory:
    """Adapt a shared :class:`~repro.engine.MiningEngine` to the bench.

    Drop it into a :func:`run_series` algorithm map next to the one-shot
    factories: every timed ``mine()`` routes through the *same* engine,
    so the row measures the amortized per-query latency (no store
    rebuild, no re-export, no pool respawn) against the cold-start
    contenders.  The engine's own result cache would turn repeat points
    into near-zero rows, so sweeps that revisit parameters should build
    the engine with ``cache_size=0``.
    """

    from ..engine import MineRequest  # deferred: keep bench import light

    class _Bound:
        def __init__(self, request):
            self._request = request

        def mine(self):
            return engine.mine(self._request)

    def make(network: SocialNetwork, **kw):
        if network is not engine.network:
            raise ValueError("engine_factory is bound to the engine's own network")
        kw.setdefault("workers", None if engine.workers == 1 else engine.workers)
        return _Bound(MineRequest.create(**kw))

    return make


def parallel_factory(workers: int) -> AlgorithmFactory:
    """A factory for the sharded multi-process miner at a worker count.

    Drop it into a :func:`run_series` algorithm map (e.g. the scaling
    bench times ``{"GRMiner(k)": ..., "Parallel×4": parallel_factory(4)}``).
    """

    def make(network: SocialNetwork, **kw):
        from ..parallel import ParallelGRMiner  # deferred: keep bench import light

        return ParallelGRMiner(network, workers=workers, **kw)

    return make


def algorithm_factories(
    include_baselines: bool = True, parallel_workers: int | None = None
) -> dict[str, AlgorithmFactory]:
    """The Fig. 4 contenders, name → miner factory.

    Every factory accepts the same keyword arguments as
    :class:`~repro.core.miner.GRMiner` (baselines ignore the push
    flags they exist to disable).  ``parallel_workers`` adds the sharded
    :class:`~repro.parallel.ParallelGRMiner` as an extra contender.
    """

    def grminer_k(network: SocialNetwork, **kw) -> GRMiner:
        return GRMiner(network, push_topk=True, **kw)

    def grminer(network: SocialNetwork, **kw) -> GRMiner:
        return GRMiner(network, push_topk=False, **kw)

    def bl2(network: SocialNetwork, **kw) -> BL2Miner:
        kw.pop("push_topk", None)
        return BL2Miner(network, **kw)

    def bl1(network: SocialNetwork, **kw) -> BL1Miner:
        for flag in ("push_topk", "push_score_pruning", "dynamic_rhs_ordering"):
            kw.pop(flag, None)
        return BL1Miner(network, **kw)

    factories: dict[str, AlgorithmFactory] = {
        "GRMiner(k)": grminer_k,
        "GRMiner": grminer,
    }
    if parallel_workers is not None:
        factories[f"Parallel×{parallel_workers}"] = parallel_factory(parallel_workers)
    if include_baselines:
        factories["BL2"] = bl2
        factories["BL1"] = bl1
    return factories


def profile_mining(miner: GRMiner, out_path=None, top: int = 25):
    """cProfile one branch walk of ``miner``; returns ``(result, text)``.

    Branch planning (and the store-derived caches it fills) runs
    *outside* the profiler, so the profile isolates the enumeration
    itself — the ``mine_branch`` recursion that kernel work targets.
    The raw profile is dumped to ``out_path`` (a ``.pstats`` file
    loadable with :mod:`pstats` or snakeviz) when given; ``text`` holds
    the top-``top`` functions by cumulative time.
    """
    import cProfile
    import io
    import pstats

    miner._begin()
    plan = miner.plan_branches()
    miner._stats.pruned_by_support += plan.pruned_by_support
    profiler = cProfile.Profile()
    profiler.enable()
    for branch in plan.branches:
        miner.mine_branch(plan.tau, branch)
    profiler.disable()

    results = miner._collector.results()
    if miner.k is not None and not miner.push_topk:
        results = results[: miner.k]
    elif miner.k is not None and miner.apply_generality and miner.verify_generality:
        results = miner._verify_generality(results)

    if out_path is not None:
        profiler.dump_stats(str(out_path))
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    from ..core.results import MiningResult

    result = MiningResult(grs=results, stats=miner._stats, params=miner._params())
    return result, buffer.getvalue()


def run_series(
    network: SocialNetwork,
    sweep_name: str,
    sweep_values: Sequence,
    base_params: Mapping,
    algorithms: Mapping[str, AlgorithmFactory] | None = None,
    repeats: int = 1,
) -> list[dict]:
    """Time every algorithm at every sweep point.

    Returns one row per sweep value:
    ``{sweep_name: value, "<alg> (s)": seconds, "<alg> grs": result size}``.
    """
    algorithms = dict(algorithms or algorithm_factories())
    rows: list[dict] = []
    for value in sweep_values:
        row: dict = {sweep_name: value}
        params = dict(base_params)
        params[sweep_name] = value
        for name, factory in algorithms.items():
            best = float("inf")
            found = 0
            for _ in range(max(1, repeats)):
                miner = factory(network, **params)
                start = time.perf_counter()
                result = miner.mine()
                best = min(best, time.perf_counter() - start)
                found = len(result)
            row[f"{name} (s)"] = best
            row[f"{name} grs"] = found
        rows.append(row)
    return rows


def format_series(rows: Sequence[Mapping], title: str = "") -> str:
    """Aligned text table of a :func:`run_series` result."""
    if not rows:
        return title
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(_fmt(row[col])) for row in rows)) for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(col).ljust(widths[col]) for col in columns))
    lines.append("  ".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row[col]).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
