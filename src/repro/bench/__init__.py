"""Benchmark harness shared by the Fig. 4 / Table II regenerators."""

from .harness import run_series, format_series, algorithm_factories

__all__ = ["run_series", "format_series", "algorithm_factories"]
