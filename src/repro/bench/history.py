"""Persisted bench trajectory — append-only history + regression checks.

Every ``benchmarks/bench_*.py`` run routes its result payload through
:func:`record_bench_run`, which does two things:

* writes the **latest snapshot** to ``BENCH_<name>.json`` exactly as the
  benches always did (dashboards and CI artifact consumers keep their
  contract), and
* **appends** one row to ``benchmarks/out/history.jsonl`` — timestamp,
  git sha, the bench's config, and its headline numbers — so local
  re-runs accumulate a trajectory instead of overwriting each other.

A history row::

    {"ts": "2026-08-07T12:00:00+00:00", "git_sha": "0ebf920...",
     "bench": "serve", "config": {"quick": true, "workers": 4},
     "headline": {"urgent_p95_s": {"value": 0.41, "better": "lower"},
                  "throughput_jobs_s": {"value": 52.0, "better": "higher"}}}

Rows are grouped by ``(bench, config)`` — numbers from a ``--quick`` run
never baseline a full run.  :func:`check_regressions` compares each
group's latest row against the **median of its prior runs** (robust to
a single noisy outlier) and flags any headline metric that moved beyond
a tolerance in its bad direction.  ``repro bench-report`` renders the
trajectory and, with ``--check``, exits non-zero on regressions.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import statistics
import subprocess
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "HISTORY_FILENAME",
    "add_history_arguments",
    "check_regressions",
    "format_report",
    "git_sha",
    "load_history",
    "record_bench_run",
]

HISTORY_FILENAME = "history.jsonl"


def git_sha(cwd: str | Path | None = None) -> str:
    """The commit the run measured: ``$GITHUB_SHA`` in CI, else git HEAD,
    else ``"unknown"`` (a checkout-less run still records a row)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def add_history_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--timestamp`` / ``--history`` bench arguments."""
    parser.add_argument(
        "--timestamp",
        default=None,
        help="ISO timestamp recorded in the history row "
        "(default: current UTC time; pin it for reproducible rows)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        help=f"history file to append to (default: <out dir>/{HISTORY_FILENAME})",
    )


def record_bench_run(
    name: str,
    payload: Mapping,
    out_dir: str | Path,
    headline: Mapping[str, Mapping],
    config: Mapping | None = None,
    timestamp: str | None = None,
    history_path: str | Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` (latest snapshot) and append a history row.

    ``headline`` maps metric name to ``{"value": number, "better":
    "lower"|"higher"}`` — the direction is what lets the regression
    check flag a throughput drop and a latency rise with one rule.
    Returns the history path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    snapshot_path = out_dir / f"BENCH_{name}.json"
    snapshot_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    for metric, entry in headline.items():
        if "value" not in entry:
            raise ValueError(f"headline metric {metric!r} has no 'value'")
        if entry.get("better", "lower") not in ("lower", "higher"):
            raise ValueError(f"headline metric {metric!r}: 'better' must be 'lower' or 'higher'")
    row = {
        "ts": timestamp
        or datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(out_dir),
        "bench": name,
        "config": dict(config or {}),
        "headline": {
            metric: {"value": entry["value"], "better": entry.get("better", "lower")}
            for metric, entry in headline.items()
        },
    }
    path = Path(history_path) if history_path is not None else out_dir / HISTORY_FILENAME
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(row, default=str) + "\n")
    return path


def load_history(path: str | Path) -> list[dict]:
    """Parse a ``history.jsonl`` file (missing file -> empty history)."""
    path = Path(path)
    if not path.exists():
        return []
    rows: list[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid history row: {exc}") from None
        if not isinstance(row, dict) or "bench" not in row:
            raise ValueError(f"{path}:{lineno}: history row must be an object with 'bench'")
        rows.append(row)
    return rows


def _group_key(row: Mapping) -> tuple[str, str]:
    return str(row.get("bench")), json.dumps(row.get("config") or {}, sort_keys=True)


def _grouped(rows: Sequence[Mapping]) -> dict[tuple[str, str], list[Mapping]]:
    groups: dict[tuple[str, str], list[Mapping]] = {}
    for row in rows:
        groups.setdefault(_group_key(row), []).append(row)
    return groups


def check_regressions(rows: Sequence[Mapping], tolerance: float = 0.10) -> list[dict]:
    """Flag headline metrics whose latest run regressed beyond ``tolerance``.

    Within each ``(bench, config)`` group the latest row is compared
    against the *median* of all prior rows, per metric and in the
    metric's declared bad direction.  Groups with a single run (the
    fresh-CI case) and metrics with a zero baseline are skipped — there
    is nothing sound to compare against.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    findings: list[dict] = []
    for (bench, config_key), group in _grouped(rows).items():
        if len(group) < 2:
            continue
        latest, prior = group[-1], group[:-1]
        for metric, entry in (latest.get("headline") or {}).items():
            baseline_values = [
                r["headline"][metric]["value"]
                for r in prior
                if metric in (r.get("headline") or {})
            ]
            if not baseline_values:
                continue
            baseline = statistics.median(baseline_values)
            value = entry["value"]
            better = entry.get("better", "lower")
            if baseline == 0:
                continue
            if better == "lower":
                regressed = value > baseline * (1.0 + tolerance)
            else:
                regressed = value < baseline * (1.0 - tolerance)
            if regressed:
                findings.append(
                    {
                        "bench": bench,
                        "config": json.loads(config_key),
                        "metric": metric,
                        "value": value,
                        "baseline": baseline,
                        "ratio": value / baseline,
                        "better": better,
                        "runs": len(group),
                        "ts": latest.get("ts"),
                        "git_sha": latest.get("git_sha"),
                    }
                )
    return findings


def format_report(
    rows: Sequence[Mapping],
    findings: Sequence[Mapping] = (),
    tolerance: float = 0.10,
) -> str:
    """Human-readable trajectory + regression flags for ``bench-report``."""
    if not rows:
        return "no bench history yet"
    flagged = {
        (f["bench"], json.dumps(f["config"], sort_keys=True), f["metric"])
        for f in findings
    }
    lines: list[str] = []
    for (bench, config_key), group in sorted(_grouped(rows).items()):
        config = json.loads(config_key)
        suffix = f"  {config}" if config else ""
        lines.append(f"{bench}{suffix}  ({len(group)} run{'s' if len(group) != 1 else ''})")
        metrics: dict[str, list] = {}
        for row in group:
            for metric, entry in (row.get("headline") or {}).items():
                metrics.setdefault(metric, []).append(entry["value"])
        for metric, values in sorted(metrics.items()):
            trajectory = " -> ".join(_fmt_value(v) for v in values[-6:])
            if len(values) > 6:
                trajectory = "... " + trajectory
            mark = ""
            if (bench, config_key, metric) in flagged:
                finding = next(
                    f
                    for f in findings
                    if (f["bench"], json.dumps(f["config"], sort_keys=True), f["metric"])
                    == (bench, config_key, metric)
                )
                pct = (finding["ratio"] - 1.0) * 100.0
                mark = (
                    f"  ** REGRESSION {pct:+.1f}% vs median "
                    f"{_fmt_value(finding['baseline'])} (tolerance {tolerance:.0%})"
                )
            lines.append(f"  {metric}: {trajectory}{mark}")
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} regression(s) beyond {tolerance:.0%} tolerance")
    return "\n".join(lines)


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
