"""Synthetic Pokec-style social network (Section VI-A substitution).

The paper mines the real Pokec network (1.44M users, 21.1M directed
edges, SNAP).  Offline and at laptop scale we generate a network with
the same six node attributes and the same *qualitative* structure —
strong homophily on Age/Region/Education/Looking-For plus the secondary
(beyond-homophily) preferences reported in Table IIa:

* ``P1`` (L:Chat) → (L:Good Friend)            nhp ≈ 0.695, conf ≈ 0.31
* ``P2`` (E:Basic) → (E:Secondary)             nhp ≈ 0.687, conf ≈ 0.15
* ``P3`` (E:Preschool) → (E:Basic)             nhp ≈ 0.66
* ``P4`` (E:Hardly Any) → (E:Basic)            nhp ≈ 0.65
* ``P5`` (L:Sexual Partner) → (G:Female)       nhp = conf ≈ 0.647,
  with the gender asymmetry of Section VI-B (male seekers 68.1%,
  female seekers 48.8%)
* ``P207`` (G:Male, A:25-34) → (A:18-24)       nhp ≈ 0.508, conf ≈ 0.34
* conf-ranked top GRs are same-region patterns (R:x) → (R:x) with
  conf ≈ 0.65–0.72.

Destination profiles are drawn from explicit conditional matrices (see
``_profile_sampler``), so these conditionals hold by construction up to
sampling noise; EXPERIMENTS.md records measured-vs-paper values.

Attribute domains follow Section VI-A: Gender(3), Age(10 discretized
bands), Region(default 32, scaled down from 188), Education(10),
What-Looking-For(11), Marital-Status(7); homophily attributes are
{Age, Region, Education, Looking-For}.
"""

from __future__ import annotations

import numpy as np

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema
from ._profile_sampler import ProfilePool, draw_conditional, normalize_rows

__all__ = ["pokec_schema", "synthetic_pokec", "POKEC_HOMOPHILY_ATTRIBUTES"]

GENDERS = ("Male", "Female", "Unspecified")
AGE_BANDS = (
    "0-6", "7-13", "14-17", "18-24", "25-34",
    "35-44", "45-54", "55-64", "65-79", "80 or older",
)
EDUCATIONS = (
    "Preschool", "Hardly Any", "Basic", "Training", "Apprentice",
    "Secondary", "College", "Bachelor", "Master", "PhD",
)
LOOKING_FOR = (
    "Friend", "Good Friend", "Chat", "Date", "Sexual Partner",
    "Relationship", "Marriage", "Sport Buddy", "Travel Buddy",
    "Business", "Nothing",
)
MARITAL = ("Single", "Taken", "Married", "Divorced", "Widowed", "Complicated", "Secret")

POKEC_HOMOPHILY_ATTRIBUTES = ("Age", "Region", "Education", "Looking-For")

_G = {name: i for i, name in enumerate(GENDERS)}
_A = {name: i for i, name in enumerate(AGE_BANDS)}
_E = {name: i for i, name in enumerate(EDUCATIONS)}
_L = {name: i for i, name in enumerate(LOOKING_FOR)}


def pokec_schema(num_regions: int = 32) -> Schema:
    """The six-attribute Pokec schema with the paper's homophily setting."""
    regions = tuple(f"Region-{i:02d}" for i in range(1, num_regions + 1))
    return Schema(
        node_attributes=[
            Attribute("Gender", GENDERS),
            Attribute("Age", AGE_BANDS, homophily=True),
            Attribute("Region", regions, homophily=True),
            Attribute("Education", EDUCATIONS, homophily=True),
            Attribute("Looking-For", LOOKING_FOR, homophily=True),
            Attribute("Marital", MARITAL),
        ]
    )


# ----------------------------------------------------------------------
# Marginals (source-node profiles)
# ----------------------------------------------------------------------
def _marginals(num_regions: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
    gender = np.array([0.49, 0.47, 0.04])
    age = np.array([0.01, 0.03, 0.12, 0.30, 0.26, 0.14, 0.08, 0.04, 0.015, 0.005])
    # Zipf-ish region sizes, as in real Pokec where a few regions dominate.
    region = 1.0 / np.arange(1, num_regions + 1) ** 0.7
    education = np.array(
        # Preschool, HardlyAny, Basic, Training, Apprentice,
        # Secondary, College, Bachelor, Master, PhD
        [0.02, 0.025, 0.24, 0.019, 0.11, 0.1954, 0.13, 0.13, 0.10, 0.0306]
    )
    looking = np.array(
        [0.16, 0.14, 0.17, 0.12, 0.13, 0.12, 0.05, 0.04, 0.04, 0.02, 0.01]
    )
    marital = np.array([0.48, 0.20, 0.18, 0.08, 0.02, 0.03, 0.01])
    return {
        "Gender": gender / gender.sum(),
        "Age": age / age.sum(),
        "Region": region / region.sum(),
        "Education": education / education.sum(),
        "Looking-For": looking / looking.sum(),
        "Marital": marital / marital.sum(),
    }


# ----------------------------------------------------------------------
# Conditional matrices (destination profiles)
# ----------------------------------------------------------------------
def _region_conditional(num_regions: int, same: float = 0.68) -> np.ndarray:
    """Strong region homophily: the paper's conf-ranked (R:x)→(R:x) rows."""
    matrix = np.full((num_regions, num_regions), (1.0 - same) / (num_regions - 1))
    np.fill_diagonal(matrix, same)
    return matrix


def _education_conditional(marginal: np.ndarray) -> np.ndarray:
    """Education rows: homophily diagonal plus the P2/P3/P4 preferences.

    Off-diagonal mass is spread proportionally to the *marginal* (damped
    by attribute distance), so destination profiles do not inflate the
    population share of small values like Training.
    """
    n = len(EDUCATIONS)
    matrix = np.zeros((n, n))
    for i in range(n):
        row = np.zeros(n)
        for j in range(n):
            if j != i:
                row[j] = marginal[j] / (1.0 + 0.5 * abs(i - j))
        row *= 0.45 / row.sum()
        row[i] = 0.55
        matrix[i] = row
    # Planted secondary preferences (the shares of the *off-diagonal*
    # mass match the paper's nhp values).
    basic, secondary, preschool, hardly = _E["Basic"], _E["Secondary"], _E["Preschool"], _E["Hardly Any"]
    matrix[basic] = _row_with_preference(
        n, basic, same=0.55, target=secondary, target_share=0.687, weights=marginal
    )
    matrix[preschool] = _row_with_preference(
        n, preschool, same=0.40, target=basic, target_share=0.661, weights=marginal
    )
    matrix[hardly] = _row_with_preference(
        n, hardly, same=0.42, target=basic, target_share=0.65, weights=marginal
    )
    return normalize_rows(matrix)


def _row_with_preference(
    n: int,
    same_index: int,
    same: float,
    target: int,
    target_share: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """A conditional row with P(same) = ``same`` and, of the remaining
    mass, ``target_share`` on ``target`` (this ratio is exactly the nhp
    of the planted single-attribute GR).  The residual mass spreads over
    the other values, uniformly or proportionally to ``weights``."""
    if same_index == target:
        raise ValueError("target must differ from the diagonal")
    row = np.zeros(n)
    row[same_index] = same
    off = 1.0 - same
    row[target] = off * target_share
    rest = off * (1.0 - target_share)
    others = [j for j in range(n) if j not in (same_index, target)]
    if weights is None:
        for j in others:
            row[j] = rest / len(others)
    else:
        total = sum(weights[j] for j in others) or 1.0
        for j in others:
            row[j] = rest * weights[j] / total
    return row


def _looking_conditional() -> np.ndarray:
    """Looking-For rows: P1's Chat → Good Friend preference."""
    n = len(LOOKING_FOR)
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i] = _uniform_with_diagonal(n, i, same=0.45)
    matrix[_L["Chat"]] = _row_with_preference(
        n, _L["Chat"], same=0.556, target=_L["Good Friend"], target_share=0.695
    )
    return normalize_rows(matrix)


def _uniform_with_diagonal(n: int, i: int, same: float) -> np.ndarray:
    row = np.full(n, (1.0 - same) / (n - 1))
    row[i] = same
    return row


def _age_conditional() -> np.ndarray:
    """Age rows (per source gender): P207's younger-partner preference.

    Returns an array of shape ``(num_genders, num_bands, num_bands)``.
    """
    n = len(AGE_BANDS)
    base = np.zeros((n, n))
    for i in range(n):
        row = np.zeros(n)
        for j in range(n):
            row[j] = 1.0 / (1.0 + 2.0 * abs(i - j))
        row[i] = row[i] * 4.0  # same-band homophily
        base[i] = row / row.sum()
    per_gender = np.stack([base, base, base]).copy()
    male, female = _G["Male"], _G["Female"]
    b2534, b1824 = _A["25-34"], _A["18-24"]
    # Males 25-34: of the non-same mass, 50.8% goes to 18-24 (P207).
    per_gender[male, b2534] = _row_with_preference(
        n, b2534, same=0.333, target=b1824, target_share=0.508
    )
    # Females 25-34: the weaker 32.8% counterpart of Section VI-B.
    per_gender[female, b2534] = _row_with_preference(
        n, b2534, same=0.45, target=b1824, target_share=0.328
    )
    return per_gender


def _gender_conditional(marginal: np.ndarray) -> np.ndarray:
    """Gender rows per (source gender, source looking-for).

    Returns shape ``(num_genders, num_looking, num_genders)``.  Encodes
    P5's asymmetry: male sexual-partner seekers reach female profiles
    68.1% of the time, female seekers reach male profiles 48.8%.
    """
    num_g, num_l = len(GENDERS), len(LOOKING_FOR)
    out = np.zeros((num_g, num_l, num_g))
    male, female, unspec = _G["Male"], _G["Female"], _G["Unspecified"]
    sp = _L["Sexual Partner"]
    for g in range(num_g):
        for l in range(num_l):
            out[g, l] = marginal
    # Mild opposite-sex preference on ordinary ties.
    out[male, :, :] = np.array([0.42, 0.54, 0.04])
    out[female, :, :] = np.array([0.52, 0.44, 0.04])
    out[unspec, :, :] = marginal
    # P5's planted rows.
    out[male, sp] = np.array([0.289, 0.681, 0.03])
    out[female, sp] = np.array([0.488, 0.482, 0.03])
    return out


def _looking_marginal_by_gender(base: np.ndarray) -> np.ndarray:
    """Per-gender Looking-For marginals: males seek sexual partners at
    roughly five times the female rate (the P5 asymmetry)."""
    sp = _L["Sexual Partner"]
    out = np.tile(base, (len(GENDERS), 1)).astype(np.float64)
    out[_G["Male"], sp] = 0.22
    out[_G["Female"], sp] = 0.045
    out[_G["Unspecified"], sp] = 0.06
    return out / out.sum(axis=1, keepdims=True)


def _marital_conditional(marginal: np.ndarray) -> np.ndarray:
    """Marital status is non-homophilous: destinations follow a mildly
    single-leaning marginal regardless of the source."""
    n = len(MARITAL)
    row = marginal.copy()
    return np.tile(row, (n, 1))


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def synthetic_pokec(
    num_sources: int = 12_000,
    num_edges: int = 150_000,
    num_regions: int = 32,
    mean_in_degree: float = 8.0,
    seed: int = 20160516,
) -> SocialNetwork:
    """Generate the Pokec-style network.

    Parameters
    ----------
    num_sources:
        Nodes sampled up-front with marginal profiles (edge sources).
    num_edges:
        Directed edges.  Destination nodes are materialized on demand,
        so the final node count exceeds ``num_sources``.
    num_regions:
        Region domain size (the paper's 188 scaled down; must be ≥ 2).
    mean_in_degree:
        Average number of edges landing on each materialized
        destination node.
    seed:
        RNG seed; the default fixes the datasets used by the benches.
    """
    if num_regions < 2:
        raise ValueError("need at least two regions")
    rng = np.random.default_rng(seed)
    schema = pokec_schema(num_regions)
    marginals = _marginals(num_regions, rng)
    order = [a.name for a in schema.node_attributes]

    # --- source nodes -------------------------------------------------
    source_profiles = np.column_stack(
        [rng.choice(len(marginals[name]), size=num_sources, p=marginals[name]) for name in order]
    )
    # Looking-For is drawn per gender: sexual-partner seeking is heavily
    # male in the paper's P5 discussion (supp 392 652 male vs 71 699
    # female hypothesis variations), which is what makes the aggregate
    # (L:Sexual Partner) → (G:Female) land at nhp ≈ 0.647.
    g_col = [a.name for a in schema.node_attributes].index("Gender")
    l_col = [a.name for a in schema.node_attributes].index("Looking-For")
    looking_by_gender = _looking_marginal_by_gender(marginals["Looking-For"])
    for g in range(len(GENDERS)):
        mask = source_profiles[:, g_col] == g
        if mask.any():
            source_profiles[mask, l_col] = rng.choice(
                len(LOOKING_FOR), size=int(mask.sum()), p=looking_by_gender[g]
            )
    pool = ProfilePool(rng, mean_in_degree=mean_in_degree)
    source_ids = pool.add_seed_nodes(source_profiles)

    # --- edges ---------------------------------------------------------
    src_rows = rng.integers(0, num_sources, size=num_edges)
    src = source_ids[src_rows]
    src_profile = source_profiles[src_rows]
    g_idx, a_idx = order.index("Gender"), order.index("Age")
    r_idx, e_idx = order.index("Region"), order.index("Education")
    l_idx, s_idx = order.index("Looking-For"), order.index("Marital")

    dst_profile = np.empty_like(src_profile)
    dst_profile[:, r_idx] = draw_conditional(
        rng, _region_conditional(num_regions), src_profile[:, r_idx]
    )
    dst_profile[:, e_idx] = draw_conditional(
        rng, _education_conditional(marginals["Education"]), src_profile[:, e_idx]
    )
    dst_profile[:, l_idx] = draw_conditional(
        rng, _looking_conditional(), src_profile[:, l_idx]
    )
    age_matrices = _age_conditional()
    gender_matrices = _gender_conditional(marginals["Gender"])
    dst_profile[:, a_idx] = _draw_two_level(
        rng, age_matrices, src_profile[:, g_idx], src_profile[:, a_idx]
    )
    dst_profile[:, g_idx] = _draw_two_level(
        rng, gender_matrices, src_profile[:, g_idx], src_profile[:, l_idx]
    )
    dst_profile[:, s_idx] = draw_conditional(
        rng, _marital_conditional(marginals["Marital"]), src_profile[:, s_idx]
    )

    dst = pool.resolve(dst_profile)

    # --- assemble network ----------------------------------------------
    columns = pool.node_columns(len(order))
    node_codes = {name: columns[j] + 1 for j, name in enumerate(order)}  # 1-based codes
    return SocialNetwork(schema, node_codes, src, dst)


def _draw_two_level(
    rng: np.random.Generator,
    matrices: np.ndarray,
    outer: np.ndarray,
    inner: np.ndarray,
) -> np.ndarray:
    """Draw from ``matrices[outer, inner]`` rows, vectorized per outer value."""
    result = np.empty(outer.shape[0], dtype=np.int64)
    for value in np.unique(outer):
        mask = outer == value
        result[mask] = draw_conditional(rng, matrices[value], inner[mask])
    return result
