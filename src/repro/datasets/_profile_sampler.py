"""Profile-driven edge generation shared by the synthetic generators.

GR metrics (Definitions 2–4) depend *only* on the per-edge joint
distribution of (source profile, edge attributes, destination profile) —
never on the graph topology beyond that.  The Pokec- and DBLP-style
generators therefore:

1. sample source nodes with marginal attribute profiles,
2. draw each edge's *destination profile* from conditional matrices
   (homophily diagonals plus the planted secondary preferences the
   paper reports), and
3. materialize destination profiles into actual nodes, reusing nodes of
   the same profile to obtain realistic in-degrees.

This module provides the vectorized primitives for steps 2–3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["draw_conditional", "ProfilePool", "normalize_rows"]


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Normalize a conditional matrix so every row sums to one."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("conditional matrix must be 2-D")
    if (matrix < 0).any():
        raise ValueError("conditional matrix entries must be non-negative")
    sums = matrix.sum(axis=1, keepdims=True)
    if (sums <= 0).any():
        raise ValueError("every conditional row needs positive mass")
    return matrix / sums


def draw_conditional(
    rng: np.random.Generator, matrix: np.ndarray, given: np.ndarray
) -> np.ndarray:
    """Vectorized draw of one value per row index in ``given``.

    ``matrix[i]`` is the distribution of the output conditioned on input
    value ``i`` (0-based codes).  Uses the inverse-CDF trick: one uniform
    per edge, searched into the per-row cumulative distribution.
    """
    matrix = normalize_rows(matrix)
    cdf = np.cumsum(matrix, axis=1)
    u = rng.random(given.shape[0])
    rows = cdf[given]
    return (rows < u[:, None]).sum(axis=1).astype(np.int64)


class ProfilePool:
    """Materialize drawn destination profiles into node indices.

    Nodes are identified by their full attribute profile (a tuple of
    codes).  When an edge's destination profile arrives, an existing
    node with that profile is reused with probability
    ``1 − 1/mean_in_degree``; otherwise a fresh node is created.  This
    keeps the per-edge profile distribution exactly as drawn while
    producing plausible in-degree spread.
    """

    def __init__(self, rng: np.random.Generator, mean_in_degree: float = 8.0) -> None:
        if mean_in_degree < 1.0:
            raise ValueError("mean_in_degree must be at least 1")
        self._rng = rng
        self._create_probability = 1.0 / mean_in_degree
        self._nodes_by_profile: dict[tuple[int, ...], list[int]] = {}
        self.profiles: list[tuple[int, ...]] = []

    def add_seed_nodes(self, profiles: np.ndarray) -> np.ndarray:
        """Register pre-sampled (source) nodes; returns their indices."""
        indices = np.arange(len(self.profiles), len(self.profiles) + profiles.shape[0])
        for row in profiles:
            profile = tuple(int(v) for v in row)
            self._nodes_by_profile.setdefault(profile, []).append(len(self.profiles))
            self.profiles.append(profile)
        return indices

    def resolve(
        self, profiles: np.ndarray, create_probability: np.ndarray | None = None
    ) -> np.ndarray:
        """Map each drawn profile row to a node index (create or reuse).

        ``create_probability`` optionally overrides the pool-wide
        creation probability per edge — lower values make the matching
        profiles into high-in-degree hubs (e.g. DBLP's productive
        supervisors, who are few but receive many co-author edges).
        """
        out = np.empty(profiles.shape[0], dtype=np.int64)
        if create_probability is None:
            create = self._rng.random(profiles.shape[0]) < self._create_probability
        else:
            create = self._rng.random(profiles.shape[0]) < create_probability
        pick = self._rng.random(profiles.shape[0])
        for i, row in enumerate(profiles):
            profile = tuple(int(v) for v in row)
            bucket = self._nodes_by_profile.get(profile)
            if bucket is None or (create[i] and len(bucket) < 1_000_000):
                index = len(self.profiles)
                self.profiles.append(profile)
                if bucket is None:
                    self._nodes_by_profile[profile] = [index]
                else:
                    bucket.append(index)
                out[i] = index
            else:
                out[i] = bucket[int(pick[i] * len(bucket))]
        return out

    def node_columns(self, num_attributes: int) -> list[np.ndarray]:
        """Column-wise code arrays of every node created so far."""
        array = np.asarray(self.profiles, dtype=np.int64)
        if array.size == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(num_attributes)]
        return [array[:, j].copy() for j in range(num_attributes)]
