"""Generic random attributed networks — a controllable test substrate.

:func:`random_attributed_network` generates a directed network over an
arbitrary schema with a single *homophily strength* knob: with
probability ``homophily_strength`` an edge's destination copies the
source's value on each homophily attribute, otherwise the value is
drawn from the attribute's marginal.  ``null_fraction`` injects null
codes to exercise the miners' null handling.

Used by unit tests, hypothesis property tests (as a seed-driven source
of varied inputs) and the ablation benches.
"""

from __future__ import annotations

import numpy as np

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema

__all__ = ["random_schema", "random_attributed_network"]


def random_schema(
    num_node_attrs: int = 3,
    num_edge_attrs: int = 1,
    max_domain: int = 3,
    num_homophily: int = 1,
    seed: int = 0,
) -> Schema:
    """A small random schema for property tests.

    Attribute names are ``N0, N1, ...`` (nodes) and ``W0, W1, ...``
    (edges); the first ``num_homophily`` node attributes are flagged
    homophilous.  Domain sizes are drawn in ``[2, max_domain]``.
    """
    if num_node_attrs < 1:
        raise ValueError("need at least one node attribute")
    if num_homophily > num_node_attrs:
        raise ValueError("more homophily attributes than node attributes")
    rng = np.random.default_rng(seed)
    node_attrs = [
        Attribute(
            f"N{i}",
            tuple(f"v{j}" for j in range(int(rng.integers(2, max_domain + 1)))),
            homophily=i < num_homophily,
        )
        for i in range(num_node_attrs)
    ]
    edge_attrs = [
        Attribute(
            f"W{i}",
            tuple(f"e{j}" for j in range(int(rng.integers(2, max_domain + 1)))),
        )
        for i in range(num_edge_attrs)
    ]
    return Schema(node_attrs, edge_attrs)


def random_attributed_network(
    schema: Schema | None = None,
    num_nodes: int = 30,
    num_edges: int = 120,
    homophily_strength: float = 0.5,
    null_fraction: float = 0.0,
    seed: int = 0,
) -> SocialNetwork:
    """Generate a random directed network over ``schema``.

    Parameters
    ----------
    schema:
        Defaults to :func:`random_schema` with the same seed.
    homophily_strength:
        Probability that an edge's destination shares the source's value
        on each homophily attribute (applied by rewiring destination
        codes, preserving the marginals of non-homophily attributes).
    null_fraction:
        Fraction of node/edge attribute cells set to the null code 0.
    """
    if not 0.0 <= homophily_strength <= 1.0:
        raise ValueError("homophily_strength must be in [0, 1]")
    if not 0.0 <= null_fraction < 1.0:
        raise ValueError("null_fraction must be in [0, 1)")
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    if schema is None:
        schema = random_schema(seed=seed)

    node_codes: dict[str, np.ndarray] = {}
    for attr in schema.node_attributes:
        codes = rng.integers(1, attr.domain_size + 1, size=num_nodes)
        if null_fraction:
            codes[rng.random(num_nodes) < null_fraction] = 0
        node_codes[attr.name] = codes

    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)

    # Homophily rewiring: for each homophily attribute independently,
    # overwrite a fraction of destinations with a node sharing the
    # source's value (when one exists).
    for attr in schema.node_attributes:
        if not attr.homophily or homophily_strength == 0.0:
            continue
        codes = node_codes[attr.name]
        buckets = {
            value: np.flatnonzero(codes == value) for value in range(1, attr.domain_size + 1)
        }
        rewire = rng.random(num_edges) < homophily_strength
        for e in np.flatnonzero(rewire):
            value = int(codes[src[e]])
            bucket = buckets.get(value)
            if bucket is not None and bucket.size:
                dst[e] = bucket[int(rng.integers(0, bucket.size))]

    edge_codes: dict[str, np.ndarray] = {}
    for attr in schema.edge_attributes:
        codes = rng.integers(1, attr.domain_size + 1, size=num_edges)
        if null_fraction:
            codes[rng.random(num_edges) < null_fraction] = 0
        edge_codes[attr.name] = codes

    return SocialNetwork(schema, node_codes, src, dst, edge_codes)
