"""Datasets: the paper's toy example plus synthetic evaluation workloads."""

from .dblp import AREAS, PRODUCTIVITY, STRENGTH, dblp_schema, synthetic_dblp
from .financial import financial_schema, synthetic_financial
from .pokec import POKEC_HOMOPHILY_ATTRIBUTES, pokec_schema, synthetic_pokec
from .random_graphs import random_attributed_network, random_schema
from .toy import TOY_LINKS, TOY_NODES, toy_dating_network, toy_schema

__all__ = [
    "AREAS",
    "PRODUCTIVITY",
    "POKEC_HOMOPHILY_ATTRIBUTES",
    "STRENGTH",
    "TOY_LINKS",
    "TOY_NODES",
    "dblp_schema",
    "financial_schema",
    "pokec_schema",
    "random_attributed_network",
    "random_schema",
    "synthetic_dblp",
    "synthetic_financial",
    "synthetic_pokec",
    "toy_dating_network",
    "toy_schema",
]
