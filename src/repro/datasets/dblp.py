"""Synthetic DBLP-style co-authorship network (Section VI-A substitution).

The paper uses the Graph-Cube DBLP data: 28 702 authors, 66 832 directed
co-author edges (each undirected collaboration stored as two directed
edges), node attributes Area ∈ {DB, DM, AI, IR} (homophily) and
Productivity ∈ {Poor, Fair, Good, Excellent} (non-homophily, 91.18%
Poor per Section VI-C), plus edge attribute Collaboration-Strength ∈
{occasional, moderate, often}.

The generator plants the Table IIb structure:

* strong within-area collaboration — conf-ranked (A:x)→(A:x) rows at
  ≈ 0.72–0.89;
* supervisor–student skew: most destinations are Poor (D1/D3/D5);
* ``D2``: among *often* collaborations leaving DB authors, the non-DB
  mass is concentrated on DM (nhp ≈ 0.715 at conf ≈ 0.07);
* ``D4``: Excellent authors collaborate disproportionately with DB;
* ``D16``: AI authors of Good productivity lean to DM when leaving AI.

Undirected collaborations are generated once and mirrored (the paper's
convention), so measured conditionals blend the planted rows with their
mirror images; tests assert the qualitative shape with tolerances and
EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

import numpy as np

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema
from ._profile_sampler import ProfilePool, draw_conditional

__all__ = ["dblp_schema", "synthetic_dblp", "AREAS", "PRODUCTIVITY", "STRENGTH"]

AREAS = ("DB", "DM", "AI", "IR")
PRODUCTIVITY = ("Poor", "Fair", "Good", "Excellent")
STRENGTH = ("occasional", "moderate", "often")

_AR = {name: i for i, name in enumerate(AREAS)}
_PR = {name: i for i, name in enumerate(PRODUCTIVITY)}
_ST = {name: i for i, name in enumerate(STRENGTH)}

#: Area shares: DB largest, DM smallest (Section VI-C: "DM has the least
#: proportion among all areas").
AREA_MARGINAL = np.array([0.36, 0.14, 0.31, 0.19])
#: Productivity shares: 91.18% Poor (Section VI-C).
PRODUCTIVITY_MARGINAL = np.array([0.9118, 0.05, 0.028, 0.0102])
#: Collaboration strength shares: most pairs co-author once.
STRENGTH_MARGINAL = np.array([0.72, 0.20, 0.08])


def dblp_schema() -> Schema:
    """Area (homophily) + Productivity (non-homophily) + edge Strength."""
    return Schema(
        node_attributes=[
            Attribute("Area", AREAS, homophily=True),
            Attribute("Productivity", PRODUCTIVITY),
        ],
        edge_attributes=[Attribute("Strength", STRENGTH)],
    )


def _area_conditional() -> np.ndarray:
    """Destination area per (source area, strength, source productivity).

    Shape ``(4 areas, 3 strengths, 4 productivity, 4 areas)``.  Rates
    are tuned for the *post-mirroring* statistics: every undirected link
    contributes both its drawn direction and the reverse, so a planted
    row blends with the column flows it induces (measured values live in
    EXPERIMENTS.md).
    """
    base = {"DB": 0.90, "DM": 0.74, "AI": 0.91, "IR": 0.78}
    out = np.zeros((4, 3, 4, 4))
    for a, area in enumerate(AREAS):
        same = base[area]
        row = np.full(4, (1.0 - same) / 3.0)
        row[a] = same
        out[a, :, :] = row
    db, dm, ai, ir = _AR["DB"], _AR["DM"], _AR["AI"], _AR["IR"]
    often = _ST["often"]
    # D2: *often* collaborations crossing area lines run chiefly along
    # the DB <-> DM axis (the interdisciplinary-DM story of Section
    # VI-C).  Both directions are planted so the mirrors reinforce
    # rather than dilute the pattern.
    out[db, often, :] = _area_row({db: 0.94, dm: 0.04, ai: 0.01, ir: 0.01})
    out[dm, often, :] = _area_row({dm: 0.70, db: 0.27, ai: 0.015, ir: 0.015})
    out[ai, often, :] = _area_row({ai: 0.96, db: 0.02, dm: 0.01, ir: 0.01})
    out[ir, often, :] = _area_row({ir: 0.96, db: 0.02, dm: 0.01, ai: 0.01})
    # D16: AI authors with Good productivity lean to DM when leaving AI.
    good = _PR["Good"]
    out[ai, :, good] = _area_row({ai: 0.62, dm: 0.30, db: 0.04, ir: 0.04})
    return out


def _area_row(shares: dict[int, float]) -> np.ndarray:
    row = np.zeros(4)
    for index, share in shares.items():
        row[index] = share
    return row / row.sum()


def _productivity_conditional() -> np.ndarray:
    """Destination productivity per (source area, destination area).

    Shape ``(4 src areas, 4 dst areas, 4 productivity)``.  The Poor rate
    depends on the *source* area (D1/D5: AI and IR differ), pre-shrunk
    so the mirrored rates land at the paper's values; the non-Poor split
    depends on the *destination* area — Excellent collaborators sit
    mostly in DB, which is what surfaces D4 through the mirrored edges.
    """
    # Post-mirroring rate ≈ (draw rate + seed Poor marginal) / 2.
    poor_rate = {"DB": 0.488, "DM": 0.488, "AI": 0.574, "IR": 0.450}
    non_poor_db = np.array([0.50, 0.26, 0.24])  # Fair, Good, Excellent
    non_poor_other = np.array([0.60, 0.34, 0.06])
    out = np.zeros((4, 4, 4))
    for a, area in enumerate(AREAS):
        poor = poor_rate[area]
        for d in range(4):
            split = non_poor_db if d == _AR["DB"] else non_poor_other
            out[a, d] = np.concatenate([[poor], (1.0 - poor) * split / split.sum()])
    return out


def synthetic_dblp(
    num_authors: int = 28_702,
    num_links: int = 33_416,
    mean_in_degree: float = 3.0,
    seed: int = 20160517,
) -> SocialNetwork:
    """Generate the DBLP-style network (defaults match the paper's scale).

    ``num_links`` undirected collaborations are generated and mirrored,
    yielding ``2 * num_links`` directed edges (66 832 by default).
    """
    rng = np.random.default_rng(seed)
    schema = dblp_schema()

    num_sources = max(2, int(num_authors * 0.6))
    source_profiles = np.column_stack(
        [
            rng.choice(4, size=num_sources, p=AREA_MARGINAL / AREA_MARGINAL.sum()),
            rng.choice(4, size=num_sources, p=PRODUCTIVITY_MARGINAL / PRODUCTIVITY_MARGINAL.sum()),
        ]
    )
    pool = ProfilePool(rng, mean_in_degree=mean_in_degree)
    source_ids = pool.add_seed_nodes(source_profiles)

    src_rows = rng.integers(0, num_sources, size=num_links)
    src = source_ids[src_rows]
    src_area = source_profiles[src_rows, 0]
    src_prod = source_profiles[src_rows, 1]
    strength = rng.choice(3, size=num_links, p=STRENGTH_MARGINAL / STRENGTH_MARGINAL.sum())

    area_matrices = _area_conditional()
    prod_matrices = _productivity_conditional()
    dst_area = np.empty(num_links, dtype=np.int64)
    dst_prod = np.empty(num_links, dtype=np.int64)
    for a in range(4):
        for s in range(3):
            mask = (src_area == a) & (strength == s)
            if not mask.any():
                continue
            dst_area[mask] = draw_conditional(rng, area_matrices[a, s], src_prod[mask])
        # Destination productivity: Poor sources (students) reach Poor
        # co-authors slightly more often than productive sources do —
        # the correlation behind D3 — while the area-level Poor rates
        # (D1/D5) stay at their tuned values.
        for src_is_poor, factor in ((True, 1.03), (False, 0.60)):
            mask_a = (src_area == a) & ((src_prod == _PR["Poor"]) == src_is_poor)
            if not mask_a.any():
                continue
            matrices = prod_matrices[a].copy()
            matrices[:, _PR["Poor"]] *= factor
            dst_prod[mask_a] = draw_conditional(rng, matrices, dst_area[mask_a])

    # Productive authors are few but highly connected (supervisors):
    # give non-Poor destination profiles a much lower node-creation
    # probability, so they become hubs and the *author* marginal stays
    # at the paper's 91% Poor even though ~half the edge endpoints are
    # non-Poor.
    create_probability = np.where(
        dst_prod == _PR["Poor"], 1.0 / mean_in_degree, 1.0 / (mean_in_degree * 8.0)
    )
    dst = pool.resolve(np.column_stack([dst_area, dst_prod]), create_probability)

    columns = pool.node_columns(2)
    node_codes = {"Area": columns[0] + 1, "Productivity": columns[1] + 1}
    directed_src = np.concatenate([src, dst])
    directed_dst = np.concatenate([dst, src])
    edge_codes = {"Strength": np.concatenate([strength + 1, strength + 1])}
    return SocialNetwork(schema, node_codes, directed_src, directed_dst, edge_codes)
