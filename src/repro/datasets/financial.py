"""The financial-promotion network of Example 3.

A customer social network where nodes carry a JOB and the PRODUCT they
bought.  The planted structure mirrors the example's story:

* following homophily, friends of stock-holding lawyers often hold
  Stocks themselves — the trivial GR
  ``(JOB:Lawyer, PRODUCT:Stocks) → (PRODUCT:Stocks)``;
* but *beyond* homophily, the friends who did **not** buy Stocks
  disproportionately bought Bonds — the actionable GR
  ``(JOB:Lawyer, PRODUCT:Stocks) → (PRODUCT:Bonds)`` with high nhp,
  which a promoter can use to push Bonds with a high adoption rate.

Used by the ``financial_promotion.py`` example and integration tests.
"""

from __future__ import annotations

import numpy as np

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema

__all__ = ["financial_schema", "synthetic_financial"]

JOBS = ("Lawyer", "Doctor", "Engineer", "Teacher", "Sales")
PRODUCTS = ("Stocks", "Bonds", "Funds", "Savings", "None")

_J = {name: i + 1 for i, name in enumerate(JOBS)}  # 1-based codes
_P = {name: i + 1 for i, name in enumerate(PRODUCTS)}


def financial_schema() -> Schema:
    """JOB is non-homophilous here; PRODUCT follows homophily (friends
    hold the same products — the effect Example 3 wants to discount)."""
    return Schema(
        node_attributes=[
            Attribute("JOB", JOBS),
            Attribute("PRODUCT", PRODUCTS, homophily=True),
        ]
    )


def synthetic_financial(
    num_nodes: int = 4_000,
    num_edges: int = 24_000,
    bond_preference: float = 0.72,
    seed: int = 7,
) -> SocialNetwork:
    """Generate the Example 3 network.

    ``bond_preference`` is the planted nhp of
    ``(JOB:Lawyer, PRODUCT:Stocks) → (PRODUCT:Bonds)``: among friendship
    edges leaving stock-holding lawyers whose target did *not* buy
    Stocks, this fraction bought Bonds.
    """
    if not 0.0 < bond_preference < 1.0:
        raise ValueError("bond_preference must be a fraction in (0, 1)")
    rng = np.random.default_rng(seed)
    job = rng.choice(len(JOBS), size=num_nodes, p=[0.12, 0.13, 0.25, 0.25, 0.25]) + 1
    product = rng.choice(len(PRODUCTS), size=num_nodes, p=[0.18, 0.17, 0.2, 0.25, 0.2]) + 1

    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)

    # Product homophily: half of all edges connect same-product pairs.
    buckets = {v: np.flatnonzero(product == v) for v in range(1, len(PRODUCTS) + 1)}
    same = rng.random(num_edges) < 0.5
    for e in np.flatnonzero(same):
        bucket = buckets[int(product[src[e]])]
        dst[e] = bucket[int(rng.integers(0, bucket.size))]

    # Planted secondary bond: rewire the non-homophilous part of the
    # edges leaving stock-holding lawyers toward Bonds holders.
    lawyer_stock = (job[src] == _J["Lawyer"]) & (product[src] == _P["Stocks"])
    eligible = lawyer_stock & ~same
    bonds_bucket = buckets[_P["Bonds"]]
    non_stock = np.flatnonzero(product != _P["Stocks"])
    for e in np.flatnonzero(eligible):
        if rng.random() < bond_preference:
            dst[e] = bonds_bucket[int(rng.integers(0, bonds_bucket.size))]
        else:
            # Uniform over non-Stocks holders excluding Bonds bias.
            dst[e] = non_stock[int(rng.integers(0, non_stock.size))]

    return SocialNetwork(
        financial_schema(), {"JOB": job, "PRODUCT": product}, src, dst
    )
