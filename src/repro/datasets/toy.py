"""The toy dating network of Fig. 1 (Section I).

14 individuals with attributes SEX, RACE and EDU, joined by 15 dating
links.  The paper draws the topology; the attribute table (Fig. 1b) is
reproduced verbatim.  The link set below is reconstructed so that every
ground-truth statistic quoted in Examples 1 and 2 holds exactly:

* GR1 ``(SEX:M) → (SEX:F, RACE:Asian)``: 7 directed edges, and 14
  directed edges leave male nodes, so conf = 7/14.
* GR2 ``(SEX:M, RACE:Asian) → (SEX:F, RACE:Asian)``: 0 edges.
* GR3 ``(SEX:F, EDU:Grad) → (SEX:M, EDU:Grad)``: 4 edges out of the 6
  leaving (F, Grad) nodes, so conf = 4/6.
* GR4 ``(SEX:F, EDU:Grad) → (SEX:M, EDU:College)``: 2 edges, conf = 2/6,
  and with EDU homophilous nhp = 2 / (6 − 4) = 1.

The paper quotes supports "out of the 15 links"; links are undirected, so
the stored network has 30 directed edges (the paper's own convention for
undirected ties) and the *absolute* counts above are what our tests
assert.
"""

from __future__ import annotations

from ..data.network import SocialNetwork
from ..data.schema import Attribute, Schema

__all__ = ["toy_schema", "toy_dating_network", "TOY_NODES", "TOY_LINKS"]

#: Fig. 1b verbatim: node id -> (SEX, RACE, EDU).
TOY_NODES: dict[int, dict[str, str]] = {
    1: {"SEX": "F", "RACE": "Asian", "EDU": "Grad"},
    2: {"SEX": "F", "RACE": "Latino", "EDU": "Grad"},
    3: {"SEX": "F", "RACE": "White", "EDU": "Grad"},
    4: {"SEX": "F", "RACE": "Asian", "EDU": "College"},
    5: {"SEX": "F", "RACE": "White", "EDU": "College"},
    6: {"SEX": "F", "RACE": "Asian", "EDU": "High School"},
    7: {"SEX": "F", "RACE": "Latino", "EDU": "High School"},
    8: {"SEX": "M", "RACE": "Asian", "EDU": "Grad"},
    9: {"SEX": "M", "RACE": "Latino", "EDU": "Grad"},
    10: {"SEX": "M", "RACE": "White", "EDU": "Grad"},
    11: {"SEX": "M", "RACE": "Latino", "EDU": "College"},
    12: {"SEX": "M", "RACE": "White", "EDU": "College"},
    13: {"SEX": "M", "RACE": "Asian", "EDU": "High School"},
    14: {"SEX": "M", "RACE": "White", "EDU": "High School"},
}

#: The 15 undirected dating links, reconstructed to satisfy the quoted
#: statistics of Examples 1 and 2 (see module docstring).
TOY_LINKS: tuple[tuple[int, int], ...] = (
    (1, 9),
    (1, 10),
    (2, 8),
    (2, 11),
    (3, 10),
    (3, 12),
    (4, 9),
    (4, 11),
    (4, 12),
    (6, 10),
    (6, 14),
    (5, 8),
    (5, 13),
    (7, 13),
    (5, 7),
)


def toy_schema() -> Schema:
    """Schema of the toy dating network.

    EDU is the homophily attribute (Example 2 assumes it); SEX and RACE
    are non-homophilous — dating can be between any sexes, and Example 1
    treats cross-race preference as the finding, not the expectation.
    """
    return Schema(
        node_attributes=[
            Attribute("SEX", ("F", "M")),
            Attribute("RACE", ("Asian", "Latino", "White")),
            Attribute("EDU", ("High School", "College", "Grad"), homophily=True),
        ],
        edge_attributes=[Attribute("TYPE", ("dates",))],
    )


def toy_dating_network() -> SocialNetwork:
    """Build the Fig. 1 network: 14 nodes, 15 links = 30 directed edges."""
    schema = toy_schema()
    directed = [(u, v, {"TYPE": "dates"}) for u, v in TOY_LINKS]
    network = SocialNetwork.from_records(schema, TOY_NODES, directed)
    return network.with_reciprocal_edges()
