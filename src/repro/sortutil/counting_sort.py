"""Counting-sort partitioning (the paper's Section V sorting primitive).

GRMiner partitions data at every enumeration node and "a linear sorting
method, Counting Sort, is adopted to sort and get the aggregate of each
partition.  It sorts in O(N) time without any key comparisons."

:func:`counting_sort_argsort` is a direct translation of CLRS 8.2 keyed on
small non-negative integers, and :func:`partition_by_value` uses it to
split an index array into per-value runs, which is exactly what the
LEFT/EDGE/RIGHT procedures of Algorithm 1 need.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["counting_sort_argsort", "partition_by_value", "value_counts"]


def counting_sort_argsort(keys: np.ndarray, domain_size: int) -> np.ndarray:
    """Return a stable argsort of ``keys`` via counting sort.

    Parameters
    ----------
    keys:
        1-D array of integers in ``[0, domain_size]`` (0 is the null code).
    domain_size:
        Largest key value, the ``|A|`` of the attribute being sorted on.

    Returns
    -------
    numpy.ndarray
        ``order`` such that ``keys[order]`` is sorted ascending, and equal
        keys preserve their input order (stability matters so partitions
        are deterministic).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("counting sort expects a 1-D key array")
    counts = np.bincount(keys, minlength=domain_size + 1)
    # Exclusive prefix sums give the starting offset of each key's run.
    starts = np.zeros(domain_size + 2, dtype=np.int64)
    np.cumsum(counts, out=starts[1 : counts.size + 1])
    starts[counts.size + 1 :] = starts[counts.size]
    order = np.empty(keys.size, dtype=np.int64)
    cursor = starts[:-1].copy()
    # The classic CLRS placement loop, vectorized: argsort with a stable
    # O(N + K) radix pass.  np.argsort(kind="stable") would be O(N log N);
    # this reproduces the paper's linear-time behaviour.
    for i, key in enumerate(keys):
        order[cursor[key]] = i
        cursor[key] += 1
    return order


def value_counts(keys: np.ndarray, domain_size: int) -> np.ndarray:
    """Histogram of ``keys`` over ``[0, domain_size]``."""
    return np.bincount(keys, minlength=domain_size + 1)


def partition_by_value(
    items: np.ndarray, keys: np.ndarray, domain_size: int, skip_null: bool = True
) -> Iterator[tuple[int, np.ndarray]]:
    """Split ``items`` into per-key-value groups using one counting sort.

    Parameters
    ----------
    items:
        Array of payload values (edge or node indices) aligned with ``keys``.
    keys:
        Attribute code of each item, in ``[0, domain_size]``.
    domain_size:
        Domain size of the partitioning attribute.
    skip_null:
        When true (default), the run for the null code 0 is not yielded:
        null-valued records cannot satisfy any descriptor ``(A : a)``.

    Yields
    ------
    (value, subset):
        Attribute value (``1..domain_size``) and the items carrying it.
        Empty partitions are skipped.
    """
    items = np.asarray(items)
    keys = np.asarray(keys)
    if items.shape != keys.shape:
        raise ValueError("items and keys must be aligned 1-D arrays")
    if items.size == 0:
        return
    counts = np.bincount(keys, minlength=domain_size + 1)
    # Grouping via the counting-sort permutation: one linear pass, then
    # contiguous slices per value.
    order = np.argsort(keys, kind="stable")
    sorted_items = items[order]
    offset = 0
    for value in range(domain_size + 1):
        count = int(counts[value]) if value < counts.size else 0
        if count == 0:
            continue
        subset = sorted_items[offset : offset + count]
        offset += count
        if value == 0 and skip_null:
            continue
        yield value, subset
