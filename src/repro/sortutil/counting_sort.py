"""Counting-sort partitioning (the paper's Section V sorting primitive).

GRMiner partitions data at every enumeration node and "a linear sorting
method, Counting Sort, is adopted to sort and get the aggregate of each
partition.  It sorts in O(N) time without any key comparisons."

:func:`counting_sort_argsort` computes the stable counting-sort
permutation of CLRS 8.2 keyed on small non-negative integers, and
:func:`partition_by_value` uses it to split an index array into
per-value runs, which is exactly what the LEFT/EDGE/RIGHT procedures of
Algorithm 1 need.

The placement pass runs inside numpy: keys are narrowed to the smallest
unsigned dtype covering the domain and handed to ``np.argsort`` with
``kind="stable"``, which for integer dtypes is an LSB radix sort — i.e.
successive counting-sort passes (one pass for domains below 2^8, two
below 2^16).  The permutation is bit-identical to the classic
per-element placement loop (kept as :func:`_placement_loop_argsort`, the
reference the regression tests compare against), because a stable sort
permutation is unique.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["counting_sort_argsort", "partition_by_value", "value_counts"]


def _key_dtype(domain_size: int) -> np.dtype:
    """Smallest unsigned dtype holding codes in ``[0, domain_size]``."""
    if domain_size < 1 << 8:
        return np.dtype(np.uint8)
    if domain_size < 1 << 16:
        return np.dtype(np.uint16)
    if domain_size < 1 << 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def _placement_loop_argsort(keys: np.ndarray, domain_size: int) -> np.ndarray:
    """Reference CLRS 8.2 placement loop (used by the regression tests)."""
    counts = np.bincount(keys, minlength=domain_size + 1)
    starts = np.zeros(domain_size + 2, dtype=np.int64)
    np.cumsum(counts, out=starts[1 : counts.size + 1])
    starts[counts.size + 1 :] = starts[counts.size]
    order = np.empty(keys.size, dtype=np.int64)
    cursor = starts[:-1].copy()
    for i, key in enumerate(keys):
        order[cursor[key]] = i
        cursor[key] += 1
    return order


def counting_sort_argsort(keys: np.ndarray, domain_size: int) -> np.ndarray:
    """Return a stable argsort of ``keys`` via counting sort.

    Parameters
    ----------
    keys:
        1-D array of integers in ``[0, domain_size]`` (0 is the null code).
    domain_size:
        Largest key value, the ``|A|`` of the attribute being sorted on.

    Returns
    -------
    numpy.ndarray
        ``order`` such that ``keys[order]`` is sorted ascending, and equal
        keys preserve their input order (stability matters so partitions
        are deterministic).
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("counting sort expects a 1-D key array")
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if int(keys.min()) < 0 or int(keys.max()) > domain_size:
        raise ValueError(
            f"counting sort keys must lie in [0, {domain_size}]"
        )
    narrow = keys.astype(_key_dtype(domain_size), copy=False)
    order = np.argsort(narrow, kind="stable")
    return order.astype(np.int64, copy=False)


def value_counts(keys: np.ndarray, domain_size: int) -> np.ndarray:
    """Histogram of ``keys`` over ``[0, domain_size]``."""
    return np.bincount(keys, minlength=domain_size + 1)


def partition_by_value(
    items: np.ndarray, keys: np.ndarray, domain_size: int, skip_null: bool = True
) -> Iterator[tuple[int, np.ndarray]]:
    """Split ``items`` into per-key-value groups using one counting sort.

    Parameters
    ----------
    items:
        Array of payload values (edge or node indices) aligned with ``keys``.
    keys:
        Attribute code of each item, in ``[0, domain_size]``.
    domain_size:
        Domain size of the partitioning attribute.
    skip_null:
        When true (default), the run for the null code 0 is not yielded:
        null-valued records cannot satisfy any descriptor ``(A : a)``.

    Yields
    ------
    (value, subset):
        Attribute value (``1..domain_size``) and the items carrying it.
        Empty partitions are skipped.
    """
    items = np.asarray(items)
    keys = np.asarray(keys)
    if items.shape != keys.shape:
        raise ValueError("items and keys must be aligned 1-D arrays")
    if items.size == 0:
        return
    counts = value_counts(keys, domain_size)
    # Grouping via the counting-sort permutation: one linear pass, then
    # contiguous slices per value sized by the counting-sort histogram.
    order = counting_sort_argsort(keys, domain_size)
    sorted_items = items[order]
    offset = 0
    for value in range(domain_size + 1):
        count = int(counts[value])
        if count == 0:
            continue
        subset = sorted_items[offset : offset + count]
        offset += count
        if value == 0 and skip_null:
            continue
        yield value, subset
