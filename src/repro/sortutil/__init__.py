"""Linear-time sorting/partitioning primitives (CLRS 8.2 counting sort)."""

from .counting_sort import counting_sort_argsort, partition_by_value, value_counts

__all__ = ["counting_sort_argsort", "partition_by_value", "value_counts"]
