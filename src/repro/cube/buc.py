"""Bottom-Up Computation (BUC) of sparse and iceberg cubes.

Beyer & Ramakrishnan's BUC algorithm [23] computes every group-by cell of
a relational table whose count meets a minimum support, by recursively
partitioning the input on one dimension at a time and skipping partitions
below the threshold (support anti-monotonicity).

The paper's baselines BL1 and BL2 (Section VI-D) are BUC runs over,
respectively, the single joined edge table and the three-table compact
model, with top-k GR selection as a post-processing step.  This module
implements generic BUC over named integer columns; the baselines adapt
its cells into GRs.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..sortutil.counting_sort import partition_by_value

__all__ = ["BUC", "Cell", "iceberg_cube"]

#: A cube cell identity: sorted (column, value-code) pairs.
Cell = tuple[tuple[str, int], ...]


class BUC:
    """Iceberg cube over a columnar integer table.

    Parameters
    ----------
    columns:
        Mapping from column name to a 1-D integer code array; all arrays
        share the same length.  Code 0 is null and never forms a cell.
    domain_sizes:
        Mapping from column name to the column's largest code.
    min_count:
        The iceberg threshold: cells with fewer rows are not produced
        (and, by anti-monotonicity, not refined).
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        domain_sizes: Mapping[str, int],
        min_count: int,
    ) -> None:
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        missing = set(columns) - set(domain_sizes)
        if missing:
            raise ValueError(f"domain sizes missing for columns: {sorted(missing)}")
        self.columns = dict(columns)
        self.domain_sizes = dict(domain_sizes)
        self.min_count = min_count
        self.column_order: tuple[str, ...] = tuple(columns)
        lengths = {col.shape[0] for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have mixed lengths: {lengths}")
        self._num_rows = lengths.pop() if lengths else 0

    def compute(
        self, on_cell: Callable[[Cell, int], None] | None = None
    ) -> dict[Cell, int]:
        """Run BUC; returns ``{cell: count}`` for every frequent cell.

        ``on_cell`` is invoked for each frequent cell as it is produced
        (useful for streaming consumers); the returned dict always holds
        the full result, including the empty cell (count = number of
        rows) when the table itself is frequent.
        """
        cells: dict[Cell, int] = {}

        def emit(cell: Cell, count: int) -> None:
            cells[cell] = count
            if on_cell is not None:
                on_cell(cell, count)

        rows = np.arange(self._num_rows, dtype=np.int64)
        if self._num_rows >= self.min_count:
            emit((), self._num_rows)
            self._recurse(rows, 0, (), emit)
        return cells

    def _recurse(
        self,
        rows: np.ndarray,
        dim_start: int,
        cell: Cell,
        emit: Callable[[Cell, int], None],
    ) -> None:
        """Classic BUC recursion: refine on every dimension ≥ ``dim_start``."""
        for d in range(dim_start, len(self.column_order)):
            name = self.column_order[d]
            keys = self.columns[name][rows]
            for value, subset in partition_by_value(rows, keys, self.domain_sizes[name]):
                if subset.size < self.min_count:
                    continue
                child = cell + ((name, value),)
                emit(child, int(subset.size))
                self._recurse(subset, d + 1, child, emit)


def iceberg_cube(
    columns: Mapping[str, np.ndarray],
    domain_sizes: Mapping[str, int],
    min_count: int,
) -> dict[Cell, int]:
    """One-shot convenience wrapper around :class:`BUC`."""
    return BUC(columns, domain_sizes, min_count).compute()


def cell_to_maps(cell: Cell, split: Callable[[str], tuple[str, str]]) -> dict[str, dict[str, int]]:
    """Split a cell into role-keyed assignment maps using ``split(column)``.

    ``split`` returns ``(attribute, role)`` per column name (see
    :func:`repro.data.edgetable.split_column`); the result maps each role
    (``"L"``, ``"W"``, ``"R"``) to its ``{attribute: code}`` assignments.
    """
    maps: dict[str, dict[str, int]] = {"L": {}, "W": {}, "R": {}}
    for column, value in cell:
        attr, role = split(column)
        maps[role][attr] = value
    return maps
