"""Iceberg-cube substrate: the BUC algorithm the paper's baselines use."""

from .buc import BUC, Cell, iceberg_cube

__all__ = ["BUC", "Cell", "iceberg_cube"]
