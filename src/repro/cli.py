"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   Write a synthetic dataset (toy / pokec / dblp / financial)
               to a CSV directory.
``info``       Print a dataset's schema, sizes and homophily report.
``mine``       Run GRMiner on a CSV directory and print the top-k GRs.
``sweep``      Run a parameter grid through one long-lived MiningEngine
               (store built/exported once, one worker fleet, cached
               results) and print the per-combo summary table.
``hub``        Register several named CSV datasets behind one EngineHub
               (one shared fleet, per-network leases, optional
               disk-persisted result cache) and sweep the grid against
               each named network in turn.
``serve``      Serve registered datasets over HTTP through the async
               scheduler (``repro.serve``): request priorities,
               deadlines, cooperative cancellation and weighted-fair
               interleaving of many concurrent clients over one fleet.
``compare``    Print the Table II style nhp-vs-conf comparison.
``homophily``  Suggest homophily attributes from the data.
``bench-report``
               Render the accumulated ``benchmarks/out/history.jsonl``
               trajectory per ``(bench, config)`` group; ``--check``
               exits non-zero when a headline metric of the latest run
               regressed beyond ``--tolerance`` vs the median of its
               prior runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.homophily import homophily_report, suggest_homophily_attributes
from .analysis.summary import format_result, format_table2
from .core.baselines import ConfidenceMiner
from .core.miner import GRMiner
from .data.network import SocialNetwork
from .io.loaders import load_network, save_network

__all__ = ["main", "build_parser"]


def _parse_min_support(text: str) -> int | float:
    """Accept either an absolute count ("50") or a fraction ("0.001")."""
    value = float(text)
    if value >= 1.0 and value == int(value):
        return int(value)
    return value


def _parse_workers(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("--workers must be a positive process count")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mine top-k group relationships beyond homophily (ICDE 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset to CSV")
    gen.add_argument("dataset", choices=("toy", "pokec", "dblp", "financial"))
    gen.add_argument("directory", help="output directory")
    gen.add_argument("--nodes", type=int, default=None, help="source-node count")
    gen.add_argument("--edges", type=int, default=None, help="edge count")
    gen.add_argument("--seed", type=int, default=None)

    info = sub.add_parser("info", help="print dataset statistics")
    info.add_argument("directory")

    mine = sub.add_parser("mine", help="run GRMiner on a CSV dataset")
    _add_mining_arguments(mine)

    sweep = sub.add_parser(
        "sweep", help="run a parameter grid through one MiningEngine"
    )
    sweep.add_argument("directory", help="CSV dataset directory")
    _add_grid_arguments(sweep)
    sweep.add_argument(
        "--homophily", nargs="*", default=None,
        help="override the schema's homophily attributes",
    )
    sweep.add_argument(
        "--attributes", nargs="*", default=None, help="restrict node attributes"
    )

    hub = sub.add_parser(
        "hub", help="serve several named datasets through one EngineHub"
    )
    hub.add_argument(
        "--register",
        action="append",
        required=True,
        metavar="NAME=DIR",
        help="register the CSV dataset in DIR under NAME (repeatable)",
    )
    hub.add_argument(
        "--mine",
        action="append",
        default=None,
        metavar="NAME",
        help="mine the parameter grid against this network; repeat to "
        "interleave traffic (default: every registered network once)",
    )
    _add_grid_arguments(hub)
    _add_hub_resource_arguments(hub)

    serve = sub.add_parser(
        "serve", help="serve datasets over HTTP through the async scheduler"
    )
    serve.add_argument(
        "--register",
        action="append",
        required=True,
        metavar="NAME=DIR",
        help="register the CSV dataset in DIR under NAME (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port (0 = any)")
    serve.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        metavar="N",
        help="shared fleet size (default: cpu count)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="fleet slots the scheduler keeps occupied (default: fleet size)",
    )
    serve.add_argument(
        "--weight",
        action="append",
        default=None,
        metavar="NAME=W",
        help="fair-share weight for a network (default 1.0; repeatable)",
    )
    serve.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable single-flight dedup of identical concurrent jobs",
    )
    serve.add_argument(
        "--no-warm-start",
        action="store_true",
        help="default sweep batches to cold floors (a batch passing "
        '"warm_start": true still opts in)',
    )
    _add_hub_resource_arguments(serve)

    compare = sub.add_parser("compare", help="Table II style nhp-vs-conf comparison")
    _add_mining_arguments(compare)
    compare.add_argument("--rows", type=int, default=5)

    hom = sub.add_parser("homophily", help="suggest homophily attributes")
    hom.add_argument("directory")
    hom.add_argument("--threshold", type=float, default=0.1)

    report = sub.add_parser(
        "bench-report", help="render the bench history trajectory"
    )
    report.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="history.jsonl to read (default: benchmarks/out/history.jsonl)",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the latest run of any (bench, config) "
        "group regressed beyond the tolerance",
    )
    report.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed fractional move in a metric's bad direction before "
        "it counts as a regression (default 0.10)",
    )
    return parser


def _add_hub_resource_arguments(parser: argparse.ArgumentParser) -> None:
    """Cache/lease resource options shared by ``hub`` and ``serve``."""
    parser.add_argument(
        "--disk-cache",
        default=None,
        metavar="PATH",
        help="persist the result cache to this sqlite file — a restarted "
        "hub answers repeated queries without re-mining",
    )
    parser.add_argument(
        "--disk-cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-used disk-cache rows over this total",
    )
    parser.add_argument(
        "--disk-cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire disk-cache rows not served within this window",
    )
    parser.add_argument(
        "--lease-budget-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-served store exports over this total",
    )


def _parse_registrations(specs: Sequence[str]) -> list[tuple[str, str]]:
    registrations: list[tuple[str, str]] = []
    for spec in specs:
        name, sep, directory = spec.partition("=")
        if not sep or not name or not directory:
            raise SystemExit(f"--register expects NAME=DIR, got {spec!r}")
        registrations.append((name, directory))
    return registrations


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """The parameter-grid options shared by ``sweep`` and ``hub``."""
    parser.add_argument(
        "-k", type=int, nargs="+", default=[10], help="result sizes to sweep"
    )
    parser.add_argument(
        "--min-support",
        type=_parse_min_support,
        nargs="+",
        default=[1],
        help="support thresholds to sweep (absolute >=1 or fraction <1)",
    )
    parser.add_argument(
        "--min-nhp", type=float, nargs="+", default=[0.5], help="score thresholds"
    )
    parser.add_argument(
        "--rank-by",
        choices=("nhp", "confidence", "laplace", "gain"),
        nargs="+",
        default=["nhp"],
        help="ranking metrics to sweep",
    )
    parser.add_argument(
        "--kernel",
        choices=("reference", "vector", "numba"),
        default=None,
        help="candidate-evaluation kernel tier (execution detail: the "
        "answer and the result cache key are tier-independent)",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        metavar="N",
        help="serve every combo through a shared N-process fleet; "
        "default is the serial path",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the per-query rows and engine/hub stats as JSON",
    )


def _result_cached(result, mined_ids: set[int]) -> bool:
    """Was this sweep row served without mining?

    Two mechanisms: the engine tags cache-hit *snapshots* with
    ``params["cached"]``, while in-batch duplicates (two grid points
    canonicalizing to one key inside a single ``sweep()`` call) are the
    very same object as their mined sibling — caught by identity.
    Reporting the sibling's runtime again would double-count wall time.
    """
    cached = id(result) in mined_ids or bool(result.params.get("cached"))
    mined_ids.add(id(result))
    return cached


def _add_mining_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("directory", help="CSV dataset directory")
    parser.add_argument("-k", type=int, default=10, help="result size (top-k)")
    parser.add_argument(
        "--min-support",
        type=_parse_min_support,
        default=1,
        help="absolute count (>=1) or fraction (<1) of |E|",
    )
    parser.add_argument("--min-nhp", type=float, default=0.5)
    parser.add_argument(
        "--rank-by", choices=("nhp", "confidence", "laplace", "gain"), default="nhp"
    )
    parser.add_argument(
        "--kernel",
        choices=("reference", "vector", "numba"),
        default=None,
        help="candidate-evaluation kernel tier (default: vector; the "
        "answer never depends on the tier)",
    )
    parser.add_argument(
        "--homophily",
        nargs="*",
        default=None,
        help="override the schema's homophily attributes",
    )
    parser.add_argument(
        "--attributes", nargs="*", default=None, help="restrict node attributes"
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=None,
        metavar="N",
        help="mine with N sharded worker processes (repro.parallel); "
        "default is the serial GRMiner",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the result to this path (.csv or .json)",
    )


def _load(directory: str, homophily: Sequence[str] | None) -> SocialNetwork:
    network = load_network(directory)
    if homophily is not None:
        network = network.with_homophily(homophily)
    return network


def _cmd_generate(args: argparse.Namespace) -> int:
    from .datasets import (
        synthetic_dblp,
        synthetic_financial,
        synthetic_pokec,
        toy_dating_network,
    )

    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.dataset == "toy":
        network = toy_dating_network()
    elif args.dataset == "pokec":
        if args.nodes is not None:
            kwargs["num_sources"] = args.nodes
        if args.edges is not None:
            kwargs["num_edges"] = args.edges
        network = synthetic_pokec(**kwargs)
    elif args.dataset == "dblp":
        if args.nodes is not None:
            kwargs["num_authors"] = args.nodes
        if args.edges is not None:
            kwargs["num_links"] = args.edges // 2
        network = synthetic_dblp(**kwargs)
    else:
        if args.nodes is not None:
            kwargs["num_nodes"] = args.nodes
        if args.edges is not None:
            kwargs["num_edges"] = args.edges
        network = synthetic_financial(**kwargs)
    path = save_network(network, args.directory)
    print(f"wrote {network} to {path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    network = load_network(args.directory)
    print(network)
    print("node attributes:")
    for attr in network.schema.node_attributes:
        flag = " (homophily)" if attr.homophily else ""
        print(f"  {attr.name}{flag}: {attr.domain_size} values")
    for attr in network.schema.edge_attributes:
        print(f"  [edge] {attr.name}: {attr.domain_size} values")
    report = homophily_report(network)
    print("homophily report (assortativity / propensity):")
    for name, stats in report.items():
        print(f"  {name}: {stats['assortativity']:+.3f} / {stats['propensity']:.2f}")
    return 0


def _build_miner(network: SocialNetwork, workers: int | None, **params):
    """Serial GRMiner, or the sharded parallel miner when --workers asks.

    Any ``--workers`` value (including 1) selects ``ParallelGRMiner`` so
    the CLI matches ``mine_top_k(..., workers=N)`` and the output never
    depends on the worker count — ``workers=1`` runs the same shard
    machinery in-process.
    """
    if workers is not None:
        from .parallel import ParallelGRMiner

        return ParallelGRMiner(network, workers=workers, **params)
    return GRMiner(network, **params)


def _cmd_mine(args: argparse.Namespace) -> int:
    network = _load(args.directory, args.homophily)
    params = dict(
        min_support=args.min_support,
        min_score=args.min_nhp,
        k=args.k,
        rank_by=args.rank_by,
        node_attributes=args.attributes,
    )
    if getattr(args, "kernel", None) is not None:
        params["kernel"] = args.kernel
    miner = _build_miner(network, getattr(args, "workers", None), **params)
    result = miner.mine()
    print(format_result(result, title=f"Top-{args.k} GRs by {args.rank_by}"))
    stats = result.stats
    print(
        f"\n[{stats.grs_examined} GRs examined, {stats.candidates} candidates, "
        f"{stats.runtime_seconds:.3f}s]"
    )
    if args.output:
        from .analysis.summary import result_to_csv, result_to_json

        if args.output.endswith(".json"):
            path = result_to_json(result, args.output)
        else:
            path = result_to_csv(result, args.output)
        print(f"wrote {len(result)} GRs to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import itertools

    from .bench.harness import format_series
    from .engine import MineRequest, MiningEngine

    network = _load(args.directory, args.homophily)
    options = {}
    if args.attributes is not None:
        options["node_attributes"] = tuple(args.attributes)
    if args.kernel is not None:
        options["kernel"] = args.kernel
    requests = [
        MineRequest.create(
            k=k,
            min_support=min_support,
            min_nhp=min_nhp,
            rank_by=rank_by,
            workers=args.workers,
            **options,
        )
        for k, min_support, min_nhp, rank_by in itertools.product(
            args.k, args.min_support, args.min_nhp, args.rank_by
        )
    ]
    rows = []
    with MiningEngine(network, workers=args.workers) as engine:
        results = engine.sweep(requests)
        mined: set[int] = set()
        for request, result in zip(requests, results):
            cached = _result_cached(result, mined)
            rows.append(
                {
                    "k": request.k,
                    "minSupp": request.min_support,
                    "minNhp": request.min_nhp,
                    "rank_by": request.rank_by,
                    "grs": len(result),
                    # None (→ JSON null) for empty points; NaN is not
                    # valid strict JSON.
                    "best": result[0].score if len(result) else None,
                    "time (s)": 0.0 if cached else result.stats.runtime_seconds,
                    "cached": cached,
                }
            )
        stats = engine.stats.as_dict()
    print(format_series(rows, title=f"Sweep of {len(requests)} queries — {network}"))
    print(
        f"\n[engine: {stats['exports']} store export(s), "
        f"{stats['pool_spawns']} pool spawn(s), {stats['cache_hits']} cache hit(s) "
        f"across {stats['queries']} queries]"
    )
    if args.json:
        import json

        payload = {"rows": rows, "engine": stats}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_hub(args: argparse.Namespace) -> int:
    import itertools

    from .bench.harness import format_series
    from .engine import EngineHub

    registrations = _parse_registrations(args.register)
    targets = args.mine if args.mine else [name for name, _ in registrations]

    grid = list(
        itertools.product(args.k, args.min_support, args.min_nhp, args.rank_by)
    )
    rows = []
    with EngineHub(
        workers=args.workers,
        disk_cache=args.disk_cache,
        disk_cache_max_bytes=args.disk_cache_max_bytes,
        disk_cache_ttl_seconds=args.disk_cache_ttl,
        lease_budget_bytes=args.lease_budget_bytes,
    ) as hub:
        for name, directory in registrations:
            hub.register(name, load_network(directory))
        from .engine import MineRequest

        options = {} if args.kernel is None else {"kernel": args.kernel}
        requests = [
            MineRequest.create(
                k=k,
                min_support=min_support,
                min_nhp=min_nhp,
                rank_by=rank_by,
                workers=args.workers,
                **options,
            )
            for k, min_support, min_nhp, rank_by in grid
        ]
        for name in targets:
            mined: set[int] = set()
            for request, result in zip(requests, hub.sweep(name, requests)):
                cached = _result_cached(result, mined)
                rows.append(
                    {
                        "network": name,
                        "k": request.k,
                        "minSupp": request.min_support,
                        "minNhp": request.min_nhp,
                        "rank_by": request.rank_by,
                        "grs": len(result),
                        "best": result[0].score if len(result) else None,
                        "time (s)": 0.0 if cached else result.stats.runtime_seconds,
                        "cached": cached,
                    }
                )
        stats = hub.aggregate_stats()
    print(
        format_series(
            rows,
            title=(
                f"Hub sweep: {len(targets)} network visit(s) × {len(grid)} "
                f"grid point(s) over {len(registrations)} registered network(s)"
            ),
        )
    )
    print(
        f"\n[hub: {stats['pool_spawns']} pool spawn(s), {stats['exports']} store "
        f"export(s), {stats['cache_hits']} cache hit(s) across "
        f"{stats['queries']} queries, {stats['lease_evictions']} lease "
        f"eviction(s), {stats['resident_leases']} resident lease(s)]"
    )
    if args.json:
        import json

        payload = {"rows": rows, "hub": stats}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import EngineHub
    from .serve import Scheduler, ServeHTTP

    registrations = _parse_registrations(args.register)
    weights: list[tuple[str, float]] = []
    for spec in args.weight or ():
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise SystemExit(f"--weight expects NAME=W, got {spec!r}")
        try:
            weights.append((name, float(value)))
        except ValueError:
            raise SystemExit(f"--weight expects a number, got {spec!r}") from None

    async def _serve() -> int:
        with EngineHub(
            workers=args.workers,
            disk_cache=args.disk_cache,
            disk_cache_max_bytes=args.disk_cache_max_bytes,
            disk_cache_ttl_seconds=args.disk_cache_ttl,
            lease_budget_bytes=args.lease_budget_bytes,
        ) as hub:
            for name, directory in registrations:
                hub.register(name, load_network(directory))
                print(f"registered {name!r} from {directory}")
            async with Scheduler(
                hub,
                max_inflight=args.max_inflight,
                dedup=not args.no_dedup,
                warm_start=not args.no_warm_start,
            ) as scheduler:
                for name, weight in weights:
                    scheduler.set_weight(name, weight)
                async with ServeHTTP(scheduler, args.host, args.port) as server:
                    print(
                        f"serving {len(registrations)} network(s) on "
                        f"http://{args.host}:{server.port} "
                        f"({hub.workers} workers, {scheduler.slots} slots, "
                        f"dedup={'off' if args.no_dedup else 'on'}, "
                        f"warm-start={'off' if args.no_warm_start else 'on'}) — "
                        "Ctrl-C to stop"
                    )
                    try:
                        await server.serve_forever()
                    except asyncio.CancelledError:
                        pass
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    network = _load(args.directory, args.homophily)
    common = dict(
        min_support=args.min_support,
        k=args.k,
        node_attributes=args.attributes,
    )
    if getattr(args, "kernel", None) is not None:
        common["kernel"] = args.kernel
    nhp_result = _build_miner(
        network, getattr(args, "workers", None), min_score=args.min_nhp, **common
    ).mine()
    conf_result = ConfidenceMiner(network, min_score=args.min_nhp, **common).mine()
    print(format_table2(nhp_result, conf_result, rows=args.rows))
    return 0


def _cmd_homophily(args: argparse.Namespace) -> int:
    network = load_network(args.directory)
    suggested = suggest_homophily_attributes(network, args.threshold)
    report = homophily_report(network)
    for name, stats in report.items():
        marker = " *" if name in suggested else ""
        print(f"{name}: assortativity={stats['assortativity']:+.3f}{marker}")
    print("suggested homophily attributes:", " ".join(suggested) or "(none)")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .bench.history import (
        HISTORY_FILENAME,
        check_regressions,
        format_report,
        load_history,
    )

    path = (
        Path(args.history)
        if args.history is not None
        else Path("benchmarks") / "out" / HISTORY_FILENAME
    )
    rows = load_history(path)
    findings = check_regressions(rows, tolerance=args.tolerance)
    print(format_report(rows, findings, tolerance=args.tolerance))
    if args.check and findings:
        return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "mine": _cmd_mine,
    "sweep": _cmd_sweep,
    "hub": _cmd_hub,
    "serve": _cmd_serve,
    "compare": _cmd_compare,
    "homophily": _cmd_homophily,
    "bench-report": _cmd_bench_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
