"""Scheduler — priority + weighted-fair shard interleaving over one fleet.

The blocking :class:`~repro.engine.EngineHub` is single-coordinator: one
``sweep()`` owns the fleet until it returns, so a 50-point sweep on
network A blocks a 1-query user on network B.  The scheduler inverts
that ownership — *it* holds the fleet's in-flight slots and feeds them
one shard task at a time, picked from every admitted job:

* **Strict priorities.**  A ready shard of a higher-priority job always
  dispatches before any lower-priority one (priorities are ints, higher
  wins; starvation of low priorities under sustained high-priority load
  is accepted and documented).
* **Weighted-fair interleaving per network.**  Within a priority level,
  networks take turns by stride scheduling: serving a shard of network
  ``n`` advances ``vtime[n] += 1 / weight[n]``, and the network with the
  lowest virtual time goes next, so a bulk sweep and a single query on
  two networks make progress proportional to their weights instead of
  FIFO.  A network waking from idle is clamped to the active minimum so
  it cannot burst through accumulated credit.
* **Cooperative cancellation and deadlines.**  Cancelled jobs stop
  submitting shards, drain in-flight ones (results discarded) and only
  then recycle their threshold bus — the settle-before-release invariant
  that keeps a dead query's stale floors out of whichever query gets the
  bus next.  ``deadline_s`` arms a timer that cancels with reason
  ``"deadline"`` (state ``EXPIRED``).

A **query-admission planner** sits in front of the slot scheduler:

* **Single-flight dedup.**  Jobs whose ``(network, store fingerprint,
  canonical request)`` coincide while one is in flight share a single
  execution: the first becomes the *leader*, later arrivals attach as
  *followers* that hold no shards, bus or lease pins of their own and
  resolve with private copies of the leader's outcome.  The shared
  execution runs at the max priority of all attached jobs; cancelling
  a follower detaches it, cancelling the leader promotes a follower
  into the in-flight execution (or re-plans when nothing promotable is
  in flight yet).  N identical concurrent jobs thus cost one mining
  pass instead of N.
* **Speculative warm-start floors.**  :meth:`Scheduler.submit_sweep`
  inspects a co-admitted batch for the provable dominance relation of
  :func:`~repro.engine.request.warmstart_dominates` (same query up to
  monotone thresholds), mines the dominating *seed* point first at
  boosted priority, and admits the dominated points only once the seed
  resolved — their threshold buses are then checked out pre-seeded
  with the seed's k-th-best score, so every shard starts pruning from
  a proven floor instead of −inf.  Dominance is re-verified against
  live fingerprints at admission; when it no longer holds (store
  delta, seed cancelled, seed returned fewer than k results) the
  dependent falls back to a cold floor.  Answers stay GR-for-GR equal
  to cold execution either way — the floor only rejects GRs that
  provably cannot enter the top-k.

Exactness is inherited, not reimplemented: jobs run through the same
:meth:`~repro.engine.MiningEngine.prepare` /
:meth:`~repro.engine.MiningEngine.finish` machinery as the blocking
sweep (per-job buses, fingerprint-keyed result cache), and the merge is
gather-order independent, so any interleaving the scheduler produces
yields GR-for-GR the answer of a direct ``hub.mine()``.

Threading model — three actors, strict ownership:

* the **asyncio event loop** owns every scheduling decision and all
  scheduler/job state (shard completions are marshalled onto it);
* one **coordinator thread** (a 1-thread executor) owns all
  engine-internal mutable state — planning skeletons, bus checkouts,
  leases and pins, the result cache, serial/inline execution — i.e. the
  role the blocking hub's calling thread used to play;
* the **worker fleet** (processes) owns mining, exactly as before.

While a scheduler serves a hub, route all traffic through it: calling
the blocking ``hub.mine()`` / ``hub.sweep()`` concurrently from another
thread would race the coordinator on engine internals.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping

from ..core.results import MiningResult
from ..engine.hub import EngineHub
from ..engine.request import MineRequest, warmstart_dominates
from ..obs.metrics import REGISTRY
from ..obs.trace import NullTracer, Tracer
from .job import JobCancelled, JobState, ServeJob
from .markers import coordinator_only

__all__ = ["Scheduler"]

_M_SUBMITTED = REGISTRY.counter(
    "repro_scheduler_jobs_submitted_total", "Jobs admitted via submit()."
)
_M_RESOLVED = REGISTRY.counter(
    "repro_scheduler_jobs_resolved_total",
    "Jobs resolved, by terminal state.",
    labels=("state",),
)
_M_DEDUPED = REGISTRY.counter(
    "repro_scheduler_jobs_deduped_total",
    "Jobs attached to an identical in-flight execution (single-flight).",
)
_M_WARM_STARTED = REGISTRY.counter(
    "repro_scheduler_jobs_warm_started_total",
    "Jobs whose bus was checked out with a warm-start floor.",
)
_M_CACHE_HIT_JOBS = REGISTRY.counter(
    "repro_scheduler_cache_hit_jobs_total",
    "Jobs served straight from the result cache.",
)
_M_SHARDS_DISPATCHED = REGISTRY.counter(
    "repro_scheduler_shards_dispatched_total",
    "Shard tasks dispatched by the slot scheduler.",
)
_M_SHARDS_COMPLETED = REGISTRY.counter(
    "repro_scheduler_shards_completed_total",
    "Shard completions observed by the slot scheduler.",
)
_M_JOB_LATENCY = REGISTRY.histogram(
    "repro_job_latency_seconds",
    "Submit-to-resolve job latency, by priority class.",
    labels=("priority",),
)


class Scheduler:
    """Serve many concurrent jobs over one :class:`EngineHub` fleet.

    Parameters
    ----------
    hub:
        The engine hub whose networks and worker fleet are served.  The
        scheduler does not own the hub — closing the scheduler drains
        jobs and stops serving but leaves the hub usable (and the
        caller responsible for ``hub.close()``).
    max_inflight:
        Fleet slots the scheduler keeps occupied, i.e. the number of
        shard tasks in flight at once; defaults to the hub's worker
        count (one shard per worker — more would just queue inside the
        pool, outside the scheduler's control).
    prewarm:
        Spawn the hub's worker fleet during :meth:`start` (default)
        instead of lazily at the first pooled job.  A serving process
        accepts sockets; forking the fleet later would hand every open
        connection's descriptor to the children, whose copies keep
        clients waiting for an EOF that never comes.  ``False`` restores
        the lazy spawn for fleet-less (serial/cached-only) use.
    dedup:
        Single-flight dedup of identical concurrent jobs (default on):
        a job admitted while an equal one (same network, fingerprint,
        canonical request) is in flight attaches to that execution
        instead of mining again.
    warm_start:
        Default for speculative warm-start floors (on);
        :meth:`submit_sweep` / :meth:`sweep` accept a per-batch
        override in either direction, and an explicit ``floor_from=``
        on :meth:`submit` is always honored.
    observe:
        Record per-job trace spans (plan → bus acquire → per-shard
        dispatch/complete → merge → finalize) into :attr:`tracer`, a
        bounded :class:`repro.obs.Tracer` ring buffer the HTTP facade
        exports via ``GET /jobs/{id}/trace``.  ``False`` swaps in a
        :class:`~repro.obs.NullTracer` (metrics are governed separately
        by ``repro.obs.REGISTRY.set_enabled``).

    Use as an async context manager (or ``await start()`` /
    ``await close()``)::

        async with Scheduler(hub) as scheduler:
            bulk = [scheduler.submit("a", r) for r in sweep_requests]
            urgent = scheduler.submit("b", request, priority=10)
            result = await urgent          # jumps the bulk's queue
            rest = await asyncio.gather(*bulk)
    """

    def __init__(
        self,
        hub: EngineHub,
        max_inflight: int | None = None,
        prewarm: bool = True,
        dedup: bool = True,
        warm_start: bool = True,
        observe: bool = True,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        self.hub = hub
        self.prewarm = prewarm
        self.dedup = dedup
        self.warm_start = warm_start
        self.observe = observe
        self.tracer = Tracer() if observe else NullTracer()
        #: Snapshot age past which :meth:`hub_stats` kicks a background
        #: refresh (the current snapshot is still served immediately).
        self.stats_max_age_s = 1.0
        self._hub_stats: dict | None = None
        self._hub_stats_at: float = 0.0
        self._hub_stats_refreshing = False
        self.slots = max_inflight if max_inflight is not None else hub.workers
        self._loop: asyncio.AbstractEventLoop | None = None
        self._coordinator = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-coordinator"
        )
        self._admit: asyncio.Queue | None = None
        self._admitter: asyncio.Task | None = None
        self._jobs: dict[str, ServeJob] = {}
        self._retired: deque[str] = deque()
        self.retain_jobs = 512
        self._ready: list[ServeJob] = []
        self._inflight_slots = 0
        self._fleet = None
        self._seq = itertools.count(1)
        self._vtime: dict[str, float] = {}
        self._weights: dict[str, float] = {}
        self._shards_by_network: dict[str, int] = {}
        self._active_by_network: dict[str, int] = {}
        self._drain_waiters: dict[str, list[asyncio.Future]] = {}
        #: Paused networks -> the submission seq at which the pause
        #: began.  Jobs submitted before the pause pass through and are
        #: drained; later ones park in the backlog until the delta lands.
        self._paused: dict[str, int] = {}
        self._backlog: dict[str, deque[ServeJob]] = {}
        #: Single-flight registry: dedup key -> the in-flight leader.
        self._singleflight: dict[tuple, ServeJob] = {}
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
            "cache_hit_jobs": 0,
            "shards_dispatched": 0,
            "shards_completed": 0,
            #: Jobs that attached to an identical in-flight execution.
            "deduped": 0,
            #: Sweep points submitted as boosted-priority dominance seeds.
            "warm_seeds": 0,
            #: Jobs whose bus was checked out with a warm-start floor.
            "warm_started": 0,
            #: Cache entries migrated across append_edges barriers
            #: (carried to the new fingerprint, touched branches re-mined).
            "delta_migrated_entries": 0,
            #: Cache entries purged by append_edges barriers (re-mine cold).
            "delta_purged_entries": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Scheduler":
        """Bind to the running event loop and start admitting jobs."""
        if self._loop is not None:
            raise RuntimeError("scheduler already started")
        self._loop = asyncio.get_running_loop()
        self._admit = asyncio.Queue()
        self._admitter = self._loop.create_task(
            self._admit_loop(), name="serve-admitter"
        )
        if self.prewarm:
            self._fleet = await self._run_coord(self.hub._ensure_pool)
        # Seed the stats snapshot so GET /stats never has to wait for a
        # first job to publish one (see hub_stats()).
        self._store_hub_stats(await self._run_coord(self.hub.aggregate_stats))
        return self

    async def close(self) -> None:
        """Stop admitting, cancel outstanding jobs, drain in-flight shards.

        After the drain the hub is left clean (no bus checkouts, no
        lease pins) and open — the scheduler never owns it.
        """
        if self._closed:
            return
        self._closed = True
        for job in list(self._jobs.values()):
            if not job.done:
                self._request_cancel(job, "scheduler shutdown")
        # Futures resolve only after each job's in-flight shards settled
        # and its bus/pin were released on the coordinator.
        pending = [job.future for job in self._jobs.values() if not job.done]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._admitter is not None:
            self._admitter.cancel()
            try:
                await self._admitter
            except asyncio.CancelledError:
                pass
            self._admitter = None
        self._coordinator.shutdown(wait=True)

    async def __aenter__(self) -> "Scheduler":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _ensure_serving(self) -> None:
        if self._loop is None:
            raise RuntimeError("scheduler not started — use 'async with' or start()")
        if self._closed:
            raise RuntimeError("scheduler is closed")

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        network: str,
        request: MineRequest | Mapping | None = None,
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        floor_from: ServeJob | None = None,
        **kwargs,
    ) -> ServeJob:
        """Admit one request; returns its :class:`ServeJob` immediately.

        ``priority`` is strict (higher dispatches first); ``deadline_s``
        is relative seconds after which the job self-cancels with state
        ``EXPIRED``.  Keywords build the request inline, as on
        ``engine.mine``.

        ``floor_from`` names a *seed* job: this job then parks until the
        seed resolves and admits with the seed's k-th-best score as its
        warm-start threshold floor — applied only if the dominance
        relation of :func:`~repro.engine.request.warmstart_dominates`
        holds between the two (same network and fingerprint included);
        otherwise the job admits cold.  :meth:`submit_sweep` wires this
        automatically for dominance-related batches.
        """
        self._ensure_serving()
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative (or None)")
        if request is None:
            request = MineRequest.create(**kwargs)
        elif kwargs:
            raise TypeError("pass either a request or keywords, not both")
        elif not isinstance(request, MineRequest):
            request = MineRequest.create(**dict(request))
        self.hub.engine(network)  # unknown names fail at submit, not admit
        seq = next(self._seq)
        job = ServeJob(
            self,
            job_id=f"job-{seq:06d}",
            network=network,
            request=request,
            priority=priority,
            deadline_s=deadline_s,
        )
        job.seq = seq
        self._jobs[job.id] = job
        self._counters["submitted"] += 1
        _M_SUBMITTED.inc()
        self.tracer.begin(job.id, network=network, priority=priority)
        self._active_by_network[network] = (
            self._active_by_network.get(network, 0) + 1
        )
        job._floor_source = floor_from
        if floor_from is not None and not floor_from.done:
            # Park on the seed: released (through the admit queue, so
            # the mutation-barrier check still applies) when it
            # resolves.  Parked jobs hold no shards, pins or buses.
            job._parked_for_floor = True
            floor_from._dependents.append(job)
        elif network in self._paused:
            self._backlog.setdefault(network, deque()).append(job)
        else:
            self._admit.put_nowait(job)
        if deadline_s is not None:
            # Keep the handle so _resolve can cancel it: a completed
            # job with a long deadline must not leave a live timer
            # behind (unbounded handle growth under sustained traffic).
            job._deadline_handle = self._loop.call_later(
                deadline_s, self._expire, job
            )
        return job

    async def mine(
        self,
        network: str,
        request: MineRequest | Mapping | None = None,
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        **kwargs,
    ) -> MiningResult:
        """Submit one request and await its result."""
        return await self.submit(
            network, request, priority=priority, deadline_s=deadline_s, **kwargs
        )

    async def sweep(
        self,
        network: str,
        requests: Iterable[MineRequest | Mapping],
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        warm_start: bool | None = None,
    ) -> list[MiningResult]:
        """Submit a batch against one network and await all results.

        Unlike the blocking ``hub.sweep``, the batch holds no monopoly
        on the fleet: its shards interleave with every other admitted
        job under the fairness policy.  The batch runs through the
        admission planner (:meth:`submit_sweep`): dominance seeds are
        mined first at boosted priority and warm-start the points they
        dominate, unless ``warm_start`` (or the scheduler-wide switch)
        turns that off.
        """
        jobs = self.submit_sweep(
            network,
            requests,
            priority=priority,
            deadline_s=deadline_s,
            warm_start=warm_start,
        )
        return list(await asyncio.gather(*jobs))

    def submit_sweep(
        self,
        network: str,
        requests: Iterable[MineRequest | Mapping],
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        warm_start: bool | None = None,
    ) -> list[ServeJob]:
        """Plan and admit a co-submitted batch; returns jobs in order.

        Two guarantees beyond a loop of :meth:`submit`:

        * **All-or-nothing admission.**  Every request is validated
          before any is submitted, and if a later submission still
          fails, the already-admitted jobs of this batch are cancelled
          — a rejected batch never leaves orphan jobs mining behind the
          caller's error.
        * **Warm-start planning.**  The batch is scanned for the
          dominance relation of
          :func:`~repro.engine.request.warmstart_dominates`.  For each
          dominance group the point that dominates the most others is
          submitted first at ``priority + 1`` (the *seed*); the points
          it dominates park until the seed resolves and then admit with
          its k-th-best score as their threshold-bus floor.  Points in
          no dominance relation — and the whole batch when warm-start
          is off — admit immediately with cold floors.
        """
        self._ensure_serving()
        requests = [
            req if isinstance(req, MineRequest) else MineRequest.create(**dict(req))
            for req in requests
        ]
        engine = self.hub.engine(network)
        use_warm = self.warm_start if warm_start is None else warm_start
        seed_of: dict[int, int] = {}
        seeds: list[int] = []
        if use_warm and len(requests) > 1:
            keys = [
                request.canonical_key(
                    engine.network.schema, engine.network.num_edges
                )
                for request in requests
            ]
            seeds, seed_of = self._plan_warmstart(keys)
        jobs: list[ServeJob | None] = [None] * len(requests)
        try:
            for i in seeds:
                # The seed's k-th best gates its dependents, so it goes
                # first: one priority level above the batch.
                jobs[i] = self.submit(
                    network,
                    requests[i],
                    priority=priority + 1,
                    deadline_s=deadline_s,
                )
                self._counters["warm_seeds"] += 1
            for i, request in enumerate(requests):
                if jobs[i] is not None:
                    continue
                source = jobs[seed_of[i]] if i in seed_of else None
                jobs[i] = self.submit(
                    network,
                    request,
                    priority=priority,
                    deadline_s=deadline_s,
                    floor_from=source,
                )
        except BaseException:
            for job in jobs:
                if job is not None and not job.done:
                    job.cancel("sweep submission failed")
            raise
        return jobs

    @staticmethod
    def _plan_warmstart(keys: list[tuple]) -> tuple[list[int], dict[int, int]]:
        """Pick dominance seeds for a batch of canonical keys.

        Greedy single-level cover: repeatedly promote the unassigned
        point that dominates the most still-unassigned others to a
        seed, until no point dominates anything.  Identical keys never
        dominate each other (that is the dedup path), and points under
        no dominance run cold.
        """
        n = len(keys)
        dominated = {
            i: [
                j
                for j in range(n)
                if j != i and warmstart_dominates(keys[i], keys[j])
            ]
            for i in range(n)
        }
        seeds: list[int] = []
        seed_of: dict[int, int] = {}
        taken: set[int] = set()
        while True:
            best, best_cover = None, []
            for i in range(n):
                if i in taken:
                    continue
                cover = [j for j in dominated[i] if j not in taken]
                if len(cover) > len(best_cover):
                    best, best_cover = i, cover
            if best is None or not best_cover:
                return seeds, seed_of
            seeds.append(best)
            taken.add(best)
            for j in best_cover:
                taken.add(j)
                seed_of[j] = best

    def job(self, job_id: str) -> ServeJob:
        """Look up a (recent) job by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r} (retained: {self.retain_jobs})") from None

    def set_weight(self, network: str, weight: float) -> None:
        """Set a network's fair-share weight (default 1.0; higher = more
        shard slots per scheduling round at equal priority)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[network] = float(weight)

    # ------------------------------------------------------------------
    # Mutation barrier
    # ------------------------------------------------------------------
    async def append_edges(self, network: str, src, dst, edge_codes=None) -> str:
        """Apply an append-edge delta with a per-network drain barrier.

        Admitted jobs hold shard tasks addressing the network's current
        store export; mutating under them would unlink that segment (or
        worse, serve half a query from each edge set).  The barrier
        pauses *admission* for this network only (other networks keep
        flowing; late submissions park in a backlog), waits for its
        active jobs to finish, applies the delta on the coordinator,
        then releases the backlog.  Returns the new fingerprint.

        The delta's cache outcome is surfaced in :meth:`stats`:
        ``delta_migrated_entries`` counts result-cache entries carried
        across the fingerprint change (only delta-touched branches
        re-mined), ``delta_purged_entries`` those dropped to re-mine
        cold.
        """
        self._ensure_serving()
        engine = self.hub.engine(network)
        if network in self._paused:
            raise RuntimeError(f"append_edges already in progress for {network!r}")
        self._paused[network] = next(self._seq)
        try:
            await self._drain_network(network)
            migrated_before = engine.stats.migrated_entries
            purged_before = engine.stats.purged_entries
            fingerprint = await self._run_coord(
                self.hub.append_edges, network, src, dst, edge_codes
            )
            # The coordinator call completed before these reads, and the
            # drain barrier keeps this engine otherwise idle, so the
            # diffs attribute exactly this delta's cache outcome.
            self._counters["delta_migrated_entries"] += (
                engine.stats.migrated_entries - migrated_before
            )
            self._counters["delta_purged_entries"] += (
                engine.stats.purged_entries - purged_before
            )
            # The delta changed the fingerprint and lease population the
            # published stats snapshot describes — refresh it in place.
            self._store_hub_stats(
                await self._run_coord(self.hub.aggregate_stats)
            )
            return fingerprint
        finally:
            self._paused.pop(network, None)
            backlog = self._backlog.pop(network, None)
            if backlog:
                for job in backlog:
                    self._admit.put_nowait(job)

    async def _drain_network(self, network: str) -> None:
        if self._drainable_active(network) <= 0:
            return
        waiter = self._loop.create_future()
        self._drain_waiters.setdefault(network, []).append(waiter)
        await waiter

    def _drainable_active(self, network: str) -> int:
        """Live jobs the barrier must wait for: active minus parked ones
        (backlogged jobs and warm-start dependents still parked on their
        seed hold no shard tasks, pins or buses — they were never
        prepared — so the delta may safely run over them; a parked
        dependent whose seed lands in the backlog would otherwise
        deadlock the barrier against itself)."""
        parked = sum(
            1 for j in self._backlog.get(network, ()) if not j.done
        )
        parked += sum(
            1
            for j in self._jobs.values()
            if j.network == network and j._parked_for_floor and not j.done
        )
        return self._active_by_network.get(network, 0) - parked

    def _check_drain(self, network: str) -> None:
        if self._drainable_active(network) <= 0:
            for waiter in self._drain_waiters.pop(network, []):
                if not waiter.done():
                    waiter.set_result(None)

    # ------------------------------------------------------------------
    # Admission (prepare on the coordinator, classify, enqueue)
    # ------------------------------------------------------------------
    async def _admit_loop(self) -> None:
        while True:
            job: ServeJob = await self._admit.get()
            if job.done:
                continue  # cancelled while queued; already finalized
            pause_seq = self._paused.get(job.network)
            if pause_seq is not None and job.seq > pause_seq:
                # Submitted after the barrier began: park until the
                # delta lands (parked jobs block nothing — they hold no
                # shards, pins or buses yet).  Jobs submitted *before*
                # the pause fall through and are drained by the barrier,
                # so everything admitted pre-delta sees the old edges.
                self._backlog.setdefault(job.network, deque()).append(job)
                self._check_drain(job.network)
                continue
            try:
                await self._admit_one(job)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                if not job.done:
                    job._error = exc
                    await self._finalize(job)

    async def _admit_one(self, job: ServeJob) -> None:
        engine = self.hub.engine(job.network)
        if job.cancel_requested:
            await self._finalize(job)
            return
        # Single-flight: identical to an in-flight execution -> attach
        # as a follower and stop; otherwise register as the leader for
        # this key.  (Admission of a network's jobs never overlaps its
        # append_edges barrier, so the fingerprint read is stable.)
        job.dedup_key = (job.network,) + engine.query_key(job.request)
        if self.dedup:
            leader = self._singleflight.get(job.dedup_key)
            if (
                leader is not None
                and leader is not job
                and not leader.done
                and not leader.cancel_requested
            ):
                self._attach_follower(leader, job)
                return
            self._singleflight[job.dedup_key] = job
        floor = self._floor_for(job)
        # While the admitter owns the job (prepare, serial/inline
        # execution), cancellation defers to the checkpoints below —
        # a concurrent _finalize would release the bus/pin before the
        # coordinator even handed them over.
        job._executing = True
        try:
            plan_started = time.perf_counter()
            prepared = await self._run_coord(self._prepare_sync, engine, job, floor)
            self.tracer.span(job.id, "plan", plan_started, time.perf_counter())
            for name, (span_start, span_end) in prepared.timings.items():
                self.tracer.span(job.id, name, span_start, span_end)
            job._prepared = prepared
            job.warm_floor = prepared.floor
            if prepared.floor is not None:
                self._counters["warm_started"] += 1
                _M_WARM_STARTED.inc()
            if job.cancel_requested:
                await self._finalize(job)
                return
            if prepared.mode == "cached":
                job.cached = True
                self._counters["cache_hit_jobs"] += 1
                _M_CACHE_HIT_JOBS.inc()
                await self._run_coord(self._release_sync, engine, job)
                self._resolve(job, JobState.DONE, result=prepared.result)
                return
            if prepared.mode in ("serial", "inline"):
                # Coordinator-bound execution: correct and simple, but
                # it occupies the coordinator — a serving deployment
                # should prefer pooled requests (workers >= 1).
                # Uncancellable once started; the flag was checked above.
                job.state = JobState.RUNNING
                job.shards_total = max(len(prepared.tasks), 1)
                try:
                    exec_started = time.perf_counter()
                    result = await self._run_coord(
                        engine.execute_prepared, prepared
                    )
                    self.tracer.span(
                        job.id, "execute", exec_started, time.perf_counter()
                    )
                except BaseException as exc:
                    job._error = exc
                    await self._finalize(job)
                    return
                job.shards_done = job.shards_total
                if job.cancel_requested:
                    # The answer landed in the cache, but the contract
                    # is uniform: a cancelled job yields no result.
                    await self._finalize(job)
                    return
                await self._run_coord(self._release_sync, engine, job)
                self._resolve(job, JobState.DONE, result=result)
                return
        finally:
            job._executing = False
        # Pooled: the scheduler owns submission from here on.
        if self._fleet is None:
            self._fleet = await self._run_coord(engine._ensure_pool)
        if job.done:
            return  # cancelled during the fleet spawn; already settled
        if job.cancel_requested:
            await self._finalize(job)
            return
        job._queue = deque(prepared.tasks)
        job.shards_total = len(prepared.tasks)
        job.state = JobState.READY
        self._enter_ready(job)
        self._publish_progress(job)
        self._fill_slots()

    @coordinator_only
    def _prepare_sync(self, engine, job: ServeJob, floor=None):
        # Runs on the coordinator thread.  The pin must precede the
        # prepare: prepare resolves the store handle (possibly exporting
        # a lease), and an interleaved prepare for another network must
        # not budget-evict it while this job's tasks still address it.
        self.hub.pin_lease(job.network)
        job._pinned = True
        return engine.prepare(job.request, floor=floor)

    def _attach_follower(self, leader: ServeJob, job: ServeJob) -> None:
        """Ride ``leader``'s execution instead of mining again."""
        job._leader = leader
        job.deduped = True
        leader._followers.append(job)
        self._counters["deduped"] += 1
        _M_DEDUPED.inc()

    def _floor_for(self, job: ServeJob) -> float | None:
        """The warm-start floor this job admits with, or ``None``.

        Dominance is decided *now*, against live canonical keys — the
        plan made at submit time is only a hint.  A seed that was
        cancelled, failed, returned fewer than ``k`` results, or ran
        over a different store version (fingerprint mismatch after an
        append-edge delta) degrades to a cold floor, never to an
        unsound one.

        No master-switch check here: a floor source is only ever set by
        an explicit ``floor_from=`` or by batch planning that was
        already gated on the switch/override — vetoing it again would
        silently strip the floor from a ``warm_start=True`` batch on a
        default-off scheduler after it paid the seed-first serialization.
        """
        source, job._floor_source = job._floor_source, None
        if source is None:
            return None
        if source.state is not JobState.DONE:
            return None
        if source.dedup_key is None or job.dedup_key is None:
            return None
        seed_net, seed_fp, seed_ck = source.dedup_key
        dep_net, dep_fp, dep_ck = job.dedup_key
        if seed_net != dep_net or seed_fp != dep_fp:
            return None
        if not warmstart_dominates(seed_ck, dep_ck):
            return None
        result = source.future.result()
        k = job.request.k
        if k is None or len(result.grs) != k:
            # Fewer than k seed results certify fewer than k dependent
            # results — not enough to bound the dependent's top-k.
            return None
        return float(result.grs[-1].score)

    def _run_coord(self, fn, *args):
        return self._loop.run_in_executor(self._coordinator, lambda: fn(*args))

    # ------------------------------------------------------------------
    # Slot scheduling (event-loop thread only)
    # ------------------------------------------------------------------
    def _enter_ready(self, job: ServeJob) -> None:
        active = {j.network for j in self._ready}
        active.update(
            j.network
            for j in self._jobs.values()
            if j._inflight > 0 and not j.done
        )
        if job.network not in active:
            # A network waking from idle re-enters *at* the active
            # minimum, from either side: clamping up keeps it from
            # bursting through credit accumulated while absent, and
            # clamping back down keeps a stale vtime surplus (run up
            # before it idled) from starving it behind fresher networks
            # until they catch up.
            floor = min(
                (self._vtime.get(n, 0.0) for n in active), default=0.0
            )
            self._vtime[job.network] = floor
        self._ready.append(job)

    def _pick(self) -> ServeJob | None:
        """The next job to advance: priority, then fair share, then FIFO.

        Priority is the *effective* one — a leader with a
        higher-priority follower attached dispatches at the follower's
        level, so single-flight never slows the most urgent attachee.
        """
        best = None
        best_rank = None
        for job in self._ready:
            rank = (
                -job.effective_priority,
                self._vtime.get(job.network, 0.0),
                job.seq,
            )
            if best_rank is None or rank < best_rank:
                best, best_rank = job, rank
        return best

    def _fill_slots(self) -> None:
        while self._inflight_slots < self.slots and self._ready:
            job = self._pick()
            if job is None:
                return
            task = job._queue.popleft()
            if not job._queue:
                self._ready.remove(job)
            if job.state is JobState.READY:
                job.state = JobState.RUNNING
                job._prepared.started = time.perf_counter()
            job._inflight += 1
            self._inflight_slots += 1
            self._counters["shards_dispatched"] += 1
            _M_SHARDS_DISPATCHED.inc()
            job._shard_started[task.shard_id] = time.perf_counter()
            self._shards_by_network[job.network] = (
                self._shards_by_network.get(job.network, 0) + 1
            )
            weight = self._weights.get(job.network, 1.0)
            self._vtime[job.network] = (
                self._vtime.get(job.network, 0.0) + 1.0 / weight
            )
            self._fleet.submit(
                task,
                callback=lambda res, j=job: self._from_fleet(j, res, None),
                error_callback=lambda exc, j=job: self._from_fleet(j, None, exc),
            )

    def _from_fleet(self, job: ServeJob, result, exc) -> None:
        # Pool result-handler thread: marshal onto the loop and return.
        try:
            self._loop.call_soon_threadsafe(self._on_shard, job, result, exc)
        except RuntimeError:
            pass  # loop already closed under a forced teardown

    def _on_shard(self, job: ServeJob, result, exc) -> None:
        # A shard dispatched under a since-cancelled leader belongs to
        # whoever inherited the execution.
        while job._moved_to is not None:
            job = job._moved_to
        self._inflight_slots -= 1
        self._counters["shards_completed"] += 1
        _M_SHARDS_COMPLETED.inc()
        job._inflight -= 1
        job.shards_done += 1
        if exc is not None:
            if job._error is None:
                job._error = exc
        elif result is not None:
            job._shard_results.append(result)
            shard_started = job._shard_started.pop(result.shard_id, None)
            if shard_started is not None:
                self.tracer.span(
                    job.id,
                    f"shard-{result.shard_id}",
                    shard_started,
                    time.perf_counter(),
                    tid=result.shard_id + 1,
                    entries=len(result.entries),
                )
            self._merge_partial(job, result)
        if (job._error is not None or job.cancel_requested) and job._queue:
            # Stop submitting: the remaining shards are dead weight.
            job._queue.clear()
            if job in self._ready:
                self._ready.remove(job)
        if job._inflight == 0 and not job._queue and not job.done:
            self._loop.create_task(self._finalize(job))
        self._publish_progress(job)
        self._fill_slots()

    @staticmethod
    def _merge_partial(job: ServeJob, result) -> None:
        """Fold an arrived shard's entries into the job's partial top-k.

        A best-effort preview for progress streaming only — the exact,
        tie-broken merge still happens in ``engine.finish``.
        """
        k = job.request.k if job.request.k is not None else 10
        merged = job._partial_topk + [
            (float(entry.score), str(entry.gr)) for entry in result.entries[:k]
        ]
        merged.sort(key=lambda pair: pair[0], reverse=True)
        job._partial_topk = merged[:k]

    # ------------------------------------------------------------------
    # Progress streaming (event-loop thread only)
    # ------------------------------------------------------------------
    def progress_payload(self, job: ServeJob) -> dict:
        """JSON-ready progress snapshot for SSE streaming.

        The reported ``floor`` is monotonic per job: the bus read is a
        lock-free shared-memory max (safe off the coordinator), but the
        bus is recycled at finalize — without the high-water mark a
        terminal event could report a looser floor than an earlier one.
        """
        floor = None
        prepared = job._prepared
        if prepared is not None and prepared.bus is not None:
            raw = prepared.bus.best_floor()
            if raw != float("-inf"):
                floor = raw
        elif job.warm_floor is not None:
            floor = job.warm_floor
        if floor is not None and (
            job._floor_seen is None or floor > job._floor_seen
        ):
            job._floor_seen = floor
        k = job.request.k
        topk = list(job._partial_topk)
        kth_best = topk[k - 1][0] if (k is not None and len(topk) >= k) else None
        return {
            "job_id": job.id,
            "state": job.state.value,
            "shards_total": job.shards_total,
            "shards_done": job.shards_done,
            "floor": job._floor_seen,
            "kth_best": kth_best,
            "top_k": [{"score": score, "gr": gr} for score, gr in topk],
        }

    def _publish_progress(self, job: ServeJob, event: str = "progress") -> None:
        if not job._subscribers:
            return
        payload = self.progress_payload(job)
        for queue in list(job._subscribers):
            queue.put_nowait((event, payload))

    # ------------------------------------------------------------------
    # Completion / cancellation (event-loop thread only)
    # ------------------------------------------------------------------
    async def _finalize(self, job: ServeJob) -> None:
        """Settle a job once nothing of it is in flight anymore."""
        if job._finalized:
            return
        job._finalized = True
        job._finalize_started = time.perf_counter()
        engine = self.hub.engine(job.network)
        try:
            if job.cancel_requested or job._error is not None:
                await self._run_coord(self._release_sync, engine, job)
                if job.cancel_requested:
                    state = (
                        JobState.EXPIRED
                        if job.cancel_reason == "deadline"
                        else JobState.CANCELLED
                    )
                    self._resolve(
                        job, state,
                        error=JobCancelled(job.id, job.cancel_reason or "cancelled"),
                    )
                else:
                    self._resolve(job, JobState.FAILED, error=job._error)
                return
            if job._prepared is not None and job._prepared.mode == "pooled":
                result = await self._run_coord(self._finish_sync, engine, job)
            else:
                result = None  # cancelled before planning produced work
            self._resolve(job, JobState.DONE, result=result)
        except BaseException as exc:
            self._resolve(job, JobState.FAILED, error=exc)

    @coordinator_only
    def _finish_sync(self, engine, job: ServeJob) -> MiningResult:
        # Coordinator thread: merge, cache, then release bus and pin.
        try:
            return engine.finish(job._prepared, job._shard_results)
        finally:
            merge = (
                job._prepared.timings.get("merge")
                if job._prepared is not None
                else None
            )
            if merge is not None:
                self.tracer.span(job.id, "merge", merge[0], merge[1])
            self._release_sync(engine, job)

    @coordinator_only
    def _release_sync(self, engine, job: ServeJob) -> None:
        # Coordinator thread.  Safe exactly because finalize waits for
        # every submitted shard to settle first.
        if job._prepared is not None:
            engine.release_bus(job._prepared)
        if job._pinned:
            job._pinned = False
            self.hub.unpin_lease(job.network)
        # Publish a fresh hub snapshot while we're already on the
        # coordinator — the GET /stats read path then serves it without
        # its own round-trip (see hub_stats()).
        stats = self.hub.aggregate_stats()
        try:
            self._loop.call_soon_threadsafe(self._store_hub_stats, stats)
        except RuntimeError:
            pass  # loop already closed under a forced teardown

    def _resolve(
        self,
        job: ServeJob,
        state: JobState,
        result=None,
        error: BaseException | None = None,
    ) -> None:
        if job.done:
            return
        job.state = state
        job.finished_at = self._loop.time()
        job._finalized = True
        _M_RESOLVED.labels(state=state.value).inc()
        _M_JOB_LATENCY.labels(priority=str(job.priority)).observe(
            job.finished_at - job.submitted_at
        )
        if job._finalize_started is not None:
            self.tracer.span(
                job.id, "finalize", job._finalize_started, time.perf_counter()
            )
            job._finalize_started = None
        if job._deadline_handle is not None:
            # Timer-leak fix: a resolved job must not leave its deadline
            # timer live until it fires (only to find the job done).
            job._deadline_handle.cancel()
            job._deadline_handle = None
        if self._singleflight.get(job.dedup_key) is job:
            del self._singleflight[job.dedup_key]
        if state is JobState.DONE:
            self._counters["completed"] += 1
            if not job.future.done():
                job.future.set_result(result)
        else:
            key = {
                JobState.FAILED: "failed",
                JobState.CANCELLED: "cancelled",
                JobState.EXPIRED: "expired",
            }[state]
            self._counters[key] += 1
            if not job.future.done():
                job.future.set_exception(error)
                if isinstance(error, JobCancelled):
                    # Cancellation is a normal outcome the caller may
                    # never await; don't log it as an unretrieved error.
                    job.future.exception()
        # Single-flight fan-out: every follower still attached shares
        # this outcome — a private snapshot of the result (mutating one
        # caller's copy must not reach another's), the same error, or —
        # when a cancelled leader could not promote (shutdown, or a
        # coordinator-bound mode) — a trip back through admission.
        followers, job._followers = job._followers, []
        snapshot = (
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            if state is JobState.DONE and followers
            else None
        )
        for follower in followers:
            if follower.done:
                continue
            follower._leader = None
            if state is JobState.DONE:
                self._resolve(
                    follower, JobState.DONE, result=pickle.loads(snapshot)
                )
            elif state is JobState.FAILED:
                self._resolve(follower, JobState.FAILED, error=error)
            else:
                follower.deduped = False
                self._admit.put_nowait(follower)
        # Warm-start fan-out: dependents parked on this job re-enter
        # admission (their floor — or a cold fallback — is decided
        # there, against live fingerprints).
        dependents, job._dependents = job._dependents, []
        for dependent in dependents:
            if dependent.done:
                continue
            dependent._parked_for_floor = False
            self._admit.put_nowait(dependent)
        remaining = self._active_by_network.get(job.network, 1) - 1
        if remaining > 0:
            self._active_by_network[job.network] = remaining
        else:
            self._active_by_network.pop(job.network, None)
        self._check_drain(job.network)
        self._publish_progress(job, event="done")
        self._retire(job)

    def _retire(self, job: ServeJob) -> None:
        self._retired.append(job.id)
        while len(self._retired) > self.retain_jobs:
            stale = self._retired.popleft()
            old = self._jobs.get(stale)
            if old is not None and old.done:
                del self._jobs[stale]

    def _request_cancel(self, job: ServeJob, reason: str) -> None:
        """Thread-safe cancellation entry (jobs delegate here)."""
        if self._loop is None:
            return
        try:
            running = asyncio.get_running_loop() is self._loop
        except RuntimeError:
            running = False
        if running:
            self._cancel_on_loop(job, reason)
        else:
            self._loop.call_soon_threadsafe(self._cancel_on_loop, job, reason)

    def _cancel_on_loop(self, job: ServeJob, reason: str) -> None:
        if job.done or job.cancel_requested:
            return
        job.cancel_requested = True
        job.cancel_reason = reason
        leader = job._leader
        if leader is not None:
            # Follower: detach from the shared execution — which keeps
            # running for the leader and any remaining followers — and
            # settle.  A follower holds no shards, bus or pins.
            job._leader = None
            if job in leader._followers:
                leader._followers.remove(job)
            self._loop.create_task(self._finalize(job))
            return
        followers = [f for f in job._followers if not f.done]
        # A leader whose finalize already started (_finalized) is about
        # to resolve: its _resolve fan-out will deliver the outcome to
        # the still-attached followers, and its finish may be mid-merge
        # on the coordinator — neither promoting (which would mutate
        # _prepared under that merge) nor detaching is correct then.
        if followers and not job._finalized:
            if (
                job._prepared is not None
                and job._prepared.mode == "pooled"
                and job.state in (JobState.READY, JobState.RUNNING)
                and not job._executing
            ):
                # In-flight pooled execution: hand it to a follower
                # rather than throwing the work away.
                self._promote_follower(job, followers)
            else:
                # Nothing promotable in flight (still preparing, or
                # coordinator-bound): detach and re-plan the followers —
                # the first one re-admitted becomes a fresh leader
                # (often a cache hit if this execution still lands).
                if self._singleflight.get(job.dedup_key) is job:
                    del self._singleflight[job.dedup_key]
                job._followers = []
                for follower in followers:
                    follower._leader = None
                    follower.deduped = False
                    self._admit.put_nowait(follower)
        if job._queue:
            job._queue.clear()
            if job in self._ready:
                self._ready.remove(job)
        if job._inflight > 0:
            return  # _on_shard finalizes after the drain
        if job._executing:
            return  # the admitter owns it and finalizes at its next checkpoint
        # Nothing of the job is anywhere in flight — not in the admit
        # pipeline, not on the coordinator, not on the fleet (this
        # includes a RUNNING pooled job whose dispatched shards all
        # settled while its remaining ones sat queued behind other
        # jobs) — so settle it now; the admitter skips done jobs.
        self._loop.create_task(self._finalize(job))

    def _promote_follower(self, leader: ServeJob, followers: list[ServeJob]) -> None:
        """Transfer a cancelled leader's pooled execution to a follower.

        The heir (highest priority, earliest on ties) inherits the
        prepared query, the remaining task queue, the in-flight shard
        accounting, partial shard results and the lease pin; shard
        completions dispatched under the leader are redirected through
        ``_moved_to``.  The leader is left holding nothing, so its own
        cancel path settles it without touching the bus or pin it no
        longer owns.
        """
        heir = max(followers, key=lambda f: (f.priority, -f.seq))
        heir._leader = None
        heir.deduped = False
        heir._followers = [f for f in followers if f is not heir]
        for follower in heir._followers:
            follower._leader = heir
        leader._followers = []
        heir._prepared, leader._prepared = leader._prepared, None
        heir._queue, leader._queue = leader._queue, deque()
        heir._inflight, leader._inflight = leader._inflight, 0
        heir._shard_results, leader._shard_results = leader._shard_results, []
        heir._partial_topk, leader._partial_topk = leader._partial_topk, []
        heir._shard_started, leader._shard_started = leader._shard_started, {}
        heir.shards_total = leader.shards_total
        heir.shards_done = leader.shards_done
        heir._pinned, leader._pinned = leader._pinned, False
        heir.warm_floor = leader.warm_floor
        heir.state = leader.state
        leader._moved_to = heir
        if self._singleflight.get(leader.dedup_key) is leader:
            self._singleflight[leader.dedup_key] = heir
        for i, ready in enumerate(self._ready):
            if ready is leader:
                self._ready[i] = heir
                break
        if heir._inflight == 0 and not heir._queue and not heir.done:
            # Every shard had already settled when the leader was
            # cancelled (its finalize had not run yet): no completion
            # callback will ever fire again, so settle the heir now.
            self._loop.create_task(self._finalize(heir))

    def _expire(self, job: ServeJob) -> None:
        if not job.done:
            self._cancel_on_loop(job, "deadline")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _store_hub_stats(self, stats: dict) -> None:
        # Event-loop thread only (coordinator publishers marshal here
        # via call_soon_threadsafe).
        self._hub_stats = stats
        self._hub_stats_at = self._loop.time()

    def hub_stats(self) -> dict:
        """The published hub-stats snapshot — never blocks on the coordinator.

        The coordinator republishes after every job release and every
        append-edge delta, so under traffic the snapshot is fresh by
        construction.  On an idle scheduler a read older than
        :attr:`stats_max_age_s` kicks one background refresh but still
        returns the current snapshot immediately — a ``GET /stats`` poll
        can never queue behind mining work on the coordinator.  The
        returned dict carries its own staleness as ``age_s``.
        """
        age = (
            self._loop.time() - self._hub_stats_at
            if self._hub_stats is not None
            else None
        )
        if (
            not self._closed
            and not self._hub_stats_refreshing
            and (age is None or age > self.stats_max_age_s)
        ):
            self._hub_stats_refreshing = True
            self._loop.create_task(self._refresh_hub_stats())
        payload = dict(self._hub_stats or {})
        payload["age_s"] = age
        return payload

    async def _refresh_hub_stats(self) -> None:
        try:
            stats = await self._run_coord(self.hub.aggregate_stats)
        except RuntimeError:
            return  # coordinator already shut down mid-close
        finally:
            self._hub_stats_refreshing = False
        self._store_hub_stats(stats)

    def stats(self) -> dict:
        """Counters + live state (JSON-ready)."""
        live = [j for j in self._jobs.values() if not j.done]
        return {
            **self._counters,
            "slots": self.slots,
            "inflight_slots": self._inflight_slots,
            "live_jobs": len(live),
            "ready_jobs": len(self._ready),
            "networks": {
                name: {
                    "shards_served": served,
                    "vtime": self._vtime.get(name, 0.0),
                    "weight": self._weights.get(name, 1.0),
                }
                for name, served in sorted(self._shards_by_network.items())
            },
        }

    def __repr__(self) -> str:
        state = (
            "closed" if self._closed
            else "serving" if self._loop is not None
            else "unstarted"
        )
        return (
            f"Scheduler(networks={self.hub.names()}, slots={self.slots}, "
            f"{state}, inflight={self._inflight_slots})"
        )
