"""Scheduler — priority + weighted-fair shard interleaving over one fleet.

The blocking :class:`~repro.engine.EngineHub` is single-coordinator: one
``sweep()`` owns the fleet until it returns, so a 50-point sweep on
network A blocks a 1-query user on network B.  The scheduler inverts
that ownership — *it* holds the fleet's in-flight slots and feeds them
one shard task at a time, picked from every admitted job:

* **Strict priorities.**  A ready shard of a higher-priority job always
  dispatches before any lower-priority one (priorities are ints, higher
  wins; starvation of low priorities under sustained high-priority load
  is accepted and documented).
* **Weighted-fair interleaving per network.**  Within a priority level,
  networks take turns by stride scheduling: serving a shard of network
  ``n`` advances ``vtime[n] += 1 / weight[n]``, and the network with the
  lowest virtual time goes next, so a bulk sweep and a single query on
  two networks make progress proportional to their weights instead of
  FIFO.  A network waking from idle is clamped to the active minimum so
  it cannot burst through accumulated credit.
* **Cooperative cancellation and deadlines.**  Cancelled jobs stop
  submitting shards, drain in-flight ones (results discarded) and only
  then recycle their threshold bus — the settle-before-release invariant
  that keeps a dead query's stale floors out of whichever query gets the
  bus next.  ``deadline_s`` arms a timer that cancels with reason
  ``"deadline"`` (state ``EXPIRED``).

Exactness is inherited, not reimplemented: jobs run through the same
:meth:`~repro.engine.MiningEngine.prepare` /
:meth:`~repro.engine.MiningEngine.finish` machinery as the blocking
sweep (per-job buses, fingerprint-keyed result cache), and the merge is
gather-order independent, so any interleaving the scheduler produces
yields GR-for-GR the answer of a direct ``hub.mine()``.

Threading model — three actors, strict ownership:

* the **asyncio event loop** owns every scheduling decision and all
  scheduler/job state (shard completions are marshalled onto it);
* one **coordinator thread** (a 1-thread executor) owns all
  engine-internal mutable state — planning skeletons, bus checkouts,
  leases and pins, the result cache, serial/inline execution — i.e. the
  role the blocking hub's calling thread used to play;
* the **worker fleet** (processes) owns mining, exactly as before.

While a scheduler serves a hub, route all traffic through it: calling
the blocking ``hub.mine()`` / ``hub.sweep()`` concurrently from another
thread would race the coordinator on engine internals.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping

from ..core.results import MiningResult
from ..engine.hub import EngineHub
from ..engine.request import MineRequest
from .job import JobCancelled, JobState, ServeJob

__all__ = ["Scheduler"]


class Scheduler:
    """Serve many concurrent jobs over one :class:`EngineHub` fleet.

    Parameters
    ----------
    hub:
        The engine hub whose networks and worker fleet are served.  The
        scheduler does not own the hub — closing the scheduler drains
        jobs and stops serving but leaves the hub usable (and the
        caller responsible for ``hub.close()``).
    max_inflight:
        Fleet slots the scheduler keeps occupied, i.e. the number of
        shard tasks in flight at once; defaults to the hub's worker
        count (one shard per worker — more would just queue inside the
        pool, outside the scheduler's control).
    prewarm:
        Spawn the hub's worker fleet during :meth:`start` (default)
        instead of lazily at the first pooled job.  A serving process
        accepts sockets; forking the fleet later would hand every open
        connection's descriptor to the children, whose copies keep
        clients waiting for an EOF that never comes.  ``False`` restores
        the lazy spawn for fleet-less (serial/cached-only) use.

    Use as an async context manager (or ``await start()`` /
    ``await close()``)::

        async with Scheduler(hub) as scheduler:
            bulk = [scheduler.submit("a", r) for r in sweep_requests]
            urgent = scheduler.submit("b", request, priority=10)
            result = await urgent          # jumps the bulk's queue
            rest = await asyncio.gather(*bulk)
    """

    def __init__(
        self,
        hub: EngineHub,
        max_inflight: int | None = None,
        prewarm: bool = True,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        self.hub = hub
        self.prewarm = prewarm
        self.slots = max_inflight if max_inflight is not None else hub.workers
        self._loop: asyncio.AbstractEventLoop | None = None
        self._coordinator = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-coordinator"
        )
        self._admit: asyncio.Queue | None = None
        self._admitter: asyncio.Task | None = None
        self._jobs: dict[str, ServeJob] = {}
        self._retired: deque[str] = deque()
        self.retain_jobs = 512
        self._ready: list[ServeJob] = []
        self._inflight_slots = 0
        self._fleet = None
        self._seq = itertools.count(1)
        self._vtime: dict[str, float] = {}
        self._weights: dict[str, float] = {}
        self._shards_by_network: dict[str, int] = {}
        self._active_by_network: dict[str, int] = {}
        self._drain_waiters: dict[str, list[asyncio.Future]] = {}
        #: Paused networks -> the submission seq at which the pause
        #: began.  Jobs submitted before the pause pass through and are
        #: drained; later ones park in the backlog until the delta lands.
        self._paused: dict[str, int] = {}
        self._backlog: dict[str, deque[ServeJob]] = {}
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
            "cache_hit_jobs": 0,
            "shards_dispatched": 0,
            "shards_completed": 0,
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "Scheduler":
        """Bind to the running event loop and start admitting jobs."""
        if self._loop is not None:
            raise RuntimeError("scheduler already started")
        self._loop = asyncio.get_running_loop()
        self._admit = asyncio.Queue()
        self._admitter = self._loop.create_task(
            self._admit_loop(), name="serve-admitter"
        )
        if self.prewarm:
            self._fleet = await self._run_coord(self.hub._ensure_pool)
        return self

    async def close(self) -> None:
        """Stop admitting, cancel outstanding jobs, drain in-flight shards.

        After the drain the hub is left clean (no bus checkouts, no
        lease pins) and open — the scheduler never owns it.
        """
        if self._closed:
            return
        self._closed = True
        for job in list(self._jobs.values()):
            if not job.done:
                self._request_cancel(job, "scheduler shutdown")
        # Futures resolve only after each job's in-flight shards settled
        # and its bus/pin were released on the coordinator.
        pending = [job.future for job in self._jobs.values() if not job.done]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._admitter is not None:
            self._admitter.cancel()
            try:
                await self._admitter
            except asyncio.CancelledError:
                pass
            self._admitter = None
        self._coordinator.shutdown(wait=True)

    async def __aenter__(self) -> "Scheduler":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _ensure_serving(self) -> None:
        if self._loop is None:
            raise RuntimeError("scheduler not started — use 'async with' or start()")
        if self._closed:
            raise RuntimeError("scheduler is closed")

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        network: str,
        request: MineRequest | Mapping | None = None,
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        **kwargs,
    ) -> ServeJob:
        """Admit one request; returns its :class:`ServeJob` immediately.

        ``priority`` is strict (higher dispatches first); ``deadline_s``
        is relative seconds after which the job self-cancels with state
        ``EXPIRED``.  Keywords build the request inline, as on
        ``engine.mine``.
        """
        self._ensure_serving()
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be non-negative (or None)")
        if request is None:
            request = MineRequest.create(**kwargs)
        elif kwargs:
            raise TypeError("pass either a request or keywords, not both")
        elif not isinstance(request, MineRequest):
            request = MineRequest.create(**dict(request))
        self.hub.engine(network)  # unknown names fail at submit, not admit
        seq = next(self._seq)
        job = ServeJob(
            self,
            job_id=f"job-{seq:06d}",
            network=network,
            request=request,
            priority=priority,
            deadline_s=deadline_s,
        )
        job.seq = seq
        self._jobs[job.id] = job
        self._counters["submitted"] += 1
        self._active_by_network[network] = (
            self._active_by_network.get(network, 0) + 1
        )
        if network in self._paused:
            self._backlog.setdefault(network, deque()).append(job)
        else:
            self._admit.put_nowait(job)
        if deadline_s is not None:
            self._loop.call_later(deadline_s, self._expire, job)
        return job

    async def mine(
        self,
        network: str,
        request: MineRequest | Mapping | None = None,
        *,
        priority: int = 0,
        deadline_s: float | None = None,
        **kwargs,
    ) -> MiningResult:
        """Submit one request and await its result."""
        return await self.submit(
            network, request, priority=priority, deadline_s=deadline_s, **kwargs
        )

    async def sweep(
        self,
        network: str,
        requests: Iterable[MineRequest | Mapping],
        *,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> list[MiningResult]:
        """Submit a batch against one network and await all results.

        Unlike the blocking ``hub.sweep``, the batch holds no monopoly
        on the fleet: its shards interleave with every other admitted
        job under the fairness policy.
        """
        jobs = [
            self.submit(network, request, priority=priority, deadline_s=deadline_s)
            for request in requests
        ]
        return list(await asyncio.gather(*jobs))

    def job(self, job_id: str) -> ServeJob:
        """Look up a (recent) job by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r} (retained: {self.retain_jobs})") from None

    def set_weight(self, network: str, weight: float) -> None:
        """Set a network's fair-share weight (default 1.0; higher = more
        shard slots per scheduling round at equal priority)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[network] = float(weight)

    # ------------------------------------------------------------------
    # Mutation barrier
    # ------------------------------------------------------------------
    async def append_edges(self, network: str, src, dst, edge_codes=None) -> str:
        """Apply an append-edge delta with a per-network drain barrier.

        Admitted jobs hold shard tasks addressing the network's current
        store export; mutating under them would unlink that segment (or
        worse, serve half a query from each edge set).  The barrier
        pauses *admission* for this network only (other networks keep
        flowing; late submissions park in a backlog), waits for its
        active jobs to finish, applies the delta on the coordinator,
        then releases the backlog.  Returns the new fingerprint.
        """
        self._ensure_serving()
        self.hub.engine(network)
        if network in self._paused:
            raise RuntimeError(f"append_edges already in progress for {network!r}")
        self._paused[network] = next(self._seq)
        try:
            await self._drain_network(network)
            return await self._run_coord(
                self.hub.append_edges, network, src, dst, edge_codes
            )
        finally:
            self._paused.pop(network, None)
            backlog = self._backlog.pop(network, None)
            if backlog:
                for job in backlog:
                    self._admit.put_nowait(job)

    async def _drain_network(self, network: str) -> None:
        if self._drainable_active(network) <= 0:
            return
        waiter = self._loop.create_future()
        self._drain_waiters.setdefault(network, []).append(waiter)
        await waiter

    def _drainable_active(self, network: str) -> int:
        """Live jobs the barrier must wait for: active minus parked ones
        (backlogged jobs hold no shard tasks, pins or buses — they were
        never prepared — so the delta may safely run over them)."""
        parked = sum(
            1 for j in self._backlog.get(network, ()) if not j.done
        )
        return self._active_by_network.get(network, 0) - parked

    def _check_drain(self, network: str) -> None:
        if self._drainable_active(network) <= 0:
            for waiter in self._drain_waiters.pop(network, []):
                if not waiter.done():
                    waiter.set_result(None)

    # ------------------------------------------------------------------
    # Admission (prepare on the coordinator, classify, enqueue)
    # ------------------------------------------------------------------
    async def _admit_loop(self) -> None:
        while True:
            job: ServeJob = await self._admit.get()
            if job.done:
                continue  # cancelled while queued; already finalized
            pause_seq = self._paused.get(job.network)
            if pause_seq is not None and job.seq > pause_seq:
                # Submitted after the barrier began: park until the
                # delta lands (parked jobs block nothing — they hold no
                # shards, pins or buses yet).  Jobs submitted *before*
                # the pause fall through and are drained by the barrier,
                # so everything admitted pre-delta sees the old edges.
                self._backlog.setdefault(job.network, deque()).append(job)
                self._check_drain(job.network)
                continue
            try:
                await self._admit_one(job)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                if not job.done:
                    job._error = exc
                    await self._finalize(job)

    async def _admit_one(self, job: ServeJob) -> None:
        engine = self.hub.engine(job.network)
        if job.cancel_requested:
            await self._finalize(job)
            return
        # While the admitter owns the job (prepare, serial/inline
        # execution), cancellation defers to the checkpoints below —
        # a concurrent _finalize would release the bus/pin before the
        # coordinator even handed them over.
        job._executing = True
        try:
            prepared = await self._run_coord(self._prepare_sync, engine, job)
            job._prepared = prepared
            if job.cancel_requested:
                await self._finalize(job)
                return
            if prepared.mode == "cached":
                job.cached = True
                self._counters["cache_hit_jobs"] += 1
                await self._run_coord(self._release_sync, engine, job)
                self._resolve(job, JobState.DONE, result=prepared.result)
                return
            if prepared.mode in ("serial", "inline"):
                # Coordinator-bound execution: correct and simple, but
                # it occupies the coordinator — a serving deployment
                # should prefer pooled requests (workers >= 1).
                # Uncancellable once started; the flag was checked above.
                job.state = JobState.RUNNING
                job.shards_total = max(len(prepared.tasks), 1)
                try:
                    result = await self._run_coord(
                        engine.execute_prepared, prepared
                    )
                except BaseException as exc:
                    job._error = exc
                    await self._finalize(job)
                    return
                job.shards_done = job.shards_total
                if job.cancel_requested:
                    # The answer landed in the cache, but the contract
                    # is uniform: a cancelled job yields no result.
                    await self._finalize(job)
                    return
                await self._run_coord(self._release_sync, engine, job)
                self._resolve(job, JobState.DONE, result=result)
                return
        finally:
            job._executing = False
        # Pooled: the scheduler owns submission from here on.
        if self._fleet is None:
            self._fleet = await self._run_coord(engine._ensure_pool)
        if job.done:
            return  # cancelled during the fleet spawn; already settled
        if job.cancel_requested:
            await self._finalize(job)
            return
        job._queue = deque(prepared.tasks)
        job.shards_total = len(prepared.tasks)
        job.state = JobState.READY
        self._enter_ready(job)
        self._fill_slots()

    def _prepare_sync(self, engine, job: ServeJob):
        # Runs on the coordinator thread.  The pin must precede the
        # prepare: prepare resolves the store handle (possibly exporting
        # a lease), and an interleaved prepare for another network must
        # not budget-evict it while this job's tasks still address it.
        self.hub.pin_lease(job.network)
        job._pinned = True
        return engine.prepare(job.request)

    def _run_coord(self, fn, *args):
        return self._loop.run_in_executor(self._coordinator, lambda: fn(*args))

    # ------------------------------------------------------------------
    # Slot scheduling (event-loop thread only)
    # ------------------------------------------------------------------
    def _enter_ready(self, job: ServeJob) -> None:
        active = {j.network for j in self._ready}
        active.update(
            j.network
            for j in self._jobs.values()
            if j._inflight > 0 and not j.done
        )
        if job.network not in active:
            # A network waking from idle must not burst through credit
            # it accumulated while absent: clamp to the active minimum.
            floor = min(
                (self._vtime.get(n, 0.0) for n in active), default=0.0
            )
            self._vtime[job.network] = max(
                self._vtime.get(job.network, 0.0), floor
            )
        self._ready.append(job)

    def _pick(self) -> ServeJob | None:
        """The next job to advance: priority, then fair share, then FIFO."""
        best = None
        best_rank = None
        for job in self._ready:
            rank = (-job.priority, self._vtime.get(job.network, 0.0), job.seq)
            if best_rank is None or rank < best_rank:
                best, best_rank = job, rank
        return best

    def _fill_slots(self) -> None:
        while self._inflight_slots < self.slots and self._ready:
            job = self._pick()
            if job is None:
                return
            task = job._queue.popleft()
            if not job._queue:
                self._ready.remove(job)
            if job.state is JobState.READY:
                job.state = JobState.RUNNING
                job._prepared.started = time.perf_counter()
            job._inflight += 1
            self._inflight_slots += 1
            self._counters["shards_dispatched"] += 1
            self._shards_by_network[job.network] = (
                self._shards_by_network.get(job.network, 0) + 1
            )
            weight = self._weights.get(job.network, 1.0)
            self._vtime[job.network] = (
                self._vtime.get(job.network, 0.0) + 1.0 / weight
            )
            self._fleet.submit(
                task,
                callback=lambda res, j=job: self._from_fleet(j, res, None),
                error_callback=lambda exc, j=job: self._from_fleet(j, None, exc),
            )

    def _from_fleet(self, job: ServeJob, result, exc) -> None:
        # Pool result-handler thread: marshal onto the loop and return.
        try:
            self._loop.call_soon_threadsafe(self._on_shard, job, result, exc)
        except RuntimeError:
            pass  # loop already closed under a forced teardown

    def _on_shard(self, job: ServeJob, result, exc) -> None:
        self._inflight_slots -= 1
        self._counters["shards_completed"] += 1
        job._inflight -= 1
        job.shards_done += 1
        if exc is not None:
            if job._error is None:
                job._error = exc
        elif result is not None:
            job._shard_results.append(result)
        if (job._error is not None or job.cancel_requested) and job._queue:
            # Stop submitting: the remaining shards are dead weight.
            job._queue.clear()
            if job in self._ready:
                self._ready.remove(job)
        if job._inflight == 0 and not job._queue and not job.done:
            self._loop.create_task(self._finalize(job))
        self._fill_slots()

    # ------------------------------------------------------------------
    # Completion / cancellation (event-loop thread only)
    # ------------------------------------------------------------------
    async def _finalize(self, job: ServeJob) -> None:
        """Settle a job once nothing of it is in flight anymore."""
        if job._finalized:
            return
        job._finalized = True
        engine = self.hub.engine(job.network)
        try:
            if job.cancel_requested or job._error is not None:
                await self._run_coord(self._release_sync, engine, job)
                if job.cancel_requested:
                    state = (
                        JobState.EXPIRED
                        if job.cancel_reason == "deadline"
                        else JobState.CANCELLED
                    )
                    self._resolve(
                        job, state,
                        error=JobCancelled(job.id, job.cancel_reason or "cancelled"),
                    )
                else:
                    self._resolve(job, JobState.FAILED, error=job._error)
                return
            if job._prepared is not None and job._prepared.mode == "pooled":
                result = await self._run_coord(self._finish_sync, engine, job)
            else:
                result = None  # cancelled before planning produced work
            self._resolve(job, JobState.DONE, result=result)
        except BaseException as exc:
            self._resolve(job, JobState.FAILED, error=exc)

    def _finish_sync(self, engine, job: ServeJob) -> MiningResult:
        # Coordinator thread: merge, cache, then release bus and pin.
        try:
            return engine.finish(job._prepared, job._shard_results)
        finally:
            self._release_sync(engine, job)

    def _release_sync(self, engine, job: ServeJob) -> None:
        # Coordinator thread.  Safe exactly because finalize waits for
        # every submitted shard to settle first.
        if job._prepared is not None:
            engine.release_bus(job._prepared)
        if job._pinned:
            job._pinned = False
            self.hub.unpin_lease(job.network)

    def _resolve(
        self,
        job: ServeJob,
        state: JobState,
        result=None,
        error: BaseException | None = None,
    ) -> None:
        if job.done:
            return
        job.state = state
        job.finished_at = self._loop.time()
        job._finalized = True
        if state is JobState.DONE:
            self._counters["completed"] += 1
            if not job.future.done():
                job.future.set_result(result)
        else:
            key = {
                JobState.FAILED: "failed",
                JobState.CANCELLED: "cancelled",
                JobState.EXPIRED: "expired",
            }[state]
            self._counters[key] += 1
            if not job.future.done():
                job.future.set_exception(error)
                if isinstance(error, JobCancelled):
                    # Cancellation is a normal outcome the caller may
                    # never await; don't log it as an unretrieved error.
                    job.future.exception()
        remaining = self._active_by_network.get(job.network, 1) - 1
        if remaining > 0:
            self._active_by_network[job.network] = remaining
        else:
            self._active_by_network.pop(job.network, None)
        self._check_drain(job.network)
        self._retire(job)

    def _retire(self, job: ServeJob) -> None:
        self._retired.append(job.id)
        while len(self._retired) > self.retain_jobs:
            stale = self._retired.popleft()
            old = self._jobs.get(stale)
            if old is not None and old.done:
                del self._jobs[stale]

    def _request_cancel(self, job: ServeJob, reason: str) -> None:
        """Thread-safe cancellation entry (jobs delegate here)."""
        if self._loop is None:
            return
        try:
            running = asyncio.get_running_loop() is self._loop
        except RuntimeError:
            running = False
        if running:
            self._cancel_on_loop(job, reason)
        else:
            self._loop.call_soon_threadsafe(self._cancel_on_loop, job, reason)

    def _cancel_on_loop(self, job: ServeJob, reason: str) -> None:
        if job.done or job.cancel_requested:
            return
        job.cancel_requested = True
        job.cancel_reason = reason
        if job._queue:
            job._queue.clear()
            if job in self._ready:
                self._ready.remove(job)
        if job._inflight > 0:
            return  # _on_shard finalizes after the drain
        if job._executing:
            return  # the admitter owns it and finalizes at its next checkpoint
        # Nothing of the job is anywhere in flight — not in the admit
        # pipeline, not on the coordinator, not on the fleet (this
        # includes a RUNNING pooled job whose dispatched shards all
        # settled while its remaining ones sat queued behind other
        # jobs) — so settle it now; the admitter skips done jobs.
        self._loop.create_task(self._finalize(job))

    def _expire(self, job: ServeJob) -> None:
        if not job.done:
            self._cancel_on_loop(job, "deadline")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters + live state (JSON-ready)."""
        live = [j for j in self._jobs.values() if not j.done]
        return {
            **self._counters,
            "slots": self.slots,
            "inflight_slots": self._inflight_slots,
            "live_jobs": len(live),
            "ready_jobs": len(self._ready),
            "networks": {
                name: {
                    "shards_served": served,
                    "vtime": self._vtime.get(name, 0.0),
                    "weight": self._weights.get(name, 1.0),
                }
                for name, served in sorted(self._shards_by_network.items())
            },
        }

    def __repr__(self) -> str:
        state = (
            "closed" if self._closed
            else "serving" if self._loop is not None
            else "unstarted"
        )
        return (
            f"Scheduler(networks={self.hub.names()}, slots={self.slots}, "
            f"{state}, inflight={self._inflight_slots})"
        )
