"""ServeJob — one admitted mining request, owned by a :class:`Scheduler`.

A job is the serving-layer sibling of
:class:`~repro.engine.request.MineRequest`: the request says *what* to
mine, the job says *how it competes* for the shared fleet — its
``priority`` (strict: higher always dispatches first), its optional
``deadline_s`` (expired jobs self-cancel), and its cooperative
cancellation handle.  Awaiting a job yields its
:class:`~repro.core.results.MiningResult`; a cancelled or expired job
raises :class:`JobCancelled` instead.

Jobs move through :class:`JobState`:

``PENDING`` → ``READY`` (prepared; shard tasks queued for the fleet) →
``RUNNING`` (shards in flight, or serial/inline execution underway) →
one of ``DONE`` / ``FAILED`` / ``CANCELLED`` / ``EXPIRED``.

Cache hits skip straight from ``PENDING`` to ``DONE``.  Cancellation is
cooperative at shard granularity: a cancelled job submits no further
shards, its in-flight shards drain (their results are discarded), and
only then is its threshold bus recycled — the same settle-before-release
invariant the blocking sweep upholds, which is what keeps a cancelled
job from ever polluting another job's dynamic thresholds.

Two admission-planner roles layer on top (see
:meth:`Scheduler.submit_sweep`):

* **Single-flight dedup** — a job admitted while an identical one
  (same network, store fingerprint and canonical request) is already
  in flight becomes a *follower* of that *leader*: it holds no shards,
  bus or pins of its own, and resolves with a private copy of the
  leader's outcome.  The shared execution runs at the maximum priority
  of the attached jobs; cancelling a follower merely detaches it,
  cancelling the leader promotes a follower (or re-plans).
* **Warm-start dependents** — a job submitted with ``floor_from=seed``
  parks until the seed resolves, then admits with the seed's
  k-th-best score as its threshold-bus floor (cold when dominance
  does not hold; ``warm_floor`` records what was applied).
"""

from __future__ import annotations

import asyncio
import enum
from collections import deque

from ..engine.request import MineRequest

__all__ = ["JobCancelled", "JobState", "ServeJob"]


class JobState(str, enum.Enum):
    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"


#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.EXPIRED}
)


class JobCancelled(Exception):
    """Awaited job was cancelled (``reason='deadline'`` when it expired)."""

    def __init__(self, job_id: str, reason: str = "cancelled") -> None:
        super().__init__(f"job {job_id} {reason}")
        self.job_id = job_id
        self.reason = reason


class ServeJob:
    """One request admitted to the serving scheduler.

    Not constructed directly — :meth:`Scheduler.submit` returns these.
    ``await job`` (or ``await job.result()``) yields the mining result;
    :meth:`cancel` is safe from any thread.
    """

    def __init__(
        self,
        scheduler,
        job_id: str,
        network: str,
        request: MineRequest,
        priority: int,
        deadline_s: float | None,
    ) -> None:
        self._scheduler = scheduler
        self.id = job_id
        self.network = network
        self.request = request
        self.priority = priority
        self.deadline_s = deadline_s
        self.state = JobState.PENDING
        self.cancel_requested = False
        self.cancel_reason: str | None = None
        #: Fleet-slot accounting (scheduler-owned, event-loop thread only).
        self.seq: int = 0
        self.future: asyncio.Future = scheduler._loop.create_future()
        self.submitted_at: float = scheduler._loop.time()
        self.finished_at: float | None = None
        self.shards_total: int = 0
        self.shards_done: int = 0
        self.cached: bool = False
        #: Single-flight identity ``(network, fingerprint, canonical
        #: key)``, assigned at admission (``None`` until then).
        self.dedup_key = None
        #: True when this job rode another job's execution (follower).
        self.deduped: bool = False
        #: Warm-start floor the threshold bus was seeded with, if any.
        self.warm_floor: float | None = None
        self._prepared = None
        self._queue: deque = deque()
        self._inflight: int = 0
        self._shard_results: list = []
        self._error: BaseException | None = None
        self._pinned: bool = False
        self._finalized: bool = False
        #: True while the admitter owns the job (prepare or coordinator
        #: execution in progress) — cancellation then defers to it.
        self._executing: bool = False
        #: Leader this job follows (single-flight), if any.
        self._leader: "ServeJob | None" = None
        #: Followers attached to this job's execution (leaders only).
        self._followers: list["ServeJob"] = []
        #: Warm-start seed whose resolution this job waits for.
        self._floor_source: "ServeJob | None" = None
        #: True while parked in the seed's dependent list (pre-admission;
        #: such a job holds no shards, pins or buses, so the append-edge
        #: barrier does not wait for it).
        self._parked_for_floor: bool = False
        #: Jobs parked on *this* job's resolution for their floors.
        self._dependents: list["ServeJob"] = []
        #: Deadline timer armed at submit; cancelled on resolution so a
        #: long-deadline job does not leak a live TimerHandle.
        self._deadline_handle = None
        #: Set when a cancelled leader's execution moved to a promoted
        #: follower — in-flight shard completions follow this pointer.
        self._moved_to: "ServeJob | None" = None
        #: SSE progress subscriptions: one ``asyncio.Queue`` per open
        #: ``GET /jobs/{id}/events`` stream (event-loop thread only).
        self._subscribers: list = []
        #: Running partial top-k ``(score, gr_str)`` merged from arrived
        #: shard results, capped at the request's k (best-effort preview;
        #: the exact merge still happens in ``engine.finish``).
        self._partial_topk: list = []
        #: Highest bus floor ever reported for this job — progress events
        #: must never publish a looser floor than an earlier one.
        self._floor_seen: float | None = None
        #: Dispatch timestamps (``perf_counter``) of in-flight shards,
        #: keyed by shard id — closed into trace spans on completion.
        self._shard_started: dict = {}
        #: Start timestamp of the finalize phase, for its trace span.
        self._finalize_started: float | None = None

    @property
    def effective_priority(self) -> int:
        """The priority the shared execution runs at: the max over this
        job and its live followers (single-flight boosts the leader)."""
        priority = self.priority
        for follower in self._followers:
            if not follower.done and follower.priority > priority:
                priority = follower.priority
        return priority

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation (idempotent, thread-safe).

        Takes effect at the next scheduling point: no further shards are
        submitted, in-flight ones drain and are discarded, the job's bus
        is recycled after the drain, and awaiting the job raises
        :class:`JobCancelled`.  A job whose result is already final is
        left untouched; a serial/inline execution already running on the
        coordinator cannot be interrupted, but its job still resolves as
        cancelled.
        """
        self._scheduler._request_cancel(self, reason)

    async def result(self):
        """The mining result (raises ``JobCancelled`` / the job's error)."""
        return await asyncio.shield(self.future)

    def __await__(self):
        return self.result().__await__()

    def describe(self) -> dict:
        """JSON-ready status snapshot (the HTTP facade's job view)."""
        return {
            "id": self.id,
            "network": self.network,
            "request": self.request.describe(),
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "state": self.state.value,
            "cached": self.cached,
            "deduped": self.deduped,
            "warm_floor": self.warm_floor,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "cancel_reason": self.cancel_reason,
        }

    def __repr__(self) -> str:
        return (
            f"ServeJob({self.id}, network={self.network!r}, "
            f"priority={self.priority}, {self.state.value}, "
            f"shards={self.shards_done}/{self.shards_total})"
        )
