"""Thread-ownership markers for the serving stack.

The :mod:`repro.serve` threading model (PR 4) gives every piece of
engine-internal mutable state — planning skeletons, bus checkouts,
leases and pins, the result cache, serial/inline execution — to ONE
coordinator thread; the asyncio event loop owns scheduling state only,
and reaches the engine exclusively through the coordinator dispatch
shim (:meth:`Scheduler._run_coord`).  That contract used to live in
docstrings alone.  :func:`coordinator_only` turns it into a checkable
annotation: decorate a function that must only run on the coordinator
thread, and the ``coordinator-only`` rule of :mod:`repro.lint` verifies
— via a call-graph walk over ``repro/serve/`` — that marked functions
are called only from other marked functions or referenced through the
dispatch shim.

This module is imported by the layers *below* serve (engine, parallel,
data), so it must stay a leaf: stdlib only, no repro imports.  The
package ``__init__`` is correspondingly lazy so importing
``repro.serve.markers`` never drags the scheduler (and with it the
engine) into the import graph.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["coordinator_only", "is_coordinator_only"]

_F = TypeVar("_F", bound=Callable)


def coordinator_only(func: _F) -> _F:
    """Mark ``func`` as coordinator-thread-owned (zero runtime cost).

    Purely declarative: the function is returned unchanged with a
    ``__coordinator_only__`` attribute for introspection.  Enforcement
    is static — the ``coordinator-only`` lint rule flags calls to
    marked functions from unmarked code inside ``repro/serve/``.
    Outside a serving deployment (the blocking ``engine.sweep()`` /
    ``hub.mine()`` paths) the calling thread *is* the coordinator, so
    the rule deliberately does not constrain those layers.
    """
    func.__coordinator_only__ = True
    return func


def is_coordinator_only(func: Callable) -> bool:
    """Whether ``func`` carries the :func:`coordinator_only` marker."""
    return bool(getattr(func, "__coordinator_only__", False))
