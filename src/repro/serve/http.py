"""HTTP/JSON facade over a :class:`~repro.serve.Scheduler`.

A deliberately small stdlib-only server (``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 request reader — no new dependencies): enough to
put the scheduler's priorities, deadlines and cancellation on a wire,
not a web framework.  One connection serves one request and closes.

Endpoints
---------
``GET  /healthz``
    ``{"status": "ok", "networks": [...]}``.
``GET  /stats``
    Scheduler counters + the hub-stats snapshot the coordinator
    publishes on every job release (never a live coordinator
    round-trip — a stats poll cannot queue behind mining work; the
    ``hub`` object carries its staleness as ``age_s``).
``GET  /metrics``
    The process-wide :data:`repro.obs.REGISTRY` in Prometheus text
    exposition format (0.0.4); ``?format=json`` for the structured
    equivalent.
``GET  /jobs/{id}/trace``
    The job's recorded spans (plan → bus acquire → per-shard →
    merge → finalize) as structured JSON; ``?format=chrome`` renders
    Chrome ``trace_event`` JSON loadable in ``about:tracing`` /
    Perfetto.  404 once the tracer's ring buffer evicted the job (or
    when the scheduler runs with ``observe=False``).
``GET  /jobs/{id}/events``
    Server-sent events progress stream: ``progress`` events (shards
    done/total, current bus floor, running k-th-best score, partial
    top-k) as the job advances, ``heartbeat`` events every
    :attr:`ServeHTTP.sse_heartbeat_s` seconds of silence, and a
    terminal ``done`` event.  Disconnecting mid-stream frees the
    subscription without affecting the job.
``POST /networks/{name}/mine``
    Body: the :class:`~repro.engine.MineRequest` fields (``k``,
    ``min_support``, ``min_nhp``, ``rank_by``, ``push_topk``,
    ``workers``, ``options``) plus serving controls ``priority``,
    ``deadline_s`` and ``mode`` (``"sync"`` waits and returns the
    result; ``"async"`` returns ``{"job": {...}}`` immediately).
``POST /networks/{name}/sweep``
    Body: ``{"requests": [{...}, ...], "priority": ..., "mode": ...,
    "warm_start": ...}`` (``warm_start`` overrides the scheduler's
    speculative-floor default for this batch).  Specs are validated
    before any job is admitted — a bad spec rejects the whole batch
    without leaving earlier specs mining.
``POST /networks/{name}/append_edges``
    Body: ``{"src": [...], "dst": [...], "edge_codes": {attr: [...]}}``;
    drains the network's in-flight jobs, applies the delta, returns the
    new fingerprint.
``GET  /jobs/{id}``
    Job status, with the result once done.
``DELETE /jobs/{id}``
    Cooperative cancellation; returns the job status.

Cancelled/expired jobs report ``{"job": {... "state": "cancelled"}}``
with HTTP 200 — cancellation is an outcome, not a server error.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

from ..engine.request import MineRequest
from ..obs.metrics import REGISTRY
from .job import JobCancelled, ServeJob
from .scheduler import Scheduler

__all__ = ["ServeHTTP", "result_payload"]

_MAX_BODY = 64 * 1024 * 1024


def result_payload(result) -> dict:
    """A MiningResult as JSON-ready dicts (mirrors ``result_to_json``)."""
    entries = []
    for i, mined in enumerate(result, start=1):
        m = mined.metrics
        entries.append(
            {
                "rank": i,
                "gr": str(mined.gr),
                "lhs": mined.gr.lhs.as_dict(),
                "edge": mined.gr.edge.as_dict(),
                "rhs": mined.gr.rhs.as_dict(),
                "score": mined.score,
                "nhp": m.nhp,
                "confidence": m.confidence,
                "support_count": m.support_count,
                "support": m.support,
                "beta": list(m.beta),
            }
        )
    stats = result.stats
    return {
        "grs": entries,
        "stats": {
            "grs_examined": stats.grs_examined,
            "candidates": stats.candidates,
            "runtime_seconds": stats.runtime_seconds,
        },
        "params": {
            key: value
            for key, value in result.params.items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
    }


def request_from_body(body: dict) -> MineRequest:
    """Build a MineRequest from the JSON body's request fields."""
    fields = {
        key: body[key]
        for key in ("k", "min_support", "min_nhp", "rank_by", "push_topk", "workers")
        if key in body
    }
    options = body.get("options") or {}
    if not isinstance(options, dict):
        raise ValueError("'options' must be an object of miner keywords")
    return MineRequest.create(**fields, **{
        name: tuple(value) if isinstance(value, list) else value
        for name, value in options.items()
    })


class _BadRequest(Exception):
    pass


class ServeHTTP:
    """Serve a scheduler over HTTP on ``host:port`` (``port=0`` picks a
    free one; read it back from :attr:`port` after :meth:`start`)."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1", port: int = 8765):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        #: Seconds of event silence after which an SSE stream emits a
        #: ``heartbeat`` — keeps idle streams alive through proxies and
        #: lets the server notice a dead peer (the failed write tears
        #: the subscription down).
        self.sse_heartbeat_s = 15.0
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    async def start(self) -> "ServeHTTP":
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServeHTTP":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond(writer, 400, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            segments = [s for s in path.split("/") if s]
            # Streaming / non-JSON endpoints bypass the (status, payload)
            # routing contract and own the writer themselves.
            if method == "GET" and segments == ["metrics"]:
                await self._metrics(writer, query)
                return
            if (
                method == "GET"
                and len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "events"
            ):
                await self._job_events(writer, segments[1])
                return
            try:
                status, payload = await self._route(method, path, query, body)
            except _BadRequest as exc:
                status, payload = 400, {"error": str(exc)}
            except KeyError as exc:
                status, payload = 404, {"error": str(exc.args[0] if exc.args else exc)}
            except (TypeError, ValueError) as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # mining failures -> 500, not a dead server
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            await self._respond(writer, status, payload)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            # repro-lint: disable=swallowed-exception -- best-effort socket teardown: the response is already sent (or the peer is gone) and a close failure has no one left to report to
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, dict | None]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _BadRequest("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, target, _version = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
        if length < 0:
            raise _BadRequest("negative Content-Length")
        if length > _MAX_BODY:
            raise _BadRequest("request body too large")
        body = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON body: {exc}") from None
            if not isinstance(body, dict):
                raise _BadRequest("JSON body must be an object")
        path, _, raw_query = target.partition("?")
        query = urllib.parse.parse_qs(raw_query)
        return method.upper(), path, query, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        data = json.dumps(payload, default=str).encode()
        await self._respond_bytes(writer, status, data, "application/json")

    async def _respond_bytes(
        self, writer: asyncio.StreamWriter, status: int, data: bytes,
        content_type: str
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + data)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def _metrics(self, writer: asyncio.StreamWriter, query: dict) -> None:
        # render_* build the exposition entirely in memory — no file or
        # sqlite I/O ever happens on the event loop here.
        fmt = (query.get("format") or ["prometheus"])[0]
        if fmt == "json":
            await self._respond(writer, 200, REGISTRY.render_json())
            return
        text = REGISTRY.render_prometheus()
        await self._respond_bytes(
            writer, 200, text.encode(), "text/plain; version=0.0.4; charset=utf-8"
        )

    # ------------------------------------------------------------------
    # SSE progress streaming
    # ------------------------------------------------------------------
    async def _send_event(
        self, writer: asyncio.StreamWriter, event: str, payload: dict
    ) -> None:
        data = json.dumps(payload, default=str)
        writer.write(f"event: {event}\ndata: {data}\n\n".encode())
        await writer.drain()

    async def _job_events(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        try:
            job = self.scheduler.job(job_id)
        except KeyError as exc:
            await self._respond(writer, 404, {"error": str(exc.args[0])})
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        queue: asyncio.Queue = asyncio.Queue()
        job._subscribers.append(queue)
        try:
            writer.write(head)
            # Immediate snapshot: a subscriber learns the current state
            # now, not a heartbeat (or first shard) later.
            snapshot = self.scheduler.progress_payload(job)
            await self._send_event(writer, "progress", snapshot)
            if job.done:
                await self._send_event(writer, "done", snapshot)
                return
            while True:
                try:
                    event, payload = await asyncio.wait_for(
                        queue.get(), timeout=self.sse_heartbeat_s
                    )
                except asyncio.TimeoutError:
                    await self._send_event(
                        writer,
                        "heartbeat",
                        {"job_id": job.id, "state": job.state.value},
                    )
                    continue
                await self._send_event(writer, event, payload)
                if event == "done":
                    return
        # repro-lint: disable=swallowed-exception -- client disconnected mid-stream: dropping the subscription (in the finally) is the entire required response, and the job itself is unaffected
        except ConnectionError:
            pass
        finally:
            if queue in job._subscribers:
                job._subscribers.remove(queue)

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, query: dict, body: dict | None):
        segments = [s for s in path.split("/") if s]
        if segments == ["healthz"] and method == "GET":
            return 200, {"status": "ok", "networks": self.scheduler.hub.names()}
        if segments == ["stats"] and method == "GET":
            # Served from the coordinator-published snapshot: a stats
            # poll never waits behind mining work on the coordinator
            # (the snapshot's own staleness rides along as "age_s").
            return 200, {
                "scheduler": self.scheduler.stats(),
                "hub": self.scheduler.hub_stats(),
            }
        if len(segments) == 2 and segments[0] == "jobs":
            return await self._route_job(method, segments[1])
        if len(segments) == 3 and segments[0] == "jobs" and segments[2] == "trace":
            return self._job_trace(method, segments[1], query)
        if len(segments) == 3 and segments[0] == "networks":
            name, action = segments[1], segments[2]
            if name not in self.scheduler.hub:
                raise KeyError(f"no network {name!r}")
            if method != "POST":
                return 405, {"error": f"{action} requires POST"}
            if body is None:
                body = {}
            if action == "mine":
                return await self._mine(name, body)
            if action == "sweep":
                return await self._sweep(name, body)
            if action == "append_edges":
                return await self._append_edges(name, body)
        return 404, {"error": f"no route for {method} {path}"}

    async def _route_job(self, method: str, job_id: str):
        job = self.scheduler.job(job_id)  # KeyError -> 404
        if method == "GET":
            return 200, await self._job_payload(job)
        if method == "DELETE":
            job.cancel()
            # Give an idle loop one tick so an un-started job settles
            # before we report; in-flight ones report their live state.
            await asyncio.sleep(0)
            return 200, await self._job_payload(job)
        return 405, {"error": "jobs support GET and DELETE"}

    def _job_trace(self, method: str, job_id: str, query: dict):
        if method != "GET":
            return 405, {"error": "trace supports GET"}
        self.scheduler.job(job_id)  # unknown id -> KeyError -> 404
        fmt = (query.get("format") or ["structured"])[0]
        tracer = self.scheduler.tracer
        payload = (
            tracer.chrome_trace(job_id) if fmt == "chrome" else tracer.trace(job_id)
        )
        if payload is None:
            raise KeyError(
                f"no trace for {job_id!r} (tracing disabled, or the job "
                f"was evicted from the trace ring)"
            )
        return 200, payload

    async def _job_payload(self, job: ServeJob) -> dict:
        payload = {"job": job.describe()}
        if job.future.done() and not job.future.cancelled():
            if job.future.exception() is None:
                payload["result"] = result_payload(job.future.result())
            elif not isinstance(job.future.exception(), JobCancelled):
                payload["error"] = str(job.future.exception())
        return payload

    def _serve_args(self, body: dict) -> dict:
        priority = body.get("priority", 0)
        deadline_s = body.get("deadline_s")
        if not isinstance(priority, int):
            raise _BadRequest("'priority' must be an integer")
        if deadline_s is not None and not isinstance(deadline_s, (int, float)):
            raise _BadRequest("'deadline_s' must be a number")
        return {"priority": priority, "deadline_s": deadline_s}

    async def _mine(self, name: str, body: dict):
        request = request_from_body(body)
        job = self.scheduler.submit(name, request, **self._serve_args(body))
        if body.get("mode") == "async":
            return 200, {"job": job.describe()}
        try:
            result = await job
        except JobCancelled:
            return 200, await self._job_payload(job)
        return 200, {"job": job.describe(), "result": result_payload(result)}

    async def _sweep(self, name: str, body: dict):
        specs = body.get("requests")
        if not isinstance(specs, list) or not specs:
            raise _BadRequest("'requests' must be a non-empty list")
        serve_args = self._serve_args(body)
        warm_start = body.get("warm_start")
        if warm_start is not None and not isinstance(warm_start, bool):
            raise _BadRequest("'warm_start' must be a boolean")
        # Every spec is validated before any job is admitted: a bad spec
        # at position i must not leave the i-1 earlier ones mining (and
        # holding fleet slots) behind the client's 400.  submit_sweep
        # additionally cancels the batch if a later *submission* fails.
        requests = [request_from_body(spec) for spec in specs]
        jobs = self.scheduler.submit_sweep(
            name, requests, warm_start=warm_start, **serve_args
        )
        if body.get("mode") == "async":
            return 200, {"jobs": [job.describe() for job in jobs]}
        await asyncio.gather(*(job.future for job in jobs), return_exceptions=True)
        return 200, {"jobs": [await self._job_payload(job) for job in jobs]}

    async def _append_edges(self, name: str, body: dict):
        src = body.get("src")
        dst = body.get("dst")
        if not isinstance(src, list) or not isinstance(dst, list):
            raise _BadRequest("'src' and 'dst' must be lists")
        edge_codes = body.get("edge_codes")
        fingerprint = await self.scheduler.append_edges(name, src, dst, edge_codes)
        return 200, {"network": name, "fingerprint": fingerprint}
