"""repro.serve — the async serving front over one :class:`EngineHub`.

The hub made many networks share one fleet; this layer makes many
*concurrent users* share it.  A :class:`Scheduler` owns the fleet's
in-flight slots and admits shard tasks from every submitted
:class:`ServeJob` through strict priorities and weighted-fair
per-network interleaving, so a bulk sweep on one network no longer
blocks a single query on another.  Jobs support deadlines and
cooperative cancellation (stop submitting, drain in-flight shards,
recycle the bus); answers stay GR-for-GR equal to a direct
``hub.mine()`` under any interleaving because the execution machinery —
prepare, shard, merge, cache — is the engine's own.

A query-admission planner rides in front: identical concurrent jobs
collapse into one *single-flight* execution (followers attach to the
leader and share its outcome), and dominance-related sweep batches mine
their seed point first, warm-starting the dominated points' threshold
buses with its k-th-best score
(:func:`~repro.engine.request.warmstart_dominates` derives the sound
direction; unsound pairs fall back to cold floors).

:class:`ServeHTTP` puts the scheduler on a wire (stdlib-only HTTP/JSON:
mine, sweep, append_edges, job status/cancel, stats); ``repro serve``
is the CLI entry.

>>> import asyncio
>>> from repro.datasets.toy import toy_dating_network
>>> from repro.engine import EngineHub
>>> from repro.serve import Scheduler
>>> async def demo():
...     with EngineHub(workers=1) as hub:
...         hub.register("toy", toy_dating_network())
...         async with Scheduler(hub) as scheduler:
...             job = scheduler.submit("toy", k=5, min_support=2, min_nhp=0.5)
...             return await job
>>> len(asyncio.run(demo())) <= 5
True
"""

# Submodule attributes resolve lazily (PEP 562) so that the layers
# below serve can import the leaf `repro.serve.markers` without pulling
# the scheduler — and through it the whole engine stack — into their
# import graph.
from .markers import coordinator_only, is_coordinator_only

__all__ = [
    "JobCancelled",
    "JobState",
    "Scheduler",
    "ServeHTTP",
    "ServeJob",
    "coordinator_only",
    "is_coordinator_only",
    "result_payload",
]

_LAZY = {
    "ServeHTTP": "http",
    "result_payload": "http",
    "JobCancelled": "job",
    "JobState": "job",
    "ServeJob": "job",
    "Scheduler": "scheduler",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
