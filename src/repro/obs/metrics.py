"""Process-local metrics registry with Prometheus text exposition.

Stdlib-only, import-light (no repro imports): every layer — parallel,
engine, serve — registers metrics here without creating cycles, the same
way ``repro.serve.markers`` stays a leaf.

Counters and gauges use plain ``+=`` on a float attribute: increments
from multiple threads may race, but like the ThresholdBus slots the race
is benign (a lost increment, never a crash or corruption), which keeps
the hot-path cost to an attribute load, a branch, and a float add.
Histograms take a per-child lock because a bucket update is a
read-modify-write across several fields.

Registries are per-process. Worker processes inherit the parent registry
at fork time and then diverge: increments made inside a mining worker
(e.g. bus publishes from a ``SharedThresholdCollector``) land in that
worker's copy and are invisible to the serving process. The ``/metrics``
endpoint therefore reports the coordinator/serving process only; this is
documented rather than solved (a push gateway belongs to the multi-host
transport work).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

#: Default histogram bucket upper bounds, in seconds. Spans the range from
#: sub-10ms cache hits to minute-scale cold sweeps.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(pairs: Iterable[tuple[str, str]]) -> str:
    items = list(pairs)
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in items)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value. Benign-race increments."""

    kind = "counter"
    __slots__ = ("_registry", "label_values", "_value")

    def __init__(self, registry: "MetricsRegistry", label_values: tuple[str, ...] = ()):
        self._registry = registry
        self.label_values = label_values
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge:
    """Point-in-time value that can go up and down."""

    kind = "gauge"
    __slots__ = ("_registry", "label_values", "_value")

    def __init__(self, registry: "MetricsRegistry", label_values: tuple[str, ...] = ()):
        self._registry = registry
        self.label_values = label_values
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._registry.enabled:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram:
    """Fixed-bucket histogram (Prometheus cumulative ``le`` semantics)."""

    kind = "histogram"
    __slots__ = ("_registry", "label_values", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        registry: "MetricsRegistry",
        label_values: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self._registry = registry
        self.label_values = label_values
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # trailing slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One registered metric name: label schema plus its children."""

    __slots__ = ("name", "help", "kind", "label_names", "_registry", "_buckets", "_children", "_lock")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_: str,
        kind: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help_
        self.kind = kind
        self.label_names = label_names
        self._registry = registry
        self._buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()
        if not label_names:
            self._children[()] = self._make(())

    def _make(self, values: tuple[str, ...]):
        cls = _KINDS[self.kind]
        if cls is Histogram:
            return Histogram(self._registry, values, self._buckets)
        return cls(self._registry, values)

    def labels(self, **kv: object):
        values = tuple(str(kv[name]) for name in self.label_names)
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._make(values)
                    self._children[values] = child
        return child

    def children(self) -> list[Counter | Gauge | Histogram]:
        return list(self._children.values())

    @property
    def default(self):
        return self._children[()]


class MetricsRegistry:
    """Named counters/gauges/histograms with text + JSON exposition.

    Registration is idempotent: asking for an existing name returns the
    already-registered metric (the kind and label schema must match).
    ``enabled`` gates every mutation so a benchmark can measure the
    instrumented stack with observability truly off.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def _register(
        self,
        name: str,
        help_: str,
        kind: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, help_, kind, labels, buckets)
                self._families[name] = family
            elif family.kind != kind or family.label_names != labels:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                    f"{family.label_names}, not {kind}{labels}"
                )
        return family if labels else family.default

    def counter(self, name: str, help_: str, labels: tuple[str, ...] = ()):
        return self._register(name, help_, "counter", labels)

    def gauge(self, name: str, help_: str, labels: tuple[str, ...] = ()):
        return self._register(name, help_, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_: str,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        return self._register(name, help_, "histogram", labels, buckets)

    # -- lifecycle ------------------------------------------------------

    def set_enabled(self, flag: bool) -> None:
        self.enabled = bool(flag)

    def reset(self) -> None:
        """Zero all values, keeping registrations (for tests/benchmarks)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for child in family.children():
                child._reset()

    # -- exposition -----------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                pairs = list(zip(family.label_names, child.label_values))
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        bucket_pairs = pairs + [("le", _format_value(bound))]
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_pairs)}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(pairs)}"
                        f" {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{_format_labels(pairs)} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{_format_labels(pairs)} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def render_json(self) -> dict:
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        out = []
        for family in families:
            samples = []
            for child in family.children():
                labels = dict(zip(family.label_names, child.label_values))
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                _format_value(bound): cumulative
                                for bound, cumulative in child.cumulative()
                            },
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"metrics": out}


#: Process-wide default registry. Instrumented modules register their
#: metrics against this at import time.
REGISTRY = MetricsRegistry()
