"""Per-job trace spans in a bounded ring buffer.

Spans are recorded with monotonic-clock (``time.perf_counter``)
timestamps taken by the caller, so the event loop, the coordinator
thread, and the pool result-handler thread can all contribute spans for
one job; the tracer only stores them. A small lock guards the buffer —
emission is per-shard / per-phase, never per-candidate, so contention is
negligible.

Traces export two ways: structured JSON (``trace``) and the Chrome
``trace_event`` format (``chrome_trace``) loadable in chrome://tracing
or Perfetto.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["Tracer", "NullTracer"]


class Tracer:
    """Bounded per-job span buffer keyed by job id.

    Oldest jobs are evicted once ``max_jobs`` traces are held; spans per
    job are capped at ``max_spans_per_job`` (excess spans are dropped,
    never an error).
    """

    def __init__(self, max_jobs: int = 256, max_spans_per_job: int = 4096):
        self.max_jobs = max_jobs
        self.max_spans_per_job = max_spans_per_job
        self.enabled = True
        self._jobs: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def begin(self, job_id: str, **meta: object) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._jobs.pop(job_id, None)
            while len(self._jobs) >= self.max_jobs:
                self._jobs.popitem(last=False)
            self._jobs[job_id] = {
                "t0": time.perf_counter(),
                "meta": dict(meta),
                "spans": [],
            }

    def span(
        self,
        job_id: str,
        name: str,
        start_s: float,
        end_s: float,
        tid: int = 0,
        **args: object,
    ) -> None:
        """Record a closed span. Timestamps are ``perf_counter`` seconds."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None or len(entry["spans"]) >= self.max_spans_per_job:
                return
            entry["spans"].append(
                {
                    "name": name,
                    "start_s": start_s,
                    "end_s": end_s,
                    "tid": tid,
                    "args": dict(args),
                }
            )

    def jobs(self) -> list[str]:
        with self._lock:
            return list(self._jobs)

    def trace(self, job_id: str) -> dict | None:
        """Structured JSON trace: span times relative to job begin, seconds."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                return None
            t0 = entry["t0"]
            spans = [dict(span) for span in entry["spans"]]
            meta = dict(entry["meta"])
        return {
            "job_id": job_id,
            "meta": meta,
            "spans": [
                {
                    "name": span["name"],
                    "start_s": span["start_s"] - t0,
                    "duration_s": span["end_s"] - span["start_s"],
                    "tid": span["tid"],
                    "args": span["args"],
                }
                for span in spans
            ],
        }

    def chrome_trace(self, job_id: str) -> dict | None:
        """Chrome ``trace_event`` JSON: complete ("X") events, µs units."""
        with self._lock:
            entry = self._jobs.get(job_id)
            if entry is None:
                return None
            t0 = entry["t0"]
            spans = [dict(span) for span in entry["spans"]]
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": f"repro job {job_id}"},
            }
        ]
        for span in spans:
            events.append(
                {
                    "name": span["name"],
                    "cat": "job",
                    "ph": "X",
                    "pid": 1,
                    "tid": span["tid"],
                    "ts": round((span["start_s"] - t0) * 1e6, 3),
                    "dur": round((span["end_s"] - span["start_s"]) * 1e6, 3),
                    "args": span["args"],
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


class NullTracer:
    """No-op stand-in used when tracing is disabled."""

    enabled = False

    def begin(self, job_id: str, **meta: object) -> None:
        return

    def span(self, job_id: str, name: str, start_s: float, end_s: float, tid: int = 0, **args: object) -> None:
        return

    def jobs(self) -> list[str]:
        return []

    def trace(self, job_id: str) -> dict | None:
        return None

    def chrome_trace(self, job_id: str) -> dict | None:
        return None
