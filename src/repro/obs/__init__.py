"""repro.obs — stdlib-only observability substrate.

Three pieces, threaded through every layer of the stack:

- :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, fixed-bucket histograms) with Prometheus text and
  JSON exposition. Instrumented modules register metrics at import time
  against the module-level :data:`REGISTRY`.
- :mod:`repro.obs.trace` — per-job trace spans in a bounded ring
  buffer, exportable as structured JSON or Chrome ``trace_event``.
- The serve layer exposes both over HTTP (``GET /metrics``,
  ``GET /jobs/{id}/trace``) and streams job progress over SSE
  (``GET /jobs/{id}/events``).

Like ``repro.lint``, this package has no third-party dependencies, and
like ``repro.serve.markers`` it imports nothing from the rest of
``repro`` so any layer can use it without cycles.
"""

from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry, REGISTRY
from .trace import NullTracer, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "REGISTRY",
    "Tracer",
]
