"""repro — reproduction of "Mining Social Ties Beyond Homophily" (ICDE 2016).

A library for mining top-k *group relationships* (GRs) from attributed
social networks, ranked by the paper's *non-homophily preference* (nhp)
metric: social ties that are strong **beyond** what the homophily
principle already predicts.

Quickstart
----------
>>> from repro import mine_top_k
>>> from repro.datasets import toy_dating_network
>>> result = mine_top_k(toy_dating_network(), k=5, min_support=2, min_nhp=0.5)
>>> for mined in result:
...     _ = mined.gr, mined.metrics.nhp

Pass ``workers=N`` to shard the enumeration tree over N processes — the
:class:`~repro.parallel.ParallelGRMiner` exports the compact store into
shared memory, mines the first-level LEFT branches concurrently with a
best-effort dynamic-threshold exchange, and merges the per-shard top-k
lists into the same ranked answer for any worker count:

>>> result = mine_top_k(toy_dating_network(), k=5, min_support=2,
...                     min_nhp=0.5, workers=2)
>>> len(result) <= 5
True

Many queries against the same network should share a
:class:`~repro.engine.MiningEngine`: it builds and exports the compact
store once, keeps one worker fleet alive, and serves a stream of
:class:`~repro.engine.MineRequest` queries with an LRU result cache:

>>> from repro import MineRequest, MiningEngine
>>> with MiningEngine(toy_dating_network()) as engine:
...     results = engine.sweep([
...         MineRequest(k=5, min_support=2, min_nhp=0.5),
...         MineRequest(k=3, min_support=2, min_nhp=0.6),
...     ])
>>> [len(r) <= 5 for r in results]
[True, True]

Package map
-----------
``repro.core``      GRMiner, metrics, baselines, alternative metrics.
``repro.engine``    The long-lived session layer: MiningEngine serves
                    many MineRequest queries over one shared store,
                    one worker fleet and an LRU result cache; EngineHub
                    serves many named, mutable networks through one
                    fleet with a bounded disk-tier cache.
``repro.serve``     The async serving front: a Scheduler interleaves
                    many concurrent prioritized, cancellable ServeJobs
                    over one hub fleet, with a stdlib HTTP facade
                    (``repro serve``).
``repro.parallel``  Sharded multi-process mining: shard planner,
                    shared-memory store export, threshold bus, pool
                    lifecycle, and the deterministic merge
                    (ParallelGRMiner).
``repro.data``      Schemas, networks, the compact LArray/EArray/RArray
                    store (including its shared-memory export) and the
                    single-table model.
``repro.datasets``  The paper's toy network plus synthetic Pokec/DBLP
                    style generators.
``repro.analysis``  Hypothesis-variation workflow, homophily suggestion,
                    report formatting.
``repro.io``        CSV / networkx interop.
``repro.cube``      The BUC iceberg-cube substrate used by baselines.
"""

from .core import (
    GR,
    AlternativeMetricMiner,
    BL1Miner,
    BL2Miner,
    BruteForceMiner,
    ConfidenceMiner,
    Descriptor,
    GRMetrics,
    GRMiner,
    MetricEngine,
    MinedGR,
    MiningResult,
    mine_top_k,
)
from .data import Attribute, CompactStore, EdgeTable, Schema, SocialNetwork
from .engine import EngineHub, MineRequest, MiningEngine
from .parallel import ParallelGRMiner

__version__ = "1.3.0"

__all__ = [
    "AlternativeMetricMiner",
    "Attribute",
    "BL1Miner",
    "BL2Miner",
    "BruteForceMiner",
    "CompactStore",
    "ParallelGRMiner",
    "ConfidenceMiner",
    "Descriptor",
    "EdgeTable",
    "EngineHub",
    "GR",
    "GRMetrics",
    "GRMiner",
    "MetricEngine",
    "MinedGR",
    "MineRequest",
    "MiningEngine",
    "MiningResult",
    "Schema",
    "SocialNetwork",
    "mine_top_k",
    "__version__",
]
